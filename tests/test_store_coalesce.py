"""Property tests for the coalesced zero-copy payload fetch path.

The contract under test: however payload bytes reach the process — per-block
seek/read (the historical path), coalesced seek/read, or coalesced mmap
slices — every reader hands codecs the *same bytes* and every query decodes
the *same arrays*.  Fuzzed over containers with dropped blocks and
overhanging (non-multiple-of-unit) edge blocks, in the requested order, for
shuffled/duplicated position sets, and through the mmap-unavailable fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store.format import ContainerReader, _FilePayloadSource, _MmapPayloadSource
from repro.store.query import (
    block_cell_slices,
    bounds_to_slices,
    coalesce_ranges,
    paste_slices,
    paste_slices_batch,
)
from repro.utils.blocks import block_bounds
from repro.utils.rng import default_rng


# -- coalesce_ranges -----------------------------------------------------------


class TestCoalesceRanges:
    def test_empty(self):
        lo, hi, which = coalesce_ranges(np.array([]), np.array([]))
        assert lo.size == hi.size == which.size == 0

    def test_adjacent_ranges_merge(self):
        lo, hi, which = coalesce_ranges([0, 10, 20], [10, 10, 10], max_gap=0)
        assert lo.tolist() == [0] and hi.tolist() == [30]
        assert which.tolist() == [0, 0, 0]

    def test_gap_splits_and_merges(self):
        offsets, lengths = [0, 14, 100], [10, 6, 1]
        lo, hi, which = coalesce_ranges(offsets, lengths, max_gap=0)
        assert lo.tolist() == [0, 14, 100] and hi.tolist() == [10, 20, 101]
        lo, hi, which = coalesce_ranges(offsets, lengths, max_gap=4)
        assert lo.tolist() == [0, 100] and hi.tolist() == [20, 101]
        assert which.tolist() == [0, 0, 1]

    def test_unsorted_input_maps_back(self):
        offsets = np.array([50, 0, 10], dtype=np.int64)
        lengths = np.array([5, 10, 10], dtype=np.int64)
        lo, hi, which = coalesce_ranges(offsets, lengths, max_gap=0)
        assert lo.tolist() == [0, 50] and hi.tolist() == [20, 55]
        assert which.tolist() == [1, 0, 0]

    @pytest.mark.parametrize("gap", [0, 1, 7, 64, 10**6])
    def test_fuzzed_invariants(self, gap):
        rng = default_rng(f"coalesce-{gap}")
        for _ in range(25):
            n = int(rng.integers(1, 40))
            offsets = rng.integers(0, 2000, size=n).astype(np.int64)
            lengths = rng.integers(1, 120, size=n).astype(np.int64)
            lo, hi, which = coalesce_ranges(offsets, lengths, max_gap=gap)
            # Every input range is fully contained in its assigned fetch range.
            assert np.all(lo[which] <= offsets)
            assert np.all(offsets + lengths <= hi[which])
            # Fetch ranges are sorted, non-overlapping, and separated by more
            # than the merge gap (otherwise they would have merged).
            assert np.all(lo < hi)
            if lo.size > 1:
                assert np.all(lo[1:] > hi[:-1] + gap)


# -- batch paste planning ------------------------------------------------------


class TestPasteSlicesBatch:
    def test_matches_scalar_paste_slices(self):
        rng = default_rng("paste-batch")
        for _ in range(30):
            ndim = int(rng.integers(1, 4))
            unit = int(rng.integers(1, 9))
            shape = tuple(int(rng.integers(unit, 4 * unit)) for _ in range(ndim))
            bbox = tuple(
                tuple(sorted(rng.integers(0, s, size=2).tolist()))
                for s in shape
            )
            bbox = tuple((lo, hi + 1) for lo, hi in bbox)  # non-empty
            nblocks = tuple(-(-s // unit) for s in shape)
            coords = np.stack(
                [rng.integers(0, nb, size=12) for nb in nblocks], axis=1
            )
            dst_b, src_b, full = paste_slices_batch(coords, unit, bbox)
            for i, coord in enumerate(coords):
                dst, src = paste_slices(coord, unit, bbox)
                assert bounds_to_slices(dst_b[i]) == dst
                assert bounds_to_slices(src_b[i]) == src
                is_full = all(
                    s == slice(0, unit) for s in src
                )
                assert bool(full[i]) == is_full

    def test_block_bounds_matches_block_cell_slices(self):
        rng = default_rng("block-bounds")
        coords = rng.integers(0, 7, size=(20, 3))
        starts, stops = block_bounds(coords, 8)
        for i, coord in enumerate(coords):
            expected = block_cell_slices(coord, 8)
            got = tuple(slice(a, b) for a, b in zip(starts[i], stops[i]))
            assert got == expected
        # Clamped stops model overhanging edge blocks.
        _, stops = block_bounds(np.array([[3, 3, 3]]), 8, shape=(30, 25, 32))
        assert stops.tolist() == [[30, 25, 32]]


# -- fetch-path equivalence on real containers ---------------------------------


@pytest.fixture(scope="module")
def fuzz_container(tmp_path_factory):
    """A container with dropped blocks and overhanging edge blocks."""
    from repro.store.engine import CodecEngine
    from repro.store.format import BlockLevel, write_container

    rng = default_rng("coalesce-container")
    shape, unit = (27, 22, 19), 8  # nothing is a multiple of the unit
    data = rng.standard_normal(shape)
    grid = [-(-n // unit) for n in shape]
    coords = np.stack(
        [g.ravel() for g in np.meshgrid(*[np.arange(g) for g in grid], indexing="ij")],
        axis=1,
    )
    # Drop ~40% of the blocks (an AMR level only occupies a subset).
    keep = rng.random(coords.shape[0]) > 0.4
    keep[0] = True
    coords = coords[keep]
    blocks = np.zeros((coords.shape[0],) + (unit,) * len(shape), dtype=np.float64)
    for i, coord in enumerate(coords):
        src = tuple(
            slice(int(c) * unit, min((int(c) + 1) * unit, n))
            for c, n in zip(coord, shape)
        )
        dst = tuple(slice(0, sl.stop - sl.start) for sl in src)
        blocks[i][dst] = data[src]
    payloads = CodecEngine("sz3").encode_blocks(blocks, 0.05)
    path = tmp_path_factory.mktemp("coalesce") / "fuzz.rps2"
    write_container(
        path,
        [
            BlockLevel(
                level=0,
                level_shape=shape,
                unit_size=unit,
                coords=coords,
                payloads=payloads,
            )
        ],
        error_bound=0.05,
        codec="sz3",
    )
    return path


class TestFetchEquivalence:
    def _positions(self, reader, rng):
        n = reader.n_blocks
        k = int(rng.integers(1, n + 1))
        positions = rng.choice(n, size=k, replace=False)
        rng.shuffle(positions)
        return positions

    def test_coalesced_mmap_equals_per_block_reads(self, fuzz_container):
        mmap_reader = ContainerReader(fuzz_container, payload_source="mmap")
        file_reader = ContainerReader(
            fuzz_container, payload_source="file", coalesce_gap=None
        )
        assert mmap_reader.payload_source == "mmap"
        assert file_reader.payload_source == "file"
        rng = default_rng("fetch-parity")
        for _ in range(20):
            positions = self._positions(mmap_reader, rng)
            coalesced = mmap_reader.fetch_entries(positions)
            per_block = file_reader.fetch_entries(positions)
            assert len(coalesced) == len(per_block)
            for a, b in zip(coalesced, per_block):
                assert bytes(a) == bytes(b)

    def test_coalesced_file_fallback_equals_mmap(self, fuzz_container):
        coalesced_file = ContainerReader(fuzz_container, payload_source="file")
        mmap_reader = ContainerReader(fuzz_container, payload_source="mmap")
        rng = default_rng("fallback-parity")
        for _ in range(10):
            positions = self._positions(mmap_reader, rng)
            assert [bytes(v) for v in coalesced_file.fetch_entries(positions)] == [
                bytes(v) for v in mmap_reader.fetch_entries(positions)
            ]

    def test_auto_falls_back_when_mmap_unavailable(self, fuzz_container, monkeypatch):
        def boom(self, path):
            raise OSError("mmap disabled for the test")

        monkeypatch.setattr(_MmapPayloadSource, "__init__", boom)
        reader = ContainerReader(fuzz_container)  # auto
        assert reader.payload_source == "file"
        assert isinstance(reader._payload_source(), _FilePayloadSource)
        # ...and still serves correct bytes.
        baseline = ContainerReader(
            fuzz_container, payload_source="file", coalesce_gap=None
        )
        positions = np.arange(reader.n_blocks)
        assert [bytes(v) for v in reader.fetch_entries(positions)] == [
            bytes(v) for v in baseline.fetch_entries(positions)
        ]

    def test_mmap_required_raises_when_unavailable(self, fuzz_container, monkeypatch):
        from repro.compressors.errors import DecompressionError

        def boom(self, path):
            raise OSError("mmap disabled for the test")

        monkeypatch.setattr(_MmapPayloadSource, "__init__", boom)
        reader = ContainerReader(fuzz_container, payload_source="mmap")
        with pytest.raises(DecompressionError, match="cannot mmap"):
            reader.fetch_entries([0])

    def test_fetch_accounting(self, fuzz_container):
        reader = ContainerReader(fuzz_container)
        positions = np.arange(reader.n_blocks)
        views = reader.fetch_entries(positions)
        stats = reader.stats
        # Morton file order + coalescing: a full scan is far fewer fetches
        # than blocks (the payload section is contiguous).
        assert stats["fetch_ranges"] <= max(1, reader.n_blocks // 2)
        assert stats["payload_bytes_read"] == sum(len(v) for v in views)
        assert stats["fetch_bytes"] >= stats["payload_bytes_read"]

    def test_decodes_are_bit_for_bit_across_sources(self, fuzz_container):
        readers = [
            ContainerReader(fuzz_container, payload_source="mmap"),
            ContainerReader(fuzz_container, payload_source="file"),
            ContainerReader(fuzz_container, payload_source="file", coalesce_gap=None),
        ]
        rng = default_rng("decode-parity")
        for _ in range(5):
            positions = self._positions(readers[0], rng)
            decoded = [r.decode_entries(positions) for r in readers]
            for other in decoded[1:]:
                for a, b in zip(decoded[0], other):
                    assert np.array_equal(a, b)

    def test_close_releases_fd_and_reopens(self, fuzz_container):
        import os

        def open_fds():
            try:
                return len(os.listdir("/proc/self/fd"))
            except OSError:  # pragma: no cover - non-procfs platform
                return None

        reader = ContainerReader(fuzz_container, payload_source="mmap")
        before = open_fds()
        first = [bytes(v) for v in reader.fetch_entries([0])]
        during = open_fds()
        if before is not None:
            assert during == before + 1  # the mapping's fd (the fh is closed)
        reader.close()
        reader.close()  # idempotent
        if before is not None:
            assert open_fds() == before
        # A closed reader lazily reopens on the next fetch.
        assert [bytes(v) for v in reader.fetch_entries([0])] == first

    def test_context_manager_closes(self, fuzz_container):
        with ContainerReader(fuzz_container) as reader:
            reader.fetch_entries([0])
        assert reader._source is None

    def test_truncated_payload_diagnostic(self, fuzz_container, tmp_path):
        from repro.compressors.errors import DecompressionError

        blob = fuzz_container.read_bytes()
        clipped = tmp_path / "clipped.rps2"
        clipped.write_bytes(blob[:-16])
        # The index-vs-file-size check fires at open, whatever the payload
        # source — torn files never produce a usable reader.
        for source in ("mmap", "file"):
            with pytest.raises(DecompressionError, match="truncated container"):
                ContainerReader(clipped, payload_source=source)
