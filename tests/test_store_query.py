"""Unit tests for the pure bbox/block arithmetic in ``repro.store.query``.

Every store read path — ``read_blocks``/``read_roi``, the lazy
``CompressedArray`` view, the CLI — compiles to these few functions, so they
are pinned down exhaustively here without any file I/O.
"""

import numpy as np
import pytest

from repro.store.query import (
    bbox_to_block_range,
    block_cell_slices,
    blocks_in_range,
    normalize_bbox,
    paste_slices,
)


class TestNormalizeBbox:
    def test_passthrough(self):
        assert normalize_bbox(((0, 8), (4, 12)), (16, 16)) == ((0, 8), (4, 12))

    def test_clamps_to_domain(self):
        assert normalize_bbox(((-5, 8), (10, 99)), (16, 16)) == ((0, 8), (10, 16))

    def test_wrong_axis_count(self):
        with pytest.raises(ValueError, match="2 axes .* 3-dimensional"):
            normalize_bbox(((0, 8), (0, 8)), (16, 16, 16))

    def test_empty_axis_message(self):
        with pytest.raises(
            ValueError, match=r"bbox axis 1 is empty after clamping to \[0, 16\)"
        ):
            normalize_bbox(((0, 8), (5, 5)), (16, 16))

    def test_fully_outside_domain_has_dedicated_message(self):
        # A non-empty box with no overlap is *outside*, not "empty after
        # clamping" — the old message blamed the clamp for a caller mistake.
        with pytest.raises(
            ValueError,
            match=r"bbox axis 0 \(20, 30\) lies entirely outside the domain \[0, 16\)",
        ):
            normalize_bbox(((20, 30), (0, 8)), (16, 16))

    def test_fully_below_domain_has_dedicated_message(self):
        with pytest.raises(
            ValueError,
            match=r"bbox axis 1 \(-9, -2\) lies entirely outside the domain \[0, 16\)",
        ):
            normalize_bbox(((0, 8), (-9, -2)), (16, 16))

    def test_edge_touching_box_is_still_empty_not_outside(self):
        # (16, 20) on a 16-wide axis overlaps nothing but starts exactly at
        # the boundary; (0, 0) is a zero-cell box.  Both are "outside" by the
        # no-overlap rule and must say so, except the truly empty (0, 0)
        # which has no cells to be outside with.
        with pytest.raises(ValueError, match="entirely outside"):
            normalize_bbox(((16, 20),), (16,))
        with pytest.raises(ValueError, match="empty after clamping"):
            normalize_bbox(((0, 0),), (16,))

    def test_inverted_box_is_empty(self):
        with pytest.raises(ValueError, match="empty after clamping"):
            normalize_bbox(((8, 2),), (16,))

    def test_coerces_to_ints(self):
        out = normalize_bbox(((np.int64(0), np.int64(8)),), (np.int64(16),))
        assert out == ((0, 8),)
        assert all(isinstance(v, int) for pair in out for v in pair)


class TestBlockRange:
    def test_aligned(self):
        assert bbox_to_block_range(((0, 16), (8, 24)), 8) == ((0, 2), (1, 3))

    def test_unaligned_rounds_outward(self):
        assert bbox_to_block_range(((3, 9), (7, 8)), 8) == ((0, 2), (0, 1))

    def test_unit_one(self):
        assert bbox_to_block_range(((3, 9),), 1) == ((3, 9),)


class TestBlocksInRange:
    def test_selects_inside_half_open(self):
        coords = np.array([[0, 0], [1, 0], [1, 1], [2, 2]])
        keep = blocks_in_range(coords, ((0, 2), (0, 2)))
        assert keep.tolist() == [True, True, True, False]

    def test_empty_range_selects_nothing(self):
        coords = np.array([[0, 0], [1, 1]])
        assert not blocks_in_range(coords, ((1, 1), (0, 2))).any()


class TestSlices:
    def test_block_cell_slices(self):
        assert block_cell_slices((2, 0), 8) == (slice(16, 24), slice(0, 8))

    @pytest.mark.parametrize(
        "coord,bbox",
        [
            ((0, 0), ((0, 8), (0, 8))),  # block fully inside
            ((0, 0), ((3, 5), (2, 7))),  # bbox inside the block
            ((1, 1), ((4, 12), (6, 10))),  # partial overlap on both axes
        ],
    )
    def test_paste_slices_copies_exact_overlap(self, coord, bbox):
        u = 8
        level = np.arange(16 * 16, dtype=np.float64).reshape(16, 16)
        block = level[block_cell_slices(coord, u)]
        out = np.full(tuple(hi - lo for lo, hi in bbox), np.nan)
        dst, src = paste_slices(coord, u, bbox)
        out[dst] = block[src]
        # Every cell of the bbox owned by this block must carry the level
        # value; cells outside the block stay untouched.
        expected = level[tuple(slice(lo, hi) for lo, hi in bbox)]
        own = ~np.isnan(out)
        assert np.array_equal(out[own], expected[own])
        lo0, hi0 = coord[0] * u, (coord[0] + 1) * u
        lo1, hi1 = coord[1] * u, (coord[1] + 1) * u
        for (i, j), filled in np.ndenumerate(own):
            ci, cj = i + bbox[0][0], j + bbox[1][0]
            assert filled == (lo0 <= ci < hi0 and lo1 <= cj < hi1)

    def test_paste_slices_cover_bbox_when_blocks_tile(self):
        # Pasting every intersecting block of a tiled domain fills the bbox.
        # (paste_slices is only defined for intersecting blocks, which is what
        # the index range-query guarantees in the real read path.)
        u, shape = 4, (12, 12)
        level = np.random.default_rng(0).standard_normal(shape)
        bbox = normalize_bbox(((2, 11), (5, 12)), shape)
        block_range = bbox_to_block_range(bbox, u)
        out = np.full((9, 7), np.nan)
        for ci in range(*block_range[0]):
            for cj in range(*block_range[1]):
                dst, src = paste_slices((ci, cj), u, bbox)
                block = level[block_cell_slices((ci, cj), u)]
                out[dst] = block[src]
        assert np.array_equal(out, level[2:11, 5:12])
