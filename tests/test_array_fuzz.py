"""Indexing fuzz: ``CompressedArray.__getitem__`` ≡ NumPy, locally and remotely.

Seeded random shapes × random basic-indexing expressions (ints incl. negative
and out-of-range, slices with negative/odd steps and open ends, ``...``,
dropped trailing axes), asserted against NumPy on the reconstruction:

* **pure views** (1–4 dims, arbitrary non-multiple-of-block sizes) wrap a
  plain ndarray through :func:`repro.array.as_lazy_array`, so the index
  compiler is exercised with no codec in the loop and the comparison is
  exact;
* **container views** (2–3 dims — the ``.rps2`` Morton index is 2D/3D) are
  hand-built block files whose level shape is deliberately *not* a multiple
  of the unit size (edge blocks overhang the domain) with randomly dropped
  blocks (AMR-style holes reading as ``fill_value``); the reference is the
  independently scattered reconstruction, so equality is bit-for-bit;
* every container case is also adopted into the session daemon's store and
  replayed through :class:`~repro.serve.RemoteArray` — same seed, same
  expressions — asserting remote ≡ local bit-for-bit, including error *type
  and message* parity for the failure draws.

One documented divergence from NumPy: selections with zero cells (empty
slices, fully out-of-range slices) raise ``ValueError`` on every bbox surface
instead of returning an empty array; the harness asserts exactly that.

The seed matrix is driven by ``REPRO_FUZZ_SEED`` (CI runs several); any
failure prints the seed, shape and expression needed to replay it.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

import numpy as np
import pytest

from repro.array import BlockCache, CompressedArray, ContainerSource, as_lazy_array
from repro.store.engine import CodecEngine
from repro.store.format import BlockLevel, ContainerReader, write_container
from repro.utils.rng import default_rng

FUZZ_SEED = os.environ.get("REPRO_FUZZ_SEED", "fuzz-0")
N_PURE_CASES = 48
N_CONTAINER_CASES = 6
INDICES_PER_CASE = 5
ERROR_BOUND = 0.05


# -- random expression generator -----------------------------------------------
def random_axis_index(rng, n: int) -> Any:
    """One per-axis index element: int (sometimes out of range) or slice."""
    draw = rng.random()
    if draw < 0.30:
        if rng.random() < 0.12:  # deliberately out of range (both sides)
            return int(rng.choice([n + int(rng.integers(0, 3)), -n - 1 - int(rng.integers(0, 3))]))
        return int(rng.integers(-n, n))
    def maybe(lo: int, hi: int) -> Optional[int]:
        return None if rng.random() < 0.35 else int(rng.integers(lo, hi))
    step = None if rng.random() < 0.3 else int(rng.choice([-4, -3, -2, -1, 1, 2, 3, 5]))
    return slice(maybe(-n - 2, n + 3), maybe(-n - 2, n + 3), step)


def random_index(rng, shape: Tuple[int, ...]) -> Any:
    """A full expression: per-axis elements, ``...``, dropped trailing axes."""
    items: List[Any] = [random_axis_index(rng, n) for n in shape]
    if rng.random() < 0.25:  # drop trailing axes (implicit full slices)
        items = items[: int(rng.integers(0, len(items) + 1))]
    if rng.random() < 0.25:  # replace a run with '...' (those axes go full)
        i = int(rng.integers(0, len(items) + 1))
        j = int(rng.integers(i, len(items) + 1))
        items = items[:i] + [Ellipsis] + items[j:]
    if rng.random() < 0.05:  # too many indices
        items = items + [0] * (len(shape) + 1 - sum(1 for x in items if x is not Ellipsis))
    if len(items) == 1 and rng.random() < 0.5:
        return items[0]
    return tuple(items)


# -- the oracle ----------------------------------------------------------------
def check_against_numpy(view, reference: np.ndarray, index, label: str, remote=None):
    """Assert the view (and optionally its remote twin) matches NumPy.

    NumPy is the oracle for everything it accepts; zero-cell selections are
    the documented divergence (ValueError on every bbox surface).  Error
    draws must fail with the same exception type locally and remotely, with
    the same message.
    """
    try:
        expected = reference[index]
    except IndexError:
        with pytest.raises(IndexError):
            view[index]
        if remote is not None:
            with pytest.raises(IndexError):
                remote[index]
        return
    if np.asarray(expected).size == 0:
        with pytest.raises(ValueError):
            view[index]
        if remote is not None:
            local_msg = remote_msg = None
            try:
                view[index]
            except ValueError as exc:
                local_msg = str(exc)
            try:
                remote[index]
            except ValueError as exc:
                remote_msg = str(exc)
            assert remote_msg == local_msg, f"{label}: error text diverged for {index!r}"
        return
    got = view[index]
    got_arr, want_arr = np.asarray(got), np.asarray(expected)
    assert got_arr.shape == want_arr.shape, f"{label}: shape for {index!r}"
    assert got_arr.dtype == want_arr.dtype, f"{label}: dtype for {index!r}"
    assert np.array_equal(got_arr, want_arr), f"{label}: values for {index!r}"
    if remote is not None:
        remote_got = np.asarray(remote[index])
        assert remote_got.shape == got_arr.shape, f"{label}: remote shape for {index!r}"
        assert remote_got.dtype == got_arr.dtype, f"{label}: remote dtype for {index!r}"
        assert np.array_equal(remote_got, got_arr), (
            f"{label}: remote values diverged for {index!r}"
        )


# -- pure views: the index compiler with no codec in the loop -------------------
@pytest.mark.parametrize("case", range(N_PURE_CASES))
def test_pure_view_fuzz(case):
    rng = default_rng(f"{FUZZ_SEED}:pure:{case}")
    ndim = int(rng.integers(1, 5))
    shape = tuple(int(rng.integers(1, 13)) for _ in range(ndim))
    data = rng.standard_normal(shape)
    view = as_lazy_array(data)
    assert view.shape == shape
    label = f"seed={FUZZ_SEED} pure case={case} shape={shape}"
    for _ in range(INDICES_PER_CASE):
        check_against_numpy(view, data, random_index(rng, shape), label)


# -- container fuzz: hand-built .rps2 files, local and through the daemon -------
def build_fuzz_container(path, rng, shape: Tuple[int, ...], unit: int):
    """Write a container whose edge blocks overhang a non-multiple domain."""
    ndim = len(shape)
    data = rng.standard_normal(shape)
    grid = [-(-n // unit) for n in shape]
    coords = np.stack(
        [g.ravel() for g in np.meshgrid(*[np.arange(g) for g in grid], indexing="ij")],
        axis=1,
    )
    keep = rng.random(coords.shape[0]) < 0.85
    keep[int(rng.integers(0, coords.shape[0]))] = True  # never fully empty
    coords = coords[keep]
    blocks = np.zeros((coords.shape[0],) + (unit,) * ndim, dtype=np.float64)
    for i, coord in enumerate(coords):
        src = tuple(
            slice(int(c) * unit, min((int(c) + 1) * unit, n)) for c, n in zip(coord, shape)
        )
        dst = tuple(slice(0, sl.stop - sl.start) for sl in src)
        blocks[i][dst] = data[src]
    payloads = CodecEngine("sz3").encode_blocks(blocks, ERROR_BOUND)
    write_container(
        path,
        [
            BlockLevel(
                level=0,
                level_shape=shape,
                unit_size=unit,
                coords=coords,
                payloads=payloads,
            )
        ],
        error_bound=ERROR_BOUND,
        codec="sz3",
    )
    # Reference reconstruction, scattered independently of the query path
    # (dropped blocks stay at the fill value 0).
    reader = ContainerReader(path)
    reference = np.zeros(shape, dtype=np.float64)
    decoded = reader.decode_entries(np.arange(reader.n_blocks))
    for pos, block in enumerate(decoded):
        coord = reader.index.coords[pos, :ndim]
        dst = tuple(
            slice(int(c) * unit, min((int(c) + 1) * unit, n)) for c, n in zip(coord, shape)
        )
        src = tuple(slice(0, sl.stop - sl.start) for sl in dst)
        reference[dst] = block[src]
    return reference


@pytest.mark.parametrize("case", range(N_CONTAINER_CASES))
def test_container_and_remote_fuzz(case, tmp_path, serve_store, remote_store):
    rng = default_rng(f"{FUZZ_SEED}:container:{case}")
    ndim = int(rng.integers(2, 4))
    unit = int(rng.integers(3, 7))
    # Sizes are drawn freely, then one axis is forced off the block grid so
    # every case exercises an overhanging edge block.
    shape = [int(rng.integers(max(2, unit - 1), 4 * unit)) for _ in range(ndim)]
    forced = int(rng.integers(0, ndim))
    if shape[forced] % unit == 0:
        shape[forced] += 1
    shape = tuple(shape)

    path = tmp_path / f"fuzz{case}.rps2"
    reference = build_fuzz_container(path, rng, shape, unit)

    local = CompressedArray(
        ContainerSource(ContainerReader(path)), cache=BlockCache()
    )
    assert local.shape == shape

    # The same bytes through the daemon: adopt into the shared store and open
    # a remote view over the fixture connection.
    field = f"fuzz-{FUZZ_SEED}"
    serve_store.adopt(field, case, path, overwrite=True)
    remote = remote_store.array(field, case)
    assert remote.shape == shape

    label = f"seed={FUZZ_SEED} container case={case} shape={shape} unit={unit}"
    for _ in range(INDICES_PER_CASE):
        check_against_numpy(
            local, reference, random_index(rng, shape), label, remote=remote
        )

    # Whole-domain read: the strongest bit-for-bit statement, plus proof the
    # daemon answered from its shared cache on the second pass.
    assert np.array_equal(np.asarray(local[...]), reference)
    first = np.asarray(remote[...])
    decoded_before = remote.stats["blocks_decoded"]
    again = np.asarray(remote[...])
    assert np.array_equal(first, reference)
    assert first.tobytes() == again.tobytes()  # same seed, same bytes
    assert remote.stats["blocks_decoded"] == decoded_before  # all warm


def test_remote_matches_local_on_store_entries(serve_store, remote_store):
    """The fuzz oracle holds on real appended entries too (3D, 2D, AMR)."""
    rng = default_rng(f"{FUZZ_SEED}:entries")
    for field, step in [("density", 0), ("plane", 0), ("amr", 0)]:
        local = serve_store[field, step]
        remote = remote_store[field, step]
        reference = np.asarray(local[...])
        label = f"seed={FUZZ_SEED} entry={field}/{step}"
        for _ in range(INDICES_PER_CASE):
            check_against_numpy(
                local, reference, random_index(rng, local.shape), label, remote=remote
            )
