"""Runtime lock-order detector: cycles, blocking calls, install round-trips.

These tests drive :class:`InstrumentedLock` directly (the same object
``install()`` hands every ``repro.*`` module) so the deliberate A→B/B→A
deadlock shape and the lock-held blocking socket call are exercised without
having to race real threads into the interleaving.
"""

import socket
import threading

import pytest

from repro.devtools import lockcheck


@pytest.fixture(autouse=True)
def clean_detector_state():
    # The detector accumulates in module globals shared with the session-wide
    # REPRO_LOCKCHECK gate; reset around each test so the deliberate
    # violations staged here never leak into the suite's final verdict.
    lockcheck.reset()
    yield
    lockcheck.reset()


def _lock():
    return lockcheck.InstrumentedLock(threading.Lock())


# -- ordering graph --------------------------------------------------------------
def test_consistent_order_records_edge_but_no_cycle():
    a, b = _lock(), _lock()
    for _ in range(2):
        with a:
            with b:
                pass
    rep = lockcheck.report()
    assert rep["edges"] >= 1
    assert rep["cycles"] == []
    assert lockcheck.violations() == []


def test_opposite_order_is_reported_as_a_cycle():
    a, b = _lock(), _lock()
    with a:
        with b:
            pass
    with b:
        with a:  # closes the a->b / b->a cycle
            pass
    cycles = [v for v in lockcheck.violations() if v["kind"] == "lock-order-cycle"]
    assert len(cycles) == 1
    assert a.site in cycles[0]["edge"] or a.site in cycles[0]["reverse_path"]


def test_three_lock_cycle_found_through_the_transitive_path():
    a, b, c = _lock(), _lock(), _lock()
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:  # a->b->c exists, so c->a closes a 3-cycle
            pass
    cycles = [v for v in lockcheck.violations() if v["kind"] == "lock-order-cycle"]
    assert len(cycles) == 1


def test_reentrant_rlock_acquire_records_nothing():
    r = lockcheck.InstrumentedLock(threading.RLock(), reentrant=True)
    with r:
        with r:
            pass
    rep = lockcheck.report()
    assert rep["edges"] == 0 and rep["cycles"] == []


def test_nonblocking_probe_carries_no_ordering_information():
    a, b = _lock(), _lock()
    with a:
        assert b.acquire(False)  # try-lock cannot deadlock
        b.release()
    with b:
        with a:
            pass
    assert lockcheck.violations() == []


def test_locks_release_out_of_lifo_order():
    a, b = _lock(), _lock()
    a.acquire()
    b.acquire()
    a.release()  # not LIFO: a released while b still held
    b.release()
    with b:
        with a:
            pass
    # The only edges recorded are a->b (first block) and b->a (second); the
    # out-of-order release must not have corrupted the per-thread stack.
    cycles = [v for v in lockcheck.violations() if v["kind"] == "lock-order-cycle"]
    assert len(cycles) == 1


# -- blocking socket calls -------------------------------------------------------
def test_blocking_socket_call_while_lock_held_is_reported():
    was_installed = lockcheck.installed()
    lockcheck.install()
    try:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        guard = _lock()
        client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            with guard:
                client.connect(("127.0.0.1", port))
        finally:
            client.close()
            listener.close()

        blocking = [
            v for v in lockcheck.violations()
            if v["kind"] == "lock-held-blocking-call"
        ]
        assert any(v["call"] == "socket.connect" for v in blocking)
        assert any(v["lock"] == guard.site for v in blocking)
    finally:
        if not was_installed:
            lockcheck.uninstall()


def test_socket_call_without_lock_is_clean():
    was_installed = lockcheck.installed()
    lockcheck.install()
    try:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            client.connect(("127.0.0.1", port))
        finally:
            client.close()
            listener.close()
        assert [
            v for v in lockcheck.violations()
            if v["kind"] == "lock-held-blocking-call"
        ] == []
    finally:
        if not was_installed:
            lockcheck.uninstall()


# -- install / uninstall ---------------------------------------------------------
def test_install_swaps_threading_and_uninstall_restores():
    if lockcheck.installed():
        pytest.skip("lockcheck already active for this session (REPRO_LOCKCHECK=1)")
    import repro.obs.metrics as metrics_mod

    assert metrics_mod.threading is threading
    swapped = lockcheck.install()
    try:
        assert lockcheck.installed()
        assert swapped >= 1
        assert metrics_mod.threading is not threading
        lock = metrics_mod.threading.Lock()
        assert isinstance(lock, lockcheck.InstrumentedLock)
        # Everything but Lock/RLock delegates to the real module.
        assert metrics_mod.threading.current_thread() is threading.current_thread()
    finally:
        lockcheck.uninstall()
    assert not lockcheck.installed()
    assert metrics_mod.threading is threading


def test_report_shape_and_reset():
    a = _lock()
    with a:
        pass
    rep = lockcheck.report()
    assert set(rep) == {"installed", "locks", "edges", "cycles", "blocking"}
    assert rep["locks"] >= 1
    lockcheck.reset()
    rep = lockcheck.report()
    assert rep["edges"] == 0 and rep["cycles"] == [] and rep["blocking"] == []
