"""Golden-fixture tests per lint rule, the plugin API, baselines and dogfood.

Each ``*_bad`` fixture pins the exact findings a rule must produce and each
``*_good`` fixture pins the escapes it must honor; the dogfood test then runs
the real rule set over ``src/`` and asserts the tree the CI gate protects is
actually clean.
"""

import ast
from pathlib import Path

import pytest

from repro.devtools import (
    Rule,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _rule_ids(findings):
    return sorted(f.rule for f in findings)


# -- lock-guard ------------------------------------------------------------------
def test_lock_guard_flags_unlocked_access():
    findings = lint_paths([FIXTURES / "locks_bad.py"])
    assert _rule_ids(findings) == ["lock-guard"] * 3
    assert all("self._items" in f.message for f in findings)
    assert all("guarded by 'self._lock'" in f.message for f in findings)
    # Three distinct access sites: plain method, after-with, closure.
    assert len({f.line for f in findings}) == 3


def test_lock_guard_honors_with_holds_and_unlocked():
    assert lint_paths([FIXTURES / "locks_good.py"]) == []


# -- wire-protocol ---------------------------------------------------------------
def test_wire_rule_reports_all_three_sides():
    findings = lint_paths([FIXTURES / "wire_bad"])
    assert _rule_ids(findings) == ["wire-protocol"] * 9
    messages = "\n".join(f.message for f in findings)
    # dispatch coverage, both directions
    assert "'fetch' is declared in WIRE_OPS but BadDaemon._dispatch" in messages
    assert "'stats' is declared in WIRE_OPS but BadDaemon._dispatch" in messages
    assert "handles op 'extra' which is not declared" in messages
    # client coverage, both directions
    assert 'no client builds a {"op": "fetch"}' in messages
    assert 'no client builds a {"op": "stats"}' in messages
    assert "'rogue' is not declared in WIRE_OPS" in messages
    # error registration
    assert "raises UnknownBoom, which is not registered" in messages
    # gateway status coverage: both registration styles are cross-checked
    assert "'KeyError' is registered for typed wire transport" in messages
    assert "'Overloaded' is registered for typed wire transport" in messages
    assert messages.count("no STATUS_BY_ERROR_TYPE entry") == 2


def test_wire_rule_silent_on_covered_protocol():
    assert lint_paths([FIXTURES / "wire_good"]) == []


def test_wire_rule_silent_without_wire_ops():
    # A project that declares no op vocabulary is out of the rule's scope.
    assert lint_paths([FIXTURES / "hygiene_good.py"]) == []


# -- metrics-hygiene -------------------------------------------------------------
def test_metrics_rule_flags_naming_conflicts_and_labels():
    findings = lint_paths([FIXTURES / "metrics_bad.py"])
    assert _rule_ids(findings) == ["metrics-hygiene"] * 5
    messages = "\n".join(f.message for f in findings)
    assert "counter 'repro_reads' must end in '_total'" in messages
    assert "'Bad_Name' does not match repro_" in messages
    assert "'repro_mixed_total' registered as gauge" in messages
    assert "'repro_dup_total' registered twice in this module" in messages
    assert "labels(code, verb)" in messages


def test_metrics_rule_silent_on_hygienic_module():
    assert lint_paths([FIXTURES / "metrics_good.py"]) == []


# -- hygiene rules ---------------------------------------------------------------
def test_hygiene_rules_flag_each_shape():
    findings = lint_paths([FIXTURES / "hygiene_bad.py"])
    assert _rule_ids(findings) == [
        "bare-except",
        "deprecated-api",
        "deprecated-api",
        "mutable-default",
        "mutable-default",
        "unclosed-resource",
        "unclosed-resource",
    ]


def test_hygiene_rules_honor_escapes_and_ignore():
    # Includes an unclosed open() carrying # repro: ignore[unclosed-resource].
    assert lint_paths([FIXTURES / "hygiene_good.py"]) == []


# -- engine behavior -------------------------------------------------------------
def test_unparsable_file_becomes_parse_error_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", "utf-8")
    findings = lint_paths([target])
    assert [f.rule for f in findings] == ["parse-error"]
    assert "cannot parse" in findings[0].message


def test_custom_rule_plugs_into_the_engine(tmp_path):
    class NoPrintRule(Rule):
        id = "no-print"
        help = "print() is not a logging strategy"
        node_types = (ast.Call,)

        def visit(self, node, ctx):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                ctx.report(node, "use logging instead of print()")

    target = tmp_path / "mod.py"
    target.write_text("print('hi')\nprint('bye')  # repro: ignore[no-print]\n", "utf-8")
    findings = lint_paths([target], rules=[NoPrintRule()])
    # The second call is suppressed by the ignore directive the engine applies
    # uniformly to every rule, built-in or plugin.
    assert [(f.rule, f.line) for f in findings] == [("no-print", 1)]


def test_findings_are_sorted_and_addressable():
    findings = lint_paths([FIXTURES / "hygiene_bad.py"])
    keys = [(f.path, f.line, f.col) for f in findings]
    assert keys == sorted(keys)
    rendered = str(findings[0])
    assert findings[0].path in rendered and findings[0].rule in rendered


# -- baseline --------------------------------------------------------------------
def test_baseline_roundtrip_grandfathers_exact_counts(tmp_path):
    findings = lint_paths([FIXTURES / "hygiene_bad.py"])
    assert findings
    path = tmp_path / "lint-baseline.json"
    write_baseline(findings, path)
    budget = load_baseline(path)

    new, grandfathered = apply_baseline(findings, budget)
    assert new == [] and grandfathered == len(findings)

    # One occurrence beyond the per-fingerprint budget is new again.
    new, grandfathered = apply_baseline(findings + [findings[0]], budget)
    assert len(new) == 1 and grandfathered == len(findings)
    assert new[0].fingerprint == findings[0].fingerprint


def test_baseline_fingerprints_survive_line_churn():
    findings = lint_paths([FIXTURES / "hygiene_bad.py"])
    moved = [type(f)(f.path, f.line + 40, f.col, f.rule, f.message) for f in findings]
    budget = {f.fingerprint: 1 for f in findings}
    new, grandfathered = apply_baseline(moved, budget)
    assert new == [] and grandfathered == len(findings)


def test_baseline_missing_file_is_empty_and_corrupt_raises(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{}", "utf-8")
    with pytest.raises(ValueError):
        load_baseline(corrupt)


# -- dogfood ---------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    """The CI gate's invariant: zero findings over src/ with an empty baseline."""
    findings = lint_paths([REPO_SRC])
    assert findings == [], "\n".join(str(f) for f in findings)
