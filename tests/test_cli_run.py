"""Tests for `repro run` and the CLI's one-line failure modes."""

import json

import numpy as np
import pytest

import repro
from repro.api import CodecSpec, ErrorBound, PipelineConfig, WorkflowConfig
from repro.cli import main
from repro.datasets.synthetic import smooth_wave_field


@pytest.fixture()
def field_file(tmp_path):
    field = smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))
    path = tmp_path / "field.npy"
    np.save(path, field)
    return path, field


class TestRunCommand:
    def test_workflow_config_smoke(self, tmp_path, field_file, capsys):
        path, _ = field_file
        config = WorkflowConfig(
            codec=CodecSpec(unit_size=8), error_bound=ErrorBound.rel(0.02)
        )
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))

        assert main(["run", str(cfg_path), "--input", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["type"] == "workflow"
        assert summary["compression_ratio"] > 1
        assert summary["error_bound_spec"] == {"mode": "rel", "value": 0.02}

    def test_replay_reproduces_direct_call_exactly(self, tmp_path, field_file, capsys):
        """Acceptance: serialized config + `repro run` == direct API call."""
        path, field = field_file
        config = WorkflowConfig(
            codec=CodecSpec.sz3mr(unit_size=8),
            error_bound=ErrorBound.rel(0.02),
            roi_fraction=0.4,
        )
        direct = repro.run_workflow(field, config)

        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))
        assert main(["run", str(cfg_path), "--input", str(path)]) == 0
        replayed = json.loads(capsys.readouterr().out)

        assert replayed["compression_ratio"] == direct.compression_ratio
        assert replayed["psnr"] == direct.psnr
        assert replayed["ssim"] == direct.ssim

    def test_config_embedded_input_and_reconstruction(self, tmp_path, field_file, capsys):
        path, field = field_file
        config = WorkflowConfig(
            codec=CodecSpec(unit_size=8),
            error_bound=ErrorBound.rel(0.02),
            postprocess=False,
            input={"kind": "npy", "path": str(path)},
        )
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))
        recon_path = tmp_path / "recon.npy"
        out_json = tmp_path / "summary.json"

        assert main([
            "run", str(cfg_path),
            "--save-reconstruction", str(recon_path),
            "--output-json", str(out_json),
        ]) == 0
        recon = np.load(recon_path)
        assert recon.shape == field.shape
        summary = json.loads(out_json.read_text())
        assert summary == json.loads(capsys.readouterr().out)

    def test_pipeline_config_runs_simulation(self, tmp_path, capsys):
        config = PipelineConfig(
            codec=CodecSpec(unit_size=8),
            error_bound=ErrorBound.rel(0.05),
            n_steps=2,
            source={"kind": "simulation", "name": "collapse",
                    "shape": [16, 16, 16], "block_size": 8, "seed": 1},
            sink={"kind": "store", "path": str(tmp_path / "run")},
        )
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))

        assert main(["run", str(cfg_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["type"] == "pipeline"
        assert len(summary["steps"]) == 2
        assert (tmp_path / "run" / "manifest.json").exists()

    def test_missing_config_exits_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(tmp_path / "nope.json")])
        assert excinfo.value.code
        assert "error:" in str(excinfo.value.code)

    def test_invalid_config_one_line_error(self, tmp_path, capsys):
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text("{\"type\": \"daemon\"}")
        assert main(["run", str(cfg_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "\n" in err and err.count("\n") == 1

    def test_pipeline_config_rejects_input_flag(self, tmp_path, field_file, capsys):
        path, _ = field_file
        config = PipelineConfig(codec=CodecSpec(unit_size=8))
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))
        assert main(["run", str(cfg_path), "--input", str(path)]) == 1
        assert "workflow configs only" in capsys.readouterr().err

    def test_workflow_config_without_input_errors(self, tmp_path, capsys):
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(WorkflowConfig().to_dict()))
        assert main(["run", str(cfg_path)]) == 1
        assert "no input" in capsys.readouterr().err


class TestRobustness:
    """Satellite: malformed inputs exit non-zero with one-line messages."""

    def test_malformed_bbox_specs(self, tmp_path, field_file, capsys):
        path, field = field_file
        store_root = tmp_path / "store"
        store = repro.open_store(store_root, CodecSpec(unit_size=8))
        store.append("rho", 0, field, 0.05)
        out = tmp_path / "o.npy"
        for bad in ("5", "a:b,c:d,e:f", "0:16,0:16"):
            with pytest.raises(SystemExit) as excinfo:
                main(["store", "roi", str(store_root), "rho", "0", str(out), "--bbox", bad])
            assert "error:" in str(excinfo.value.code)

    def test_evaluate_shape_mismatch(self, tmp_path, capsys):
        a, b = tmp_path / "a.npy", tmp_path / "b.npy"
        np.save(a, np.zeros((8, 8)))
        np.save(b, np.zeros((8, 9)))
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", str(a), str(b)])
        assert "shape mismatch" in str(excinfo.value.code)

    def test_missing_store_manifest(self, tmp_path):
        empty = tmp_path / "not_a_store"
        empty.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "ls", str(empty)])
        assert "error:" in str(excinfo.value.code)

    def test_missing_input_file(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["compress", str(tmp_path / "nope.npy"), str(tmp_path / "o.rpca"),
                  "--error-bound", "1e-3"])
        assert "does not exist" in str(excinfo.value.code)

    def test_pathless_source_section_names_the_field(self, tmp_path, capsys):
        config = PipelineConfig(codec=CodecSpec(unit_size=8),
                                source={"kind": "npy"})
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config.to_dict()))
        assert main(["run", str(cfg_path)]) == 1
        assert "needs a 'path'" in capsys.readouterr().err

    def test_negative_error_bound_one_line(self, tmp_path, field_file, capsys):
        path, _ = field_file
        assert main(["compress", str(path), str(tmp_path / "o.rpca"),
                     "--error-bound", "-1"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_mode_and_relative_conflict(self, tmp_path, field_file):
        path, _ = field_file
        with pytest.raises(SystemExit) as excinfo:
            main(["compress", str(path), str(tmp_path / "o.rpca"),
                  "--error-bound", "0.01", "--mode", "rel", "--relative"])
        assert "cannot be combined" in str(excinfo.value.code)

    def test_psnr_mode_compresses(self, tmp_path, field_file, capsys):
        path, field = field_file
        out = tmp_path / "o.rpca"
        assert main(["compress", str(path), str(out),
                     "--error-bound", "60", "--mode", "psnr"]) == 0
        assert "ratio" in capsys.readouterr().out
