"""Golden tests for the HTTP gateway: framing, status mapping, hostility.

Mirrors ``test_serve_protocol.py`` one layer up: pure request-parsing round
trips (no sockets), hostile raw bytes against a live gateway (garbage request
lines, oversized headers, chunked bodies, mid-stream disconnects — everything
must get a clean 4xx/5xx and a closed connection, never a hang), and the
end-to-end ``HTTPStore`` surface checked for exact parity — payload bytes and
error messages both — against the socket client talking to the same daemon.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.gateway import GatewayDaemon, HTTPStore, open_http
from repro.gateway.http import (
    MAX_HEADER_BYTES,
    MAX_REQUEST_LINE_BYTES,
    HttpError,
    Request,
    read_request,
    render_response,
)
from repro.serve import ReadDaemon, RemoteStore
from repro.serve.protocol import ProtocolError, RemoteError


@pytest.fixture(scope="module")
def gateway(serve_daemon):
    """One gateway over the shared session daemon, stopped at module end."""
    daemon = GatewayDaemon(serve_daemon.address, pool_size=2)
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture()
def http_store(gateway):
    with HTTPStore(gateway.address) as store:
        yield store


def raw_exchange(address, blob, read_all=True, timeout=5.0):
    """Send raw bytes, return whatever comes back until the server closes."""
    host, port = address.split(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        sock.sendall(blob)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if not read_all and chunks:
                    break
        except socket.timeout:
            pytest.fail("gateway hung instead of answering/closing")
        return b"".join(chunks)


def get(address, target, headers=()):
    lines = [f"GET {target} HTTP/1.1", "Host: x"]
    lines += [f"{k}: {v}" for k, v in headers]
    lines += ["Connection: close", "", ""]
    return raw_exchange(address, "\r\n".join(lines).encode())


def parse_response(blob):
    head, _, body = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def _parse(blob: bytes):
    """Run the asyncio request parser over literal bytes."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestRequestParsing:
    def test_minimal_get(self):
        req = _parse(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert (req.method, req.path, req.version) == ("GET", "/health", "HTTP/1.1")
        assert req.keep_alive

    def test_query_and_percent_decoding(self):
        req = _parse(b"GET /read/a%20b/3?bbox=0:4,0:8&level=1 HTTP/1.1\r\n\r\n")
        assert req.path == "/read/a b/3"
        assert req.query == {"bbox": "0:4,0:8", "level": "1"}

    def test_duplicate_query_keys_last_wins(self):
        req = _parse(b"GET /x?level=1&level=2 HTTP/1.1\r\n\r\n")
        assert req.query["level"] == "2"

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_http10_defaults_to_close(self):
        req = _parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not req.keep_alive
        req = _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert req.keep_alive

    def test_connection_close_honoured(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    @pytest.mark.parametrize(
        "blob, status",
        [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", 413),
            (b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nHost: x\r\n", 400),  # EOF inside headers
        ],
    )
    def test_refusals_carry_their_status(self, blob, status):
        with pytest.raises(HttpError) as excinfo:
            _parse(blob)
        assert excinfo.value.status == status
        assert excinfo.value.close

    def test_oversized_request_line_is_414(self):
        blob = b"GET /" + b"a" * MAX_REQUEST_LINE_BYTES + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            _parse(blob)
        assert excinfo.value.status == 414

    def test_oversized_header_block_is_431(self):
        filler = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"v" * 1000) for i in range(40)
        )
        assert len(filler) > MAX_HEADER_BYTES
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET /x HTTP/1.1\r\n" + filler + b"\r\n")
        assert excinfo.value.status == 431

    def test_too_many_headers_is_431(self):
        filler = b"".join(b"X-%d: 1\r\n" % i for i in range(200))
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET /x HTTP/1.1\r\n" + filler + b"\r\n")
        assert excinfo.value.status == 431

    def test_render_response_golden_bytes(self):
        blob = render_response(200, b'{"a": 1}\n', keep_alive=False)
        assert blob == (
            b"HTTP/1.1 200 OK\r\n"
            b"Server: repro-gateway\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 9\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b'{"a": 1}\n'
        )


class TestRoutes:
    def test_health(self, gateway):
        status, headers, body = parse_response(get(gateway.address, "/health"))
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["backend"] == gateway.spec.address
        assert payload["ok"] is True

    def test_content_length_is_exact(self, gateway):
        status, headers, body = parse_response(get(gateway.address, "/catalog"))
        assert status == 200
        assert int(headers["content-length"]) == len(body)

    def test_catalog_matches_socket_client(self, gateway, remote_store):
        _, _, body = parse_response(get(gateway.address, "/catalog"))
        assert json.loads(body)["entries"] == remote_store.entries()

    def test_fields_route(self, gateway, remote_store):
        status, _, body = parse_response(get(gateway.address, "/fields/density"))
        payload = json.loads(body)
        assert status == 200
        assert payload["steps"] == remote_store.steps("density")

    def test_read_octet_golden_framing(self, gateway, serve_store):
        """The octet body is exactly ``tobytes()`` of the reference block."""
        reference = np.asarray(serve_store["density", 0])[0:4, 0:5, 0:6]
        status, headers, body = parse_response(
            get(gateway.address, "/read/density/0?bbox=0:4,0:5,0:6")
        )
        assert status == 200
        assert headers["content-type"] == "application/octet-stream"
        assert headers["x-repro-dtype"] == "<f8"
        assert headers["x-repro-shape"] == "4,5,6"
        assert int(headers["content-length"]) == reference.nbytes
        assert body == reference.tobytes()
        assert int(headers["x-repro-blocks-touched"]) >= 1

    def test_read_json_body(self, gateway, serve_store):
        reference = np.asarray(serve_store["density", 0])[0:2, 0:2, 0:2]
        status, headers, body = parse_response(
            get(
                gateway.address,
                "/read/density/0?bbox=0:2,0:2,0:2",
                headers=[("Accept", "application/json")],
            )
        )
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        assert payload["shape"] == [2, 2, 2]
        assert np.array_equal(np.asarray(payload["data"]), reference)

    def test_stats_has_gateway_section(self, gateway):
        _, _, body = parse_response(get(gateway.address, "/stats"))
        payload = json.loads(body)
        gw = payload["gateway"]
        assert gw["backend"] == gateway.spec.address
        assert gw["requests"] >= 1
        assert "pool" in gw and "clients" in gw

    def test_stats_prom_parses(self, gateway):
        status, headers, body = parse_response(
            get(gateway.address, "/stats?format=prom")
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        families = set()
        for line in text.splitlines():
            assert line == "" or line.startswith("#") or " " in line
            if line.startswith("# TYPE "):
                families.add(line.split()[2])
        assert "repro_gateway_requests_total" in families
        assert "repro_gateway_active_connections" in families
        # Backend families relay through the same scrape, unprefixed ones too.
        assert any(not f.startswith("repro_gateway_") for f in families)


class TestStatusMapping:
    """The typed-error table: each failure class keeps its wire identity."""

    @pytest.mark.parametrize(
        "target, status, error_type",
        [
            ("/read/density/0?bbox=0:4", 400, "ValueError"),  # ndim mismatch
            ("/read/density/0?bbox=0:4,0:4,0:4&index=[1]", 400, "ValueError"),
            ("/read/density/0?bbox=zero:4", 400, "ValueError"),
            ("/read/density/0?index=[1.5]", 400, "ValueError"),
            ("/read/density/0?level=99&bbox=0:4,0:4,0:4", 404, "KeyError"),
            ("/read/density/nope", 400, "ValueError"),
            ("/read/ghost/0?bbox=0:4,0:4,0:4", 404, "KeyError"),
            ("/fields/ghost", 404, "KeyError"),
            ("/no/such/route", 404, "KeyError"),
        ],
    )
    def test_error_envelope(self, gateway, target, status, error_type):
        got_status, _, body = parse_response(get(gateway.address, target))
        payload = json.loads(body)
        assert got_status == status
        assert payload["status"] == "error"
        assert payload["error_type"] == error_type
        assert payload["http_status"] == status
        assert payload["message"]

    def test_error_message_parity_with_socket_client(self, gateway, remote_store):
        """The HTTP envelope carries the daemon's message byte-for-byte."""
        with pytest.raises(ValueError) as socket_err:
            remote_store["density", 0].read_roi([(0, 4)])
        _, _, body = parse_response(
            get(gateway.address, "/read/density/0?bbox=0:4")
        )
        assert json.loads(body)["message"] == str(socket_err.value)

    def test_post_is_405_with_allow(self, gateway):
        blob = raw_exchange(
            gateway.address, b"POST /health HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        status, headers, body = parse_response(blob)
        assert status == 405
        assert headers["allow"] == "GET"
        assert json.loads(body)["error_type"] == "ProtocolError"


class TestHostileInput:
    """Broken clients get a clean answer and a closed connection — never a hang."""

    @pytest.mark.parametrize(
        "blob, status",
        [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /health HTTP/9.9\r\n\r\n", 505),
            (b"GET /health HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 501),
            (b"GET /health HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody", 413),
            (b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n", 414),
        ],
    )
    def test_clean_refusal_then_close(self, gateway, blob, status):
        got_status, headers, body = parse_response(raw_exchange(gateway.address, blob))
        assert got_status == status
        assert headers["connection"] == "close"
        assert json.loads(body)["http_status"] == status

    def test_oversized_header_block_431(self, gateway):
        filler = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"v" * 1000) for i in range(40)
        )
        blob = b"GET /health HTTP/1.1\r\n" + filler + b"\r\n"
        status, headers, _ = parse_response(raw_exchange(gateway.address, blob))
        assert status == 431
        assert headers["connection"] == "close"

    def test_early_disconnect_leaves_gateway_healthy(self, gateway):
        """Hanging up mid-request must not wedge the accept loop."""
        host, port = gateway.address.split(":")
        for _ in range(3):
            sock = socket.create_connection((host, int(port)), timeout=5)
            sock.sendall(b"GET /catalog HTTP/1.1\r\nHos")  # cut mid-header
            sock.close()
        # And a disconnect right after the head, before reading the response.
        sock = socket.create_connection((host, int(port)), timeout=5)
        sock.sendall(b"GET /read/density/0?bbox=0:8,0:8,0:8 HTTP/1.1\r\n\r\n")
        sock.close()
        time.sleep(0.05)
        status, _, _ = parse_response(get(gateway.address, "/health"))
        assert status == 200

    def test_keep_alive_serves_many_requests_on_one_socket(self, gateway):
        host, port = gateway.address.split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            fh = sock.makefile("rb")
            for _ in range(3):
                sock.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
                line = fh.readline()
                assert line == b"HTTP/1.1 200 OK\r\n"
                length = None
                while True:
                    header = fh.readline()
                    if header in (b"\r\n", b""):
                        break
                    if header.lower().startswith(b"content-length:"):
                        length = int(header.split(b":")[1])
                assert length is not None
                body = fh.read(length)
                assert json.loads(body)["status"] == "ok"

    def test_http10_connection_closes_after_response(self, gateway):
        blob = raw_exchange(gateway.address, b"GET /health HTTP/1.0\r\n\r\n")
        status, headers, _ = parse_response(blob)
        assert status == 200
        assert headers["connection"] == "close"
        # raw_exchange read to EOF: the server really did close.


class TestGates:
    def test_max_connections_503(self, serve_daemon):
        daemon = GatewayDaemon(serve_daemon.address, max_connections=1, pool_size=1)
        daemon.start()
        try:
            host, port = daemon.address.split(":")
            with socket.create_connection((host, int(port)), timeout=5):
                # The first connection holds its slot (no request yet);
                # the second must be turned away immediately.
                time.sleep(0.05)
                blob = raw_exchange(
                    daemon.address, b"GET /health HTTP/1.1\r\n\r\n"
                )
                status, headers, body = parse_response(blob)
                assert status == 503
                assert headers["retry-after"] == "1"
                assert json.loads(body)["error_type"] == "ProtocolError"
            assert daemon.stats()["rejected_connections"] == 1
        finally:
            daemon.stop()

    def test_request_timeout_504(self, serve_store):
        class Molasses(ReadDaemon):
            def _dispatch(self, header):
                if header.get("op") == "catalog":
                    time.sleep(1.0)
                return super()._dispatch(header)

        backend = Molasses(serve_store)
        backend.start()
        daemon = GatewayDaemon(backend.address, request_timeout=0.1)
        daemon.start()
        try:
            status, headers, body = parse_response(get(daemon.address, "/catalog"))
            assert status == 504
            payload = json.loads(body)
            assert payload["error_type"] == "TimeoutError"
            assert headers["connection"] == "close"
        finally:
            daemon.stop()
            backend.stop()

    def test_backend_gone_maps_to_502(self, serve_store):
        backend = ReadDaemon(serve_store)
        backend.start()
        daemon = GatewayDaemon(backend.address)
        daemon.start()
        backend.stop()
        try:
            status, _, body = parse_response(get(daemon.address, "/catalog"))
            payload = json.loads(body)
            assert status in (502, 503)
            assert payload["status"] == "error"
        finally:
            daemon.stop()

    def test_start_fails_loudly_when_backend_absent(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        daemon = GatewayDaemon(f"127.0.0.1:{port}")
        with pytest.raises(ConnectionRefusedError):
            daemon.start()


class TestHTTPStoreSurface:
    def test_store_catalog_surface(self, http_store, remote_store):
        assert http_store.fields() == remote_store.fields()
        assert http_store.steps("density") == remote_store.steps("density")
        assert len(http_store) == len(remote_store)
        assert http_store.entries() == remote_store.entries()

    def test_array_parity_bitwise(self, http_store, remote_store):
        via_http = http_store["density", 0]
        via_socket = remote_store["density", 0]
        assert via_http.shape == via_socket.shape
        assert via_http.dtype == via_socket.dtype
        assert via_http.levels == via_socket.levels
        for index in [np.s_[...], np.s_[0:4, 1:7, ::2], np.s_[3, :, 5]]:
            a = np.asarray(via_http[index])
            b = np.asarray(via_socket[index])
            assert a.tobytes() == b.tobytes()

    def test_scalar_selection_unwraps(self, http_store, remote_store):
        got = http_store["density", 0][1, 2, 3]
        want = remote_store["density", 0][1, 2, 3]
        assert np.isscalar(got) or got.shape == ()
        assert got == want

    def test_read_roi_parity(self, http_store, remote_store):
        bbox = [(0, 5), (2, 8), (1, 4)]
        a = http_store["density", 0].read_roi(bbox)
        b = remote_store["density", 0].read_roi(bbox)
        assert np.array_equal(a, b)

    def test_level_views(self, http_store, remote_store):
        http_arr = http_store["amr", 0]
        sock_arr = remote_store["amr", 0]
        for level in http_arr.levels:
            assert np.array_equal(
                np.asarray(http_arr.level(level)), np.asarray(sock_arr.level(level))
            )

    def test_error_type_and_message_parity(self, http_store, remote_store):
        with pytest.raises(KeyError) as via_socket:
            remote_store.array("ghost", 0)
        with pytest.raises(KeyError) as via_http:
            http_store.array("ghost", 0)
        assert str(via_http.value) == str(via_socket.value)

        with pytest.raises(TypeError) as type_err:
            http_store["density", 0][1.5]
        with pytest.raises(TypeError) as socket_type_err:
            remote_store["density", 0][1.5]
        assert str(type_err.value) == str(socket_type_err.value)

    def test_accounting_accumulates(self, http_store):
        arr = http_store["density", 0]
        arr[0:4, 0:4, 0:4]
        assert arr.stats["requests"] == 1
        assert arr.stats["blocks_touched"] >= 1

    def test_reconnects_after_idle_close(self, serve_daemon):
        daemon = GatewayDaemon(serve_daemon.address, idle_timeout=0.1)
        daemon.start()
        try:
            with HTTPStore(daemon.address) as store:
                assert store.fields()
                time.sleep(0.3)  # gateway reaps the idle keep-alive socket
                assert store.fields()  # transparent reconnect
        finally:
            daemon.stop()

    def test_closed_store_refuses(self, gateway):
        store = open_http(gateway.address)
        store.close()
        with pytest.raises(ProtocolError, match="closed"):
            store.fields()

    def test_prometheus_text(self, http_store):
        text = http_store.prometheus()
        assert "repro_gateway_requests_total" in text
