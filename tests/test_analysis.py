"""Unit tests for metrics, SSIM, power spectrum and the halo finder."""

import numpy as np
import pytest

from repro.analysis import (
    compression_ratio,
    find_halos,
    halo_mass_function,
    match_halos,
    max_abs_error,
    mse,
    nrmse,
    power_spectrum,
    power_spectrum_error,
    psnr,
    rate_distortion_curve,
    ssim,
)
from repro.analysis.ssim import ssim_map
from repro.compressors import SZ3Compressor
from repro.datasets import nyx_density_field


class TestPointwiseMetrics:
    def test_identical_arrays(self):
        a = np.random.default_rng(0).random((8, 8))
        assert mse(a, a) == 0.0
        assert max_abs_error(a, a) == 0.0
        assert psnr(a, a) == np.inf
        assert nrmse(a, a) == 0.0

    def test_known_mse(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(a, b) == 1.0
        assert max_abs_error(a, b) == 1.0

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        a = rng.random((16, 16, 16))
        small = a + 1e-4 * rng.standard_normal(a.shape)
        large = a + 1e-2 * rng.standard_normal(a.shape)
        assert psnr(a, small) > psnr(a, large)

    def test_psnr_value_range_convention(self):
        """PSNR = 20 log10(range) - 10 log10(mse)."""
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        expected = 20 * np.log10(10.0) - 10 * np.log10(0.5)
        assert psnr(a, b) == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_compression_ratio(self):
        assert compression_ratio(1000, 100) == 10.0
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_rate_distortion_curve_monotone_in_eb(self):
        data = nyx_density_field((16, 16, 16), seed=5)
        comp = SZ3Compressor()
        points = rate_distortion_curve(
            lambda d, eb: comp.roundtrip(d, eb), data, [1e-1, 1e-3]
        )
        assert len(points) == 2
        assert points[0].compression_ratio > points[1].compression_ratio
        assert points[0].psnr < points[1].psnr


class TestSSIM:
    def test_identical_is_one(self):
        a = np.random.default_rng(2).random((32, 32))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self):
        rng = np.random.default_rng(3)
        a = rng.random((32, 32, 32))
        b = a + 0.2 * rng.standard_normal(a.shape)
        assert ssim(a, b) < 0.95

    def test_more_noise_lower_ssim(self):
        rng = np.random.default_rng(4)
        a = np.cumsum(rng.random((32, 32)), axis=0)
        b1 = a + 0.05 * a.std() * rng.standard_normal(a.shape)
        b2 = a + 0.5 * a.std() * rng.standard_normal(a.shape)
        assert ssim(a, b1) > ssim(a, b2)

    def test_map_shape(self):
        a = np.random.default_rng(5).random((16, 16))
        assert ssim_map(a, a).shape == a.shape

    def test_constant_arrays(self):
        a = np.full((8, 8), 2.0)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_wrong_dims_raise(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(5), np.zeros(5))


class TestPowerSpectrum:
    def test_single_mode_peaks_at_right_k(self):
        n = 32
        x = np.arange(n)
        field = 1.0 + 0.5 * np.sin(2 * np.pi * 4 * x / n)[:, None, None] * np.ones((n, n, n))
        k, p = power_spectrum(field)
        assert k[np.argmax(p)] == pytest.approx(4.0)

    def test_identical_fields_zero_error(self):
        field = nyx_density_field((32, 32, 32), seed=6)
        err = power_spectrum_error(field, field)
        assert err.max_relative_error == pytest.approx(0.0, abs=1e-12)
        assert err.acceptable

    def test_perturbation_increases_error(self):
        field = nyx_density_field((32, 32, 32), seed=7)
        rng = np.random.default_rng(8)
        noisy = field + 0.5 * field.std() * rng.standard_normal(field.shape)
        err = power_spectrum_error(field, noisy)
        assert err.max_relative_error > 0.01

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            power_spectrum(np.zeros((8, 8)))


class TestHaloFinder:
    def _field_with_halos(self):
        field = np.ones((32, 32, 32))
        field[4:8, 4:8, 4:8] = 50.0
        field[20:23, 20:23, 20:23] = 80.0
        return field

    def test_finds_two_halos(self):
        halos = find_halos(self._field_with_halos(), overdensity=5.0, min_cells=4)
        assert len(halos) == 2
        assert halos[0].mass >= halos[1].mass

    def test_min_cells_filters_noise(self):
        field = np.ones((16, 16, 16))
        field[0, 0, 0] = 100.0
        assert find_halos(field, overdensity=5.0, min_cells=4) == []

    def test_centres_are_inside_halos(self):
        halos = find_halos(self._field_with_halos(), overdensity=5.0)
        densest = max(halos, key=lambda h: h.peak_density)
        assert densest.peak_density == pytest.approx(80.0)
        assert all(19 <= c <= 23 for c in densest.centre)

    def test_match_halos_full_recovery(self):
        halos = find_halos(self._field_with_halos(), overdensity=5.0)
        assert match_halos(halos, halos) == 1.0

    def test_match_halos_empty_candidate(self):
        halos = find_halos(self._field_with_halos(), overdensity=5.0)
        assert match_halos(halos, []) == 0.0
        assert match_halos([], halos) == 1.0

    def test_mass_function_counts_all(self):
        halos = find_halos(self._field_with_halos(), overdensity=5.0)
        _, counts = halo_mass_function(halos, n_bins=4)
        assert counts.sum() == len(halos)
