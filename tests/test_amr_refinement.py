"""Unit tests for refinement criteria and uniform -> hierarchy construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.refinement import (
    GradientCriterion,
    MeanValueCriterion,
    ValueRangeCriterion,
    assign_block_levels,
    build_hierarchy_from_uniform,
)


class TestCriteria:
    def test_value_range_prefers_varying_blocks(self):
        data = np.zeros((16, 16))
        data[:8, :8] = np.random.default_rng(0).random((8, 8))
        scores = ValueRangeCriterion().block_scores(data, 8)
        assert scores[0, 0] > scores[1, 1]

    def test_mean_value_prefers_dense_blocks(self):
        data = np.zeros((16, 16))
        data[8:, 8:] = 10.0
        scores = MeanValueCriterion().block_scores(data, 8)
        assert np.argmax(scores) == 3

    def test_gradient_prefers_steep_blocks(self):
        data = np.zeros((16, 16))
        data[:8, :8] = np.arange(64).reshape(8, 8)
        scores = GradientCriterion().block_scores(data, 8)
        assert scores[0, 0] > scores[1, 1]


class TestAssignBlockLevels:
    def test_fractions_respected(self):
        scores = np.arange(100, dtype=float)
        levels = assign_block_levels(scores, [0.2, 0.8])
        assert (levels == 0).sum() == 20
        assert (levels == 1).sum() == 80

    def test_top_scores_get_finest_level(self):
        scores = np.array([1.0, 5.0, 3.0, 2.0])
        levels = assign_block_levels(scores, [0.25, 0.75])
        assert levels[1] == 0  # the highest score
        assert levels[0] == 1

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            assign_block_levels(np.arange(10.0), [0.3, 0.3])

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            assign_block_levels(np.arange(10.0), [-0.1, 1.1])

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=200),
        f=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_property_every_block_gets_exactly_one_level(self, n, f):
        scores = np.random.default_rng(n).random(n)
        levels = assign_block_levels(scores, [f, 1.0 - f])
        assert levels.size == n
        assert set(np.unique(levels)) <= {0, 1}


class TestBuildHierarchy:
    def test_two_level_partition_valid(self, noisy_field_3d):
        h = build_hierarchy_from_uniform(noisy_field_3d, n_levels=2, block_size=8)
        assert h.n_levels == 2
        assert h.is_valid_partition()

    def test_three_level_partition_valid(self, noisy_field_3d):
        h = build_hierarchy_from_uniform(
            noisy_field_3d, n_levels=3, block_size=8, fractions=[0.2, 0.3, 0.5]
        )
        assert h.n_levels == 3
        assert h.is_valid_partition()

    def test_densities_close_to_fractions(self, noisy_field_3d):
        h = build_hierarchy_from_uniform(
            noisy_field_3d, n_levels=2, block_size=8, fractions=[0.25, 0.75]
        )
        densities = h.level_densities()
        assert densities[0] == pytest.approx(0.25, abs=0.05)
        assert densities[1] == pytest.approx(0.75, abs=0.05)

    def test_fine_level_keeps_original_values(self, noisy_field_3d):
        h = build_hierarchy_from_uniform(noisy_field_3d, n_levels=2, block_size=8)
        fine = h.levels[0]
        np.testing.assert_array_equal(fine.data[fine.mask], noisy_field_3d[fine.mask])

    def test_single_level_is_whole_domain(self, noisy_field_3d):
        h = build_hierarchy_from_uniform(noisy_field_3d, n_levels=1, block_size=8)
        assert h.levels[0].density == 1.0

    def test_block_size_not_power_of_two_raises(self, noisy_field_3d):
        with pytest.raises(ValueError):
            build_hierarchy_from_uniform(noisy_field_3d, n_levels=2, block_size=6)

    def test_block_size_too_small_for_levels_raises(self, noisy_field_3d):
        with pytest.raises(ValueError):
            build_hierarchy_from_uniform(noisy_field_3d, n_levels=4, block_size=4)

    def test_shape_not_divisible_raises(self):
        with pytest.raises(ValueError):
            build_hierarchy_from_uniform(np.zeros((30, 30, 30)), n_levels=2, block_size=8)

    def test_refinement_concentrates_on_interesting_region(self):
        """Blocks containing the sharp feature must end up on the fine level."""
        data = np.zeros((32, 32, 32))
        data[8:16, 8:16, 8:16] = np.random.default_rng(1).random((8, 8, 8)) * 10
        h = build_hierarchy_from_uniform(data, n_levels=2, block_size=8, fractions=[0.1, 0.9])
        fine_mask = h.levels[0].mask
        assert fine_mask[8:16, 8:16, 8:16].all()
