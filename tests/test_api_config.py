"""Config round-trip and build tests for the repro.api config types."""

import json

import numpy as np
import pytest

from repro.api import (
    CodecSpec,
    ErrorBound,
    PipelineConfig,
    WorkflowConfig,
    config_from_dict,
    load_config,
)
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor


def _codec_specs():
    return [
        CodecSpec(),
        CodecSpec.sz3mr(unit_size=8),
        CodecSpec(kind="sz2", arrangement="stack", options={"block_size": 4}),
        CodecSpec(kind="zfp", padding=False),
        CodecSpec(kind="sz3", adaptive_eb=True, alpha=2.0, beta=6.0, padding=True),
        CodecSpec(kind="sz3", padding="auto", pad_threshold=8),
    ]


def _workflow_configs():
    return [
        WorkflowConfig(),
        WorkflowConfig(
            codec=CodecSpec.sz3mr(),
            error_bound=ErrorBound.psnr(60),
            roi_fraction=0.25,
            postprocess=False,
            uncertainty=True,
        ),
        WorkflowConfig(input={"kind": "npy", "path": "field.npy"}),
        WorkflowConfig(input={"kind": "dataset", "name": "nyx", "shape": [32, 32, 32]}),
    ]


def _pipeline_configs():
    return [
        PipelineConfig(),
        PipelineConfig(
            codec=CodecSpec.sz3mr(unit_size=8),
            error_bound=ErrorBound.rel(0.02),
            n_steps=3,
            max_workers=2,
            compute_quality=False,
            source={"kind": "simulation", "name": "collapse", "shape": [16, 16, 16]},
            sink={"kind": "store", "path": "run_dir"},
        ),
        PipelineConfig(sink={"kind": "dir", "path": "out"}),
    ]


class TestRoundTrip:
    """``from_dict(to_dict(c)) == c`` through real JSON for all three types."""

    @pytest.mark.parametrize("spec", _codec_specs())
    def test_codec_spec(self, spec):
        assert CodecSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @pytest.mark.parametrize("config", _workflow_configs())
    def test_workflow_config(self, config):
        assert WorkflowConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    @pytest.mark.parametrize("config", _pipeline_configs())
    def test_pipeline_config(self, config):
        assert PipelineConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_config_from_dict_dispatches_on_type(self):
        assert isinstance(config_from_dict(WorkflowConfig().to_dict()), WorkflowConfig)
        assert isinstance(config_from_dict(PipelineConfig().to_dict()), PipelineConfig)
        with pytest.raises(ValueError, match="unknown config type"):
            config_from_dict({"type": "daemon"})

    def test_load_config_reads_json_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        config = WorkflowConfig(error_bound=ErrorBound.rel(0.05))
        path.write_text(json.dumps(config.to_dict()))
        assert load_config(path) == config

    def test_load_config_rejects_bad_json(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_config(path)


class TestValidation:
    def test_codec_kind_checked(self):
        with pytest.raises(ValueError, match="codec kind"):
            CodecSpec(kind="lz4")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown CodecSpec keys"):
            CodecSpec.from_dict({"kind": "sz3", "compressor": "sz3"})
        with pytest.raises(ValueError, match="unknown WorkflowConfig keys"):
            WorkflowConfig.from_dict({"type": "workflow", "bound": 1.0})

    def test_wrong_type_key_rejected(self):
        with pytest.raises(ValueError, match="not a workflow config"):
            WorkflowConfig.from_dict({"type": "pipeline"})
        with pytest.raises(ValueError, match="not a pipeline config"):
            PipelineConfig.from_dict({"type": "workflow"})

    def test_sink_kind_checked(self):
        with pytest.raises(ValueError, match="sink kind"):
            PipelineConfig(sink={"kind": "s3", "path": "bucket"})

    def test_sink_path_required(self):
        with pytest.raises(ValueError, match="sink needs a 'path'"):
            PipelineConfig(sink={"kind": "dir"})


class TestBuild:
    def test_codec_spec_builds_configured_compressor(self):
        spec = CodecSpec(
            kind="sz3", arrangement="linear", padding=True, adaptive_eb=True,
            alpha=2.0, beta=6.0, unit_size=8,
        )
        mr = spec.build()
        assert isinstance(mr, MultiResolutionCompressor)
        assert (mr.compressor_kind, mr.arrangement, mr.unit_size) == ("sz3", "linear", 8)
        assert mr.adaptive_eb and mr.alpha == 2.0 and mr.beta == 6.0

    def test_from_compressor_inverts_build(self):
        spec = CodecSpec(kind="sz2", arrangement="stack", unit_size=8)
        captured = CodecSpec.from_compressor(spec.build())
        # alpha/beta are resolved to their defaults by the compressor.
        assert captured.kind == spec.kind
        assert captured.arrangement == spec.arrangement
        assert captured.unit_size == spec.unit_size
        # A captured spec must rebuild an identical engine.
        assert captured.build().codec_spec() == spec.build().codec_spec()

    def test_from_compressor_captures_pad_threshold(self):
        mr = MultiResolutionCompressor(
            compressor="sz3", padding="auto", pad_threshold=16, unit_size=16
        )
        captured = CodecSpec.from_compressor(mr)
        rebuilt = captured.build()
        # should_pad(16, 16) is False: the replayed engine must not pad either.
        assert rebuilt.pad_threshold == 16
        assert rebuilt.describe() == mr.describe()

    def test_from_compressor_captures_sz3mr(self):
        captured = CodecSpec.from_compressor(SZ3MRCompressor(unit_size=8))
        assert captured.adaptive_eb is True
        assert captured.build().describe() == SZ3MRCompressor(unit_size=8).describe()

    def test_workflow_config_builds_workflow(self, smooth_field_3d):
        config = WorkflowConfig(
            codec=CodecSpec.sz3mr(unit_size=8),
            error_bound=ErrorBound.rel(0.02),
            roi_fraction=0.4,
            postprocess=False,
        )
        workflow = config.build()
        assert workflow.mr.adaptive_eb is True
        assert workflow.unit_size == 8
        result = workflow.compress_uniform(smooth_field_3d, config.error_bound)
        value_range = float(smooth_field_3d.max() - smooth_field_3d.min())
        assert result.error_bound == pytest.approx(0.02 * value_range)
        err = np.abs(result.decompressed_field - smooth_field_3d).max()
        # Bezier smoothing is off, so the raw bound must hold everywhere the
        # hierarchy owns data; coarse-level cells may exceed it slightly.
        assert np.isfinite(err)
