"""Unit tests for ROI extraction, unit-block partitioning and merge arrangements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ssim
from repro.core.partition import (
    adjacency_merge,
    extract_unit_blocks,
    linear_merge,
    scatter_unit_blocks,
    split_merged,
    stack_merge,
)
from repro.core.roi import extract_roi, roi_preview_field
from repro.datasets import nyx_density_field


class TestROIExtraction:
    def test_two_levels_and_valid_partition(self, noisy_field_3d):
        result = extract_roi(noisy_field_3d, roi_fraction=0.3, block_size=8)
        assert result.hierarchy.n_levels == 2
        assert result.hierarchy.is_valid_partition()

    def test_roi_fraction_controls_fine_density(self, noisy_field_3d):
        result = extract_roi(noisy_field_3d, roi_fraction=0.25, block_size=8)
        assert result.hierarchy.levels[0].density == pytest.approx(0.25, abs=0.05)

    def test_storage_reduction_increases_with_smaller_roi(self, noisy_field_3d):
        small = extract_roi(noisy_field_3d, roi_fraction=0.15, block_size=8)
        large = extract_roi(noisy_field_3d, roi_fraction=0.75, block_size=8)
        assert small.storage_reduction > large.storage_reduction

    def test_roi_preserves_original_values_inside_roi(self, noisy_field_3d):
        result = extract_roi(noisy_field_3d, roi_fraction=0.3, block_size=8)
        preview = roi_preview_field(result)
        np.testing.assert_array_equal(preview[result.roi_mask], noisy_field_3d[result.roi_mask])

    def test_fig4_quality_small_roi_high_ssim(self):
        """Fig. 4: a small range-based ROI keeps visual fidelity very high on Nyx."""
        field = nyx_density_field((64, 64, 64), seed="fig4-test")
        result = extract_roi(field, roi_fraction=0.15, block_size=8)
        preview = roi_preview_field(result, order="linear")
        assert ssim(field, preview) > 0.95

    def test_block_size_must_be_power_of_two_ge_8(self, noisy_field_3d):
        with pytest.raises(ValueError):
            extract_roi(noisy_field_3d, block_size=6)
        with pytest.raises(ValueError):
            extract_roi(noisy_field_3d, block_size=4)

    def test_roi_fraction_out_of_range(self, noisy_field_3d):
        with pytest.raises(ValueError):
            extract_roi(noisy_field_3d, roi_fraction=1.5)


class TestUnitBlocks:
    def _level(self):
        rng = np.random.default_rng(0)
        data = rng.random((32, 32, 32))
        mask = np.zeros_like(data, dtype=bool)
        mask[:16, :, :] = True  # half the domain occupied
        return data, mask

    def test_extract_occupied_only(self):
        data, mask = self._level()
        blocks = extract_unit_blocks(data, mask, unit_size=16)
        # the occupied region is 16 x 32 x 32 = 4 unit blocks of 16^3
        assert blocks.n_blocks == (16 // 16) * (32 // 16) * (32 // 16)

    def test_extract_all_blocks_without_mask(self):
        data, _ = self._level()
        blocks = extract_unit_blocks(data, None, unit_size=16)
        assert blocks.n_blocks == 8

    def test_block_values_match_source(self):
        data, mask = self._level()
        blocks = extract_unit_blocks(data, mask, unit_size=8)
        for block, coord in zip(blocks.blocks, blocks.coords):
            sl = tuple(slice(int(c) * 8, (int(c) + 1) * 8) for c in coord)
            np.testing.assert_array_equal(block, data[sl])

    def test_scatter_inverts_extract(self):
        data, mask = self._level()
        blocks = extract_unit_blocks(data, mask, unit_size=8)
        restored = scatter_unit_blocks(blocks)
        np.testing.assert_array_equal(restored[mask], data[mask])
        # unoccupied region is filled with the fill value
        assert (restored[~mask] == 0).all()

    def test_non_divisible_unit_raises(self):
        with pytest.raises(ValueError):
            extract_unit_blocks(np.zeros((10, 10, 10)), None, unit_size=8)

    def test_requested_unit_capped_to_smallest_axis(self):
        blocks = extract_unit_blocks(np.zeros((8, 8, 8)), None, unit_size=16)
        assert blocks.unit_size == 8
        assert blocks.n_blocks == 1

    def test_empty_mask_raises(self):
        data, _ = self._level()
        with pytest.raises(ValueError):
            extract_unit_blocks(data, np.zeros_like(data, dtype=bool), unit_size=8)


class TestArrangements:
    def _blocks(self, n_occupied_rows=16, unit=8):
        rng = np.random.default_rng(1)
        data = rng.random((32, 32, 32))
        mask = np.zeros_like(data, dtype=bool)
        mask[:n_occupied_rows] = True
        return extract_unit_blocks(data, mask, unit_size=unit)

    def test_linear_merge_shape_and_roundtrip(self):
        bs = self._blocks()
        merged, arrangement = linear_merge(bs)
        assert merged.shape == (8, 8, 8 * bs.n_blocks)
        restored = split_merged(merged, arrangement)
        np.testing.assert_array_equal(restored, bs.blocks)

    def test_stack_merge_near_cubic_and_roundtrip(self):
        bs = self._blocks()
        merged, arrangement = stack_merge(bs)
        # aspect ratio of the stacked array should be far more balanced than linear
        assert max(merged.shape) / min(merged.shape) <= 4
        restored = split_merged(merged, arrangement)
        np.testing.assert_array_equal(restored, bs.blocks)

    def test_adjacency_merge_roundtrip(self):
        bs = self._blocks()
        segments, arrangement = adjacency_merge(bs)
        assert sum(arrangement.segments) == bs.n_blocks
        restored = split_merged(segments, arrangement)
        np.testing.assert_array_equal(restored, bs.blocks)

    def test_adjacency_merge_splits_non_neighbouring_blocks(self):
        """Two occupied corners far apart must land in different segments."""
        data = np.random.default_rng(2).random((32, 32, 32))
        mask = np.zeros_like(data, dtype=bool)
        mask[:8, :8, :8] = True
        mask[24:, 24:, 24:] = True
        bs = extract_unit_blocks(data, mask, unit_size=8)
        _, arrangement = adjacency_merge(bs)
        assert len(arrangement.segments) >= 2

    def test_split_adjacency_requires_list(self):
        bs = self._blocks()
        _, arrangement = adjacency_merge(bs)
        with pytest.raises(TypeError):
            split_merged(np.zeros((8, 8, 8)), arrangement)

    @settings(max_examples=15, deadline=None)
    @given(rows=st.integers(min_value=8, max_value=32).filter(lambda r: r % 8 == 0))
    def test_property_all_arrangements_lossless(self, rows):
        rng = np.random.default_rng(rows)
        data = rng.random((32, 32, 32))
        mask = np.zeros_like(data, dtype=bool)
        mask[:rows] = True
        bs = extract_unit_blocks(data, mask, unit_size=8)
        for merge in (linear_merge, stack_merge, adjacency_merge):
            merged, arrangement = merge(bs)
            restored = split_merged(merged, arrangement)
            np.testing.assert_array_equal(restored, bs.blocks)
