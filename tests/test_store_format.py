"""Tests for the v2 block container format: round trips and random access."""

import struct

import numpy as np
import pytest

from repro.compressors.errors import DecompressionError
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.datasets.synthetic import smooth_wave_field
from repro.insitu.io import write_compressed_hierarchy
from repro.store import BlockLevel, ContainerReader, write_container
from repro.store.format import STORE_MAGIC
from repro.utils.morton import morton_encode3d

EB = 0.02


def _container_from_uniform(tmp_path, field, unit_size=8, name="field.rps2"):
    """Encode a uniform field into a single-level v2 container."""
    mrc = MultiResolutionCompressor(unit_size=unit_size)
    block_set = mrc.prepare_unit_blocks(field, mask=None)
    payloads = [p.to_bytes() for p in mrc.encode_unit_blocks(block_set, EB)]
    path = tmp_path / name
    write_container(
        path,
        [
            BlockLevel(
                level=0,
                level_shape=block_set.level_shape,
                unit_size=block_set.unit_size,
                coords=block_set.coords,
                payloads=payloads,
            )
        ],
        error_bound=EB,
        codec=mrc.describe(),
    )
    return path


@pytest.fixture(scope="module")
def uniform_field():
    return smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))


class TestRoundTrip:
    def test_full_level_roundtrip(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        reader = ContainerReader(path)
        recon = reader.as_array()[...]
        assert recon.shape == uniform_field.shape
        assert np.abs(recon - uniform_field).max() <= EB * (1 + 1e-9)

    def test_hierarchy_roundtrip_with_masks(self, tmp_path, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        levels = []
        for lvl in small_hierarchy.levels:
            block_set = mrc.prepare_unit_blocks(lvl.data, lvl.mask)
            payloads = [p.to_bytes() for p in mrc.encode_unit_blocks(block_set, EB)]
            levels.append(
                BlockLevel(
                    level=lvl.level,
                    level_shape=block_set.level_shape,
                    unit_size=block_set.unit_size,
                    coords=block_set.coords,
                    payloads=payloads,
                )
            )
        path = tmp_path / "hier.rps2"
        write_container(path, levels, error_bound=EB, codec=mrc.describe())
        reader = ContainerReader(path)
        assert [info.level for info in reader.levels] == [0, 1]
        for lvl in small_hierarchy.levels:
            recon = reader.as_array(lvl.level)[...]
            assert np.abs(recon - lvl.data)[lvl.mask].max() <= EB * (1 + 1e-9)

    def test_2d_roundtrip(self, tmp_path, smooth_field_2d):
        path = _container_from_uniform(tmp_path, smooth_field_2d, name="f2d.rps2")
        reader = ContainerReader(path)
        recon = reader.as_array()[...]
        assert np.abs(recon - smooth_field_2d).max() <= EB * (1 + 1e-9)

    def test_header_accounting(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        reader = ContainerReader(path)
        assert reader.error_bound == pytest.approx(EB)
        assert reader.n_blocks == 64  # 32^3 / 8^3
        assert reader.nbytes_original == uniform_field.nbytes
        assert reader.nbytes_compressed == path.stat().st_size
        assert reader.compression_ratio > 1.0

    def test_blocks_are_morton_ordered_on_disk(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        index = ContainerReader(path).index
        codes = morton_encode3d(index.coords[:, 0], index.coords[:, 1], index.coords[:, 2])
        assert (np.diff(codes.astype(np.int64)) > 0).all()


class TestRandomAccess:
    def test_roi_decodes_only_intersecting_blocks(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        reader = ContainerReader(path)
        # 32^3, unit 8: this bbox spans 1 x 1 x 2 unit blocks out of 64.
        roi = reader.read_roi(((0, 8), (0, 8), (0, 16)))
        assert roi.shape == (8, 8, 16)
        assert reader.stats["blocks_decoded"] == 2
        assert np.abs(roi - uniform_field[:8, :8, :16]).max() <= EB * (1 + 1e-9)

    def test_unaligned_roi(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        reader = ContainerReader(path)
        # Straddles block boundaries on every axis: 2 x 2 x 2 blocks touched.
        roi = reader.read_roi(((4, 12), (6, 10), (7, 9)))
        assert roi.shape == (8, 4, 2)
        assert reader.stats["blocks_decoded"] == 8
        assert np.abs(roi - uniform_field[4:12, 6:10, 7:9]).max() <= EB * (1 + 1e-9)

    def test_roi_clamps_to_domain(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        roi = ContainerReader(path).read_roi(((-5, 8), (0, 8), (24, 99)))
        assert roi.shape == (8, 8, 8)

    def test_empty_roi_rejected(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        with pytest.raises(ValueError):
            ContainerReader(path).read_roi(((8, 8), (0, 8), (0, 8)))

    def test_read_blocks_region_query(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        reader = ContainerReader(path)
        block_set = reader.read_blocks(0, region=((0, 2), (0, 1), (0, 4)))
        assert block_set.n_blocks == 8
        assert (block_set.coords[:, 0] < 2).all()
        assert (block_set.coords[:, 1] == 0).all()

    def test_roi_outside_mask_is_fill_value(self, tmp_path, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        lvl = small_hierarchy.levels[0]
        block_set = mrc.prepare_unit_blocks(lvl.data, lvl.mask)
        payloads = [p.to_bytes() for p in mrc.encode_unit_blocks(block_set, EB)]
        path = tmp_path / "masked.rps2"
        write_container(
            path,
            [
                BlockLevel(
                    level=0,
                    level_shape=block_set.level_shape,
                    unit_size=block_set.unit_size,
                    coords=block_set.coords,
                    payloads=payloads,
                )
            ],
            error_bound=EB,
        )
        reader = ContainerReader(path)
        occupied = {tuple(c) for c in block_set.coords}
        # Find an unoccupied unit block and query exactly its extent.
        free = next(
            c
            for c in np.ndindex(4, 4, 4)
            if c not in occupied
        )
        bbox = tuple((ci * 8, (ci + 1) * 8) for ci in free)
        roi = reader.read_roi(bbox, fill_value=-1.0)
        assert reader.stats["blocks_decoded"] == 0
        assert (roi == -1.0).all()

    def test_missing_level_raises(self, tmp_path, uniform_field):
        path = _container_from_uniform(tmp_path, uniform_field)
        with pytest.raises(KeyError):
            ContainerReader(path).as_array(5)


class TestCorruption:
    def test_v1_container_rejected_with_clear_error(self, tmp_path, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        comp = mrc.compress_hierarchy(small_hierarchy, EB)
        path = tmp_path / "v1.rpmh"
        write_compressed_hierarchy(path, comp)
        with pytest.raises(DecompressionError, match="magic"):
            ContainerReader(path)

    def test_truncated_head(self, tmp_path):
        path = tmp_path / "tiny.rps2"
        path.write_bytes(STORE_MAGIC)
        with pytest.raises(DecompressionError, match=str(path)):
            ContainerReader(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "cut.rps2"
        path.write_bytes(STORE_MAGIC + struct.pack("<I", 4096) + b"{}")
        with pytest.raises(DecompressionError, match="truncated"):
            ContainerReader(path)

    def test_truncated_index(self, tmp_path, uniform_field):
        full = _container_from_uniform(tmp_path, uniform_field)
        blob = full.read_bytes()
        (header_len,) = struct.unpack_from("<I", blob, 4)
        cut = tmp_path / "cut_index.rps2"
        cut.write_bytes(blob[: 8 + header_len + 16])
        with pytest.raises(DecompressionError, match="index"):
            ContainerReader(cut)

    def test_truncated_payload(self, tmp_path, uniform_field):
        full = _container_from_uniform(tmp_path, uniform_field)
        blob = full.read_bytes()
        cut = tmp_path / "cut_payload.rps2"
        cut.write_bytes(blob[:-64])
        # Header and index still parse, but the reader notices the missing
        # payload bytes at open — torn files fail fast, not on first fetch.
        with pytest.raises(DecompressionError, match="payload"):
            ContainerReader(cut)

    def test_unsupported_version(self, tmp_path):
        import json

        header = json.dumps({"format_version": 99}).encode()
        path = tmp_path / "future.rps2"
        path.write_bytes(STORE_MAGIC + struct.pack("<I", len(header)) + header)
        with pytest.raises(DecompressionError, match="version 99"):
            ContainerReader(path)
