"""Unit tests for the synthetic dataset generators and the Table III registry."""

import numpy as np
import pytest

from repro.datasets import (
    available_datasets,
    gaussian_blobs,
    gaussian_random_field,
    get_dataset,
    hurricane_field,
    nyx_density_field,
    rayleigh_taylor_field,
    s3d_field,
    smooth_wave_field,
    warpx_ez_field,
)
from repro.datasets.registry import DATASET_TABLE


class TestSyntheticPrimitives:
    def test_grf_zero_mean_unit_variance(self):
        field = gaussian_random_field((32, 32, 32), seed=1)
        assert abs(field.mean()) < 1e-10
        assert field.std() == pytest.approx(1.0, rel=1e-6)

    def test_grf_spectral_index_controls_smoothness(self):
        smooth = gaussian_random_field((32, 32), spectral_index=-4.0, seed=2)
        rough = gaussian_random_field((32, 32), spectral_index=-1.0, seed=2)
        grad_smooth = np.abs(np.gradient(smooth)[0]).mean()
        grad_rough = np.abs(np.gradient(rough)[0]).mean()
        assert grad_rough > grad_smooth

    def test_grf_deterministic_per_seed(self):
        a = gaussian_random_field((16, 16), seed="x")
        b = gaussian_random_field((16, 16), seed="x")
        np.testing.assert_array_equal(a, b)

    def test_blobs_positive_and_localised(self):
        field = gaussian_blobs((32, 32, 32), n_blobs=3, seed=3)
        assert (field >= 0).all()
        assert field.max() > 10 * np.median(field)

    def test_wave_field_range(self):
        field = smooth_wave_field((16, 16, 16))
        assert field.max() <= 1.0 + 1e-9
        assert field.min() >= -1.0 - 1e-9


class TestApplicationGenerators:
    def test_nyx_positive_mean_one(self):
        rho = nyx_density_field((32, 32, 32), seed=1)
        assert (rho > 0).all()
        assert rho.mean() == pytest.approx(1.0, rel=1e-9)

    def test_nyx_heavy_tail(self):
        """Halos should push the maximum far above the mean (over-densities)."""
        rho = nyx_density_field((32, 32, 32), seed=2)
        assert rho.max() > 10.0

    def test_warpx_energy_concentrated_around_pulse(self):
        field = warpx_ez_field((16, 16, 128), pulse_position=0.5, noise_level=0.0)
        energy = (field**2).sum(axis=(0, 1))
        assert energy[40:90].sum() > 0.9 * energy.sum()

    def test_rt_density_bounds(self):
        rho = rayleigh_taylor_field((32, 32, 32), heavy_density=3.0, light_density=1.0)
        assert rho.min() >= 0.1
        assert rho.max() <= 3.0 * 1.6

    def test_rt_stratification(self):
        rho = rayleigh_taylor_field((32, 32, 32), mixing_strength=0.0)
        bottom = rho[:, :, :4].mean()
        top = rho[:, :, -4:].mean()
        assert top > bottom

    def test_hurricane_eye_is_calm(self):
        field = hurricane_field((64, 64, 8), eye_position=(0.5, 0.5), background_level=0.0)
        eye = field[31:33, 31:33, 0].mean()
        ring = field[31:33, 17:19, 0].mean()  # roughly at the vortex radius
        assert ring > eye

    def test_s3d_temperature_range(self):
        temp = s3d_field((32, 32, 32), unburnt_value=300.0, burnt_value=1800.0)
        assert temp.min() > 100.0
        assert temp.max() < 2100.0

    def test_s3d_front_separates_burnt_and_unburnt(self):
        temp = s3d_field((32, 32, 32), turbulence_level=0.0)
        assert temp[:, :, -2:].mean() > 1500.0
        assert temp[:, :, :2].mean() < 600.0


class TestRegistry:
    def test_table_iii_datasets_present(self):
        names = set(available_datasets())
        assert {"nyx-t1", "warpx", "rt", "nyx-t2", "hurricane", "nyx-t3", "s3d"} == names

    @pytest.mark.parametrize("name", sorted(DATASET_TABLE))
    def test_tiny_generation_and_structure(self, name):
        ds = get_dataset(name, size="tiny")
        spec = DATASET_TABLE[name]
        assert ds.field.shape == spec.shapes["tiny"]
        if spec.kind == "uniform":
            assert ds.hierarchy is None
        else:
            assert ds.hierarchy is not None
            assert ds.hierarchy.n_levels == spec.n_levels
            assert ds.hierarchy.is_valid_partition()

    def test_level_densities_match_table_iii(self):
        ds = get_dataset("rt", size="tiny")
        densities = ds.level_densities()
        for measured, expected in zip(densities, (0.15, 0.31, 0.54)):
            assert measured == pytest.approx(expected, abs=0.06)

    def test_custom_shape(self):
        ds = get_dataset("s3d", shape=(16, 16, 16))
        assert ds.field.shape == (16, 16, 16)
        assert ds.size == "custom"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("miranda")

    def test_unknown_size_raises(self):
        with pytest.raises(ValueError):
            get_dataset("s3d", size="huge")

    def test_seed_override_changes_field(self):
        a = get_dataset("s3d", size="tiny").field
        b = get_dataset("s3d", size="tiny", seed=123).field
        assert not np.allclose(a, b)
