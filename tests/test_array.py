"""Tests for the lazy read API (``repro.array``): views, indexing, caching.

The acceptance bar for the read redesign: for every registered dataset,
``CompressedArray.__getitem__`` matches the eager ``read_roi`` bit-for-bit
while the decode counters prove that only blocks intersecting the request
were inflated.
"""

import numpy as np
import pytest

import repro
from repro.array import BlockCache, CompressedArray, as_lazy_array, compile_index, open_array
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.partition import scatter_unit_blocks
from repro.datasets import available_datasets, get_dataset
from repro.datasets.synthetic import smooth_wave_field
from repro.store import ContainerReader, Store

EB = 0.02

#: Index expressions exercised against NumPy semantics (32^3 domain).
INDEXES = [
    (slice(None),),
    (slice(0, 8), slice(0, 8), slice(0, 16)),
    (slice(4, 12), slice(6, 10), slice(7, 9)),
    (slice(None), slice(None), 16),
    (slice(10, 20), slice(None), slice(None, None, 2)),
    (slice(None, None, 5), slice(3, 29, 7), slice(None)),
    (slice(None, None, -1),),
    (slice(30, 4, -3), slice(-8, None), slice(None, None, -4)),
    (-1, Ellipsis),
    (Ellipsis, 0),
    (5, slice(3, 9), 0),
    (3, 4, 5),
    (slice(-12, -2),),
    (slice(31, None), slice(None), slice(None)),
]


@pytest.fixture(scope="module")
def container(tmp_path_factory):
    field = smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))
    mrc = MultiResolutionCompressor(unit_size=8)
    root = tmp_path_factory.mktemp("arr")
    store = Store(root / "store", mrc)
    store.append("f", 0, field, EB)
    return store, field


class TestViewMetadata:
    def test_ndarray_like_surface(self, container):
        store, field = container
        arr = store["f", 0]
        assert isinstance(arr, CompressedArray)
        assert arr.shape == (32, 32, 32)
        assert arr.dtype == np.float64
        assert arr.ndim == 3 and arr.size == 32 ** 3 and len(arr) == 32
        assert arr.levels == (0,)
        assert arr.n_blocks == 64
        assert "CompressedArray" in repr(arr)

    def test_opening_is_lazy(self, container):
        store, _ = container
        arr = store.array("f", 0)
        assert arr.source.stats["blocks_decoded"] == 0

    def test_unknown_level_rejected(self, container):
        store, _ = container
        with pytest.raises(KeyError, match="no level 3"):
            store["f", 0].level(3)


class TestGetitem:
    @pytest.mark.parametrize("index", INDEXES, ids=[str(i) for i in INDEXES])
    def test_matches_numpy_semantics(self, container, index):
        store, _ = container
        arr = store["f", 0]
        full = np.asarray(arr)
        assert np.array_equal(np.asarray(arr[index]), full[index])

    def test_scalar_result(self, container):
        store, _ = container
        arr = store["f", 0]
        value = arr[3, 4, 5]
        assert np.ndim(value) == 0
        assert float(value) == np.asarray(arr)[3, 4, 5]

    def test_iteration_via_getitem(self, container):
        store, _ = container
        arr = store["f", 0]
        planes = [p for _, p in zip(range(2), iter(arr))]
        full = np.asarray(arr)
        assert np.array_equal(planes[0], full[0])
        assert np.array_equal(planes[1], full[1])

    def test_too_many_indices(self, container):
        store, _ = container
        with pytest.raises(IndexError, match="too many indices"):
            store["f", 0][1, 2, 3, 4]

    def test_double_ellipsis(self, container):
        store, _ = container
        with pytest.raises(IndexError, match="single ellipsis"):
            store["f", 0][..., ...]

    def test_out_of_bounds_int(self, container):
        store, _ = container
        with pytest.raises(IndexError, match="out of bounds for axis 0 with size 32"):
            store["f", 0][32]
        with pytest.raises(IndexError, match="out of bounds"):
            store["f", 0][0, -33]

    def test_unsupported_index_kind(self, container):
        store, _ = container
        with pytest.raises(TypeError, match="basic indexing"):
            store["f", 0][[1, 2, 3]]

    def test_empty_selection_matches_roi_error(self, container):
        store, _ = container
        reader = store.get("f", 0)
        with pytest.raises(ValueError) as via_index:
            store["f", 0][8:8]
        with pytest.raises(ValueError) as via_reader:
            reader.read_roi(((8, 8), (0, 32), (0, 32)))
        with pytest.raises(ValueError) as via_store:
            store.read_roi("f", 0, ((8, 8), (0, 32), (0, 32)))
        assert str(via_index.value) == str(via_reader.value) == str(via_store.value)

    def test_out_of_domain_selection_matches_roi_error(self, container):
        store, _ = container
        # An out-of-range *slice* compiles to an empty anchor (NumPy slice
        # semantics clamp it first), so indexing reports an empty selection...
        with pytest.raises(ValueError, match=r"empty after clamping to \[0, 32\)"):
            store["f", 0][40:50]
        # ...while an out-of-range *bbox* states the actual mistake, with the
        # same one-line diagnostic on every read_roi surface.
        outside = r"bbox axis 0 \(40, 50\) lies entirely outside the domain \[0, 32\)"
        with pytest.raises(ValueError) as via_store:
            store.read_roi("f", 0, ((40, 50), (0, 32), (0, 32)))
        with pytest.raises(ValueError) as via_reader:
            store.get("f", 0).read_roi(((40, 50), (0, 32), (0, 32)))
        with pytest.raises(ValueError) as via_view:
            store["f", 0].read_roi(((40, 50), (0, 32), (0, 32)))
        import re

        assert re.fullmatch(outside, str(via_store.value))
        assert str(via_store.value) == str(via_reader.value) == str(via_view.value)

    def test_single_block_array(self, tmp_path):
        field = smooth_wave_field((8, 8, 8), frequencies=(1.0, 2.0, 1.0))
        store = Store(tmp_path / "s", MultiResolutionCompressor(unit_size=8))
        store.append("f", 0, field, EB)
        arr = store["f", 0]
        assert arr.n_blocks == 1
        full = np.asarray(arr)
        assert np.abs(full - field).max() <= EB * (1 + 1e-9)
        assert np.array_equal(arr[2:5, ::2, -1], full[2:5, ::2, -1])

    def test_partial_decode_counter(self, container):
        store, _ = container
        view = store.get("f", 0).as_array()  # private reader: clean counters
        roi = view[0:8, 0:8, 0:16]
        assert roi.shape == (8, 8, 16)
        assert view.stats["blocks_decoded"] == 2
        assert view.stats["blocks_decoded"] < view.n_blocks

    def test_strided_selection_decodes_only_touched_blocks(self, container):
        store, _ = container
        view = store.get("f", 0).as_array()
        # Cells 0, 12, 24 on axis 0: blocks 0, 1 and 3 (unit 8) — block 2 is
        # inside [0, 25) but holds no selected cell's bbox rows... it does
        # (cells 16..23 are skipped but the bbox is dense), so the tight bbox
        # [0, 25) touches 4 of the 4 axis blocks; axes 1/2 stay single-block.
        out = view[0:25:12, 0:4, 0:4]
        assert out.shape == (3, 4, 4)
        assert view.stats["blocks_decoded"] == 4


class TestRegisteredDatasetEquivalence:
    @pytest.mark.parametrize("name", available_datasets())
    def test_lazy_matches_eager_bit_for_bit(self, tmp_path, name):
        ds = get_dataset(name, size="tiny")
        store = Store(tmp_path / name, MultiResolutionCompressor(unit_size=8))
        data = ds.hierarchy if ds.is_multiresolution else ds.field
        store.append(ds.name, 0, data, repro.ErrorBound.rel(0.02))
        reader = store.get(ds.name, 0)
        arr = store[ds.name, 0]
        for level in arr.levels:
            view = arr.level(level)
            shape = view.shape
            # An independent eager reference: decode every block and scatter.
            block_set = reader.read_blocks(level)
            eager_full = scatter_unit_blocks(block_set) if block_set.n_blocks else None
            bbox = tuple((s // 4, max(s // 4 + 1, 3 * s // 4)) for s in shape)
            sl = tuple(slice(lo, hi) for lo, hi in bbox)

            counting = store.get(ds.name, 0).as_array(level)
            lazy = counting[sl]
            eager = reader.read_roi(bbox, level=level)
            assert lazy.dtype == eager.dtype and lazy.shape == eager.shape
            assert np.array_equal(lazy, eager)
            if eager_full is not None:
                assert np.array_equal(lazy, eager_full[sl])
            assert counting.stats["blocks_decoded"] <= counting.n_blocks

            # Lazy-read proof: a query over exactly one occupied block decodes
            # one block — strictly fewer than the level total.
            unit = counting.source.unit_size(level)
            first = counting.source.intersecting(level)[1][0]
            one_block = store.get(ds.name, 0).as_array(level)
            out = one_block[
                tuple(slice(int(c) * unit, (int(c) + 1) * unit) for c in first)
            ]
            assert out.shape == (unit,) * len(shape)
            assert one_block.stats["blocks_decoded"] == 1
            if one_block.n_blocks > 1:
                assert one_block.stats["blocks_decoded"] < one_block.n_blocks


class TestBlockCache:
    def test_lru_eviction_and_counters(self):
        cache = BlockCache(max_blocks=2)
        a, b, c = (np.full((2,), v) for v in (1.0, 2.0, 3.0))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a  # refreshes recency: b is now LRU
        cache.put("c", c)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is a and cache.get("c") is c
        stats = cache.stats
        assert (stats["hits"], stats["misses"], stats["evictions"]) == (3, 1, 1)
        assert stats["size"] == 2 and stats["max_blocks"] == 2
        assert stats["nbytes"] == a.nbytes + c.nbytes

    def test_byte_bound_evicts_independently_of_count(self):
        block = np.zeros((8, 8))  # 512 B each
        cache = BlockCache(max_blocks=100, max_bytes=2 * block.nbytes)
        for key in "abc":
            cache.put(key, block.copy())
        stats = cache.stats
        assert stats["size"] == 2 and stats["evictions"] == 1
        assert stats["nbytes"] <= cache.max_bytes
        # The most recent entry survives even when it alone exceeds the bound.
        big = np.zeros((64, 64))
        cache.put("big", big)
        assert cache.get("big") is big
        assert cache.stats["size"] == 1

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError, match="max_blocks"):
            BlockCache(max_blocks=0)
        with pytest.raises(ValueError, match="max_bytes"):
            BlockCache(max_bytes=0)

    def test_view_hit_accounting(self, container):
        store, _ = container
        cache = BlockCache()
        view = store.get("f", 0).as_array(cache=cache)
        view[0:8, 0:8, 0:16]
        assert view.stats["blocks_decoded"] == 2
        assert cache.stats["misses"] == 2 and cache.stats["hits"] == 0
        view[0:8, 0:8, 0:16]  # identical query: served entirely from cache
        assert view.stats["blocks_decoded"] == 2
        assert cache.stats["hits"] == 2
        view[0:4, 0:4, 0:24]  # overlaps one cached block, adds one
        assert view.stats["blocks_decoded"] == 3
        assert cache.stats["hits"] == 4

    def test_store_views_share_cache(self, container):
        store, _ = container
        store.block_cache.clear()
        a = store["f", 0]
        b = store["f", 0]
        a[0:8, 0:8, 0:8]
        before = store.block_cache.stats["hits"]
        b[0:8, 0:8, 0:8]
        assert b.source.stats["blocks_decoded"] == 0  # b's reader decoded nothing
        assert store.block_cache.stats["hits"] == before + 1

    def test_bounded_cache_evicts_under_pressure(self, container):
        store, _ = container
        cache = BlockCache(max_blocks=4)
        view = store.get("f", 0).as_array(cache=cache)
        view[...]  # 64 blocks through a 4-block cache
        stats = cache.stats
        assert stats["size"] == 4
        assert stats["evictions"] == 60
        # Still bit-identical to an uncached read.
        assert np.array_equal(view[0:8, 0:8, 0:8], store.get("f", 0).as_array()[0:8, 0:8, 0:8])


class TestAdaptersAndDeprecation:
    def test_read_level_deprecated_but_equivalent(self, container):
        store, _ = container
        arr = store["f", 0]
        with pytest.warns(DeprecationWarning, match="read_level is deprecated"):
            via_store = store.read_level("f", 0)
        with pytest.warns(DeprecationWarning, match="read_level is deprecated"):
            via_reader = store.get("f", 0).read_level(0)
        assert np.array_equal(via_store, arr[...])
        assert np.array_equal(via_reader, arr[...])

    def test_read_roi_is_thin_adapter(self, container):
        store, field = container
        roi = store.read_roi("f", 0, ((-5, 8), (0, 8), (24, 99)))
        assert roi.shape == (8, 8, 8)  # bbox clamping, not negative indexing
        assert np.array_equal(roi, store["f", 0][0:8, 0:8, 24:32])

    def test_view_read_roi_clamps_like_bbox(self, container):
        store, _ = container
        arr = store["f", 0]
        assert np.array_equal(
            arr.read_roi(((-5, 8), (0, 8), (24, 99))), arr[0:8, 0:8, 24:32]
        )


class TestFacadeViews:
    def test_decompress_returns_lazy_view(self, smooth_field_3d):
        compressed = repro.compress(smooth_field_3d, repro.ErrorBound.rel(0.01))
        view = repro.decompress(compressed)
        assert isinstance(view, CompressedArray)
        assert view.shape == smooth_field_3d.shape
        assert view.source.stats["blocks_decoded"] == 0  # nothing decoded yet
        plane = view[:, :, 5]
        assert view.source.stats["blocks_decoded"] == 1
        full = np.asarray(view)
        assert np.array_equal(plane, full[:, :, 5])
        value_range = smooth_field_3d.max() - smooth_field_3d.min()
        assert np.abs(full - smooth_field_3d).max() <= 0.01 * value_range * (1 + 1e-9)

    def test_decompress_bytes_path_and_blob_agree(self, tmp_path, smooth_field_2d):
        from repro.insitu.io import write_compressed_array

        compressed = repro.compress(smooth_field_2d, 0.05)
        path = tmp_path / "f.rpca"
        write_compressed_array(path, compressed)
        a = np.asarray(repro.decompress(compressed))
        assert np.array_equal(np.asarray(repro.decompress(compressed.to_bytes())), a)
        assert np.array_equal(np.asarray(repro.decompress(path)), a)

    def test_open_array_on_container(self, container):
        store, _ = container
        path = store.root / store.entry("f", 0).path
        arr = repro.open_array(path)
        assert isinstance(arr, CompressedArray)
        assert np.array_equal(arr[0:8, 0:8, 0:8], store["f", 0][0:8, 0:8, 0:8])
        assert arr.stats["blocks_decoded"] == 1  # block-granular, cache attached

    def test_as_lazy_array_wraps_ndarray(self):
        data = np.arange(24.0).reshape(4, 6)
        view = as_lazy_array(data)
        assert view.shape == (4, 6)
        assert np.array_equal(view[1:3, ::2], data[1:3, ::2])
        assert np.array_equal(np.asarray(view), data)


class TestVisConsumesViews:
    def test_extract_slice_is_block_granular(self, container):
        from repro.vis import extract_slice

        store, _ = container
        view = store.get("f", 0).as_array()
        plane = extract_slice(view, axis=2, position=0.5)
        assert plane.shape == (32, 32)
        # One z-plane of blocks out of the 4x4x4 grid.
        assert view.stats["blocks_decoded"] == 16
        assert np.array_equal(plane, np.asarray(view)[:, :, 16])

    def test_isosurface_and_pmc_accept_views(self, container):
        from repro.vis import crossing_probability, isosurface_cell_count

        store, _ = container
        arr = store["f", 0]
        iso = float(np.median(np.asarray(arr)))
        assert isosurface_cell_count(arr, iso) == isosurface_cell_count(
            np.asarray(arr), iso
        )
        prob = crossing_probability(arr, 0.01, iso)
        assert prob.shape == (31, 31, 31)


class TestCompileIndex:
    def test_rejects_non_integer_slice_parts(self):
        with pytest.raises(TypeError):
            compile_index(slice(0, "x"), (8,))

    def test_ndim_out_counts_kept_axes(self):
        compiled = compile_index((2, slice(None), 4), (8, 8, 8))
        assert compiled.ndim_out == 1
