"""Unit tests for the image-filter baselines and the visualization helpers."""

import numpy as np
import pytest

from repro.analysis import psnr
from repro.filters import anisotropic_diffusion, gaussian_blur, median_smooth
from repro.vis import (
    cell_crossings,
    crossing_probability,
    crossing_probability_monte_carlo,
    extract_isosurface_points,
    extract_slice,
    feature_recovery,
    isosurface_cell_count,
    normalize_for_display,
    render_slice_rgb,
)
from repro.vis.slicing import zoom_region


class TestFilters:
    def test_gaussian_blur_reduces_noise_on_noise_only(self):
        rng = np.random.default_rng(0)
        clean = np.outer(np.linspace(0, 1, 32), np.linspace(0, 1, 32))
        noisy = clean + 0.2 * rng.standard_normal(clean.shape)
        assert psnr(clean, gaussian_blur(noisy, 1.0)) > psnr(clean, noisy)

    def test_filters_over_smooth_error_bounded_data(self):
        """Table I behaviour: filters reduce PSNR of error-bounded decompressed data."""
        rng = np.random.default_rng(1)
        original = np.cumsum(np.cumsum(rng.random((24, 24, 24)), axis=0), axis=1)
        eb = 0.01 * (original.max() - original.min())
        decompressed = original + rng.uniform(-eb, eb, original.shape)
        base = psnr(original, decompressed)
        assert psnr(original, gaussian_blur(decompressed, 1.0)) < base
        assert psnr(original, median_smooth(decompressed, 3)) < base

    def test_anisotropic_diffusion_preserves_mean(self):
        rng = np.random.default_rng(2)
        data = rng.random((16, 16))
        out = anisotropic_diffusion(data, n_iterations=5)
        assert out.mean() == pytest.approx(data.mean(), rel=1e-6)

    def test_anisotropic_diffusion_smooths(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((32, 32))
        out = anisotropic_diffusion(data, n_iterations=10, kappa=10.0)
        assert out.std() < data.std()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gaussian_blur(np.zeros((4, 4)), 0.0)
        with pytest.raises(ValueError):
            median_smooth(np.zeros((4, 4)), 1)
        with pytest.raises(ValueError):
            anisotropic_diffusion(np.zeros((4, 4)), n_iterations=0)


class TestSlicing:
    def test_extract_slice_fraction_and_index(self):
        vol = np.arange(4 * 4 * 4, dtype=float).reshape(4, 4, 4)
        np.testing.assert_array_equal(extract_slice(vol, axis=2, position=0.0), vol[:, :, 0])
        np.testing.assert_array_equal(extract_slice(vol, axis=0, position=3), vol[3])

    def test_extract_slice_out_of_range(self):
        with pytest.raises(IndexError):
            extract_slice(np.zeros((4, 4, 4)), axis=0, position=9)

    def test_normalize_clips_to_unit_interval(self):
        img = np.array([[-1.0, 0.5], [2.0, 1.0]])
        out = normalize_for_display(img, vmin=0.0, vmax=1.0)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_normalize_constant_image(self):
        out = normalize_for_display(np.full((4, 4), 3.0))
        assert (out == 0).all()

    def test_render_rgb_shape_and_range(self):
        img = np.random.default_rng(4).random((8, 8))
        rgb = render_slice_rgb(img)
        assert rgb.shape == (8, 8, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_zoom_region_crops_centre(self):
        img = np.arange(100, dtype=float).reshape(10, 10)
        zoomed = zoom_region(img, zoom=2.0)
        assert zoomed.shape == (5, 5)


class TestIsosurface:
    def test_plane_isosurface_cell_count(self):
        """A linear ramp crossing the isovalue once gives one layer of crossed cells."""
        n = 8
        field = np.broadcast_to(np.arange(n, dtype=float)[:, None, None], (n, n, n)).copy()
        crossings = cell_crossings(field, isovalue=3.5)
        assert crossings.shape == (n - 1, n - 1, n - 1)
        assert crossings.sum() == (n - 1) ** 2
        assert crossings[3].all()

    def test_no_crossing_outside_range(self):
        field = np.random.default_rng(5).random((8, 8, 8))
        assert isosurface_cell_count(field, isovalue=10.0) == 0

    def test_isosurface_points_on_plane(self):
        n = 8
        field = np.broadcast_to(np.arange(n, dtype=float)[:, None, None], (n, n, n)).copy()
        pts = extract_isosurface_points(field, isovalue=3.25)
        assert pts.shape[1] == 3
        np.testing.assert_allclose(pts[:, 0], 3.25)

    def test_2d_supported(self):
        field = np.add.outer(np.arange(6.0), np.zeros(6))
        assert cell_crossings(field, 2.5).shape == (5, 5)


class TestProbabilisticMC:
    def test_zero_uncertainty_matches_deterministic(self):
        field = np.random.default_rng(6).random((10, 10, 10))
        prob = crossing_probability(field, 0.0, isovalue=0.5)
        det = cell_crossings(field, 0.5)
        np.testing.assert_array_equal(prob > 0.5, det)

    def test_probability_bounds(self):
        field = np.random.default_rng(7).random((8, 8, 8))
        prob = crossing_probability(field, 0.1, isovalue=0.5)
        assert (prob >= 0).all() and (prob <= 1).all()

    def test_closed_form_matches_monte_carlo(self):
        rng = np.random.default_rng(8)
        field = rng.random((8, 8))
        sigma = 0.15
        closed = crossing_probability(field, sigma, isovalue=0.5)
        mc = crossing_probability_monte_carlo(field, sigma, isovalue=0.5, n_samples=400)
        assert np.abs(closed - mc).mean() < 0.05

    def test_far_from_isovalue_low_probability(self):
        field = np.zeros((6, 6, 6))
        prob = crossing_probability(field, 0.01, isovalue=5.0)
        assert prob.max() < 1e-6

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            crossing_probability(np.zeros((4, 4)), -1.0, isovalue=0.0)

    def test_feature_recovery_detects_pruned_surface(self):
        """Fig. 14 scenario: compression pushes values below the isovalue and the
        probabilistic map recovers the lost feature cells."""
        original = np.zeros((8, 8, 8))
        original[3:5, 3:5, 3:5] = 1.0  # small feature above the isovalue
        decompressed = np.clip(original - 0.6, 0.0, None)  # error prunes it
        rec = feature_recovery(original, decompressed, std_field=0.4, isovalue=0.5,
                               probability_threshold=0.05)
        assert rec.missing_cells > 0
        assert rec.recovered_cells > 0
        assert 0.0 < rec.recovery_rate <= 1.0

    def test_feature_recovery_trivial_when_nothing_missing(self):
        field = np.random.default_rng(9).random((8, 8, 8))
        rec = feature_recovery(field, field, std_field=0.01, isovalue=0.5)
        assert rec.missing_cells == 0
        assert rec.recovery_rate == 1.0
