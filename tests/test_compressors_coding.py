"""Unit tests for the coding substrates: quantizer, Huffman, lossless container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors.errors import DecompressionError
from repro.compressors.huffman import HuffmanCodec, huffman_decode, huffman_encode
from repro.compressors.lossless import (
    decode_float_array,
    decode_int_array,
    encode_float_array,
    encode_int_array,
    lossless_compress,
    lossless_decompress,
    pack_streams,
    unpack_streams,
)
from repro.compressors.quantizer import LinearQuantizer


class TestLinearQuantizer:
    def test_reconstruction_within_bound(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        predictions = values + rng.normal(scale=0.3, size=1000)
        q = LinearQuantizer()
        eb = 0.01
        out = q.quantize(values, predictions, eb)
        assert np.abs(out.reconstructed - values).max() <= eb + 1e-12

    def test_dequantize_matches_quantize(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        predictions = np.zeros(500)
        q = LinearQuantizer()
        eb = 0.05
        enc = q.quantize(values, predictions, eb)
        dec, n_exact = q.dequantize(enc.codes, predictions, eb, enc.exact_values)
        np.testing.assert_allclose(dec, enc.reconstructed)
        assert n_exact == enc.exact_values.size

    def test_overflow_goes_to_exact_values(self):
        q = LinearQuantizer(radius=4)
        values = np.array([100.0, 0.0])
        predictions = np.array([0.0, 0.0])
        out = q.quantize(values, predictions, 0.5)
        assert out.codes[0] == q.sentinel
        assert out.exact_values.size == 1
        assert out.reconstructed[0] == 100.0

    def test_zero_error_bound_raises(self):
        with pytest.raises(ValueError):
            LinearQuantizer().quantize(np.zeros(3), np.zeros(3), 0.0)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            LinearQuantizer().quantize(np.zeros(3), np.zeros(4), 0.1)

    def test_dequantize_missing_exact_values_raises(self):
        q = LinearQuantizer(radius=4)
        codes = np.array([q.sentinel, 0])
        with pytest.raises(ValueError):
            q.dequantize(codes, np.zeros(2), 0.1, np.zeros(0))

    @settings(max_examples=30, deadline=None)
    @given(
        eb=st.floats(min_value=1e-6, max_value=10.0),
        scale=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_property_error_bound_always_holds(self, eb, scale):
        rng = np.random.default_rng(42)
        values = scale * rng.normal(size=200)
        predictions = scale * rng.normal(size=200)
        out = LinearQuantizer().quantize(values, predictions, eb)
        assert np.abs(out.reconstructed - values).max() <= eb * (1 + 1e-12)


class TestHuffman:
    def test_roundtrip_small(self):
        symbols = np.array([1, 1, 2, 3, 3, 3, -5, 0, 0, 1])
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    def test_roundtrip_single_symbol(self):
        symbols = np.full(50, 7)
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)

    def test_roundtrip_empty(self):
        decoded = huffman_decode(huffman_encode(np.zeros(0, dtype=np.int64)))
        assert decoded.size == 0

    def test_skewed_distribution_compresses_well(self):
        rng = np.random.default_rng(3)
        symbols = np.where(rng.random(5000) < 0.95, 0, rng.integers(-10, 10, 5000))
        encoded = HuffmanCodec().encode(symbols)
        # 5000 int64 = 40000 bytes raw; the skew should give a large win.
        assert len(encoded) < 5000

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300)
    )
    def test_property_roundtrip(self, data):
        symbols = np.array(data, dtype=np.int64)
        decoded = huffman_decode(huffman_encode(symbols))
        np.testing.assert_array_equal(decoded, symbols)


class TestLossless:
    @pytest.mark.parametrize("backend", ["zlib", "lzma", "bz2", "store"])
    def test_roundtrip_backends(self, backend):
        raw = bytes(range(256)) * 10
        assert lossless_decompress(lossless_compress(raw, backend=backend)) == raw

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            lossless_compress(b"abc", backend="zstd")

    def test_empty_payload_raises(self):
        with pytest.raises(DecompressionError):
            lossless_decompress(b"")

    def test_pack_unpack_streams(self):
        streams = {"codes": b"12345", "exact": b"", "anchors": b"\x00" * 17}
        assert unpack_streams(pack_streams(streams)) == streams

    def test_unpack_bad_magic_raises(self):
        with pytest.raises(DecompressionError):
            unpack_streams(b"XXXX" + b"\x00" * 10)

    def test_int_array_roundtrip_narrows_dtype(self):
        arr = np.array([0, 1, -2, 3], dtype=np.int64)
        blob = encode_int_array(arr)
        np.testing.assert_array_equal(decode_int_array(blob), arr)
        # int8 narrowing + zlib header should stay tiny
        assert len(blob) < 40

    def test_int_array_large_values(self):
        arr = np.array([2**40, -(2**41)], dtype=np.int64)
        np.testing.assert_array_equal(decode_int_array(encode_int_array(arr)), arr)

    def test_float_array_roundtrip(self):
        arr = np.array([1.5, -2.25, 3.125e-9])
        np.testing.assert_allclose(decode_float_array(encode_float_array(arr)), arr)

    def test_float_array_float32_dtype(self):
        arr = np.array([1.5, -2.25])
        out = decode_float_array(encode_float_array(arr, dtype="<f4"))
        np.testing.assert_allclose(out, arr)
