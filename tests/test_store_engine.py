"""Tests for the parallel codec engine and the process-pool scheduler backend."""

import numpy as np
import pytest

from repro.compressors.errors import UnknownCompressorError
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.partition import extract_unit_blocks
from repro.datasets.synthetic import smooth_wave_field
from repro.insitu.scheduler import parallel_map
from repro.store import CodecEngine

EB = 0.02


def _square(x):  # module-level so the process backend can pickle it
    return x * x


def _boom(x):
    raise RuntimeError("boom from worker")


@pytest.fixture(scope="module")
def blocks():
    field = smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))
    return extract_unit_blocks(field, unit_size=8).blocks


class TestParallelMapBackends:
    def test_serial_executor(self):
        assert parallel_map(_square, range(6), executor="serial") == [0, 1, 4, 9, 16, 25]

    def test_process_executor_preserves_order(self):
        items = list(range(12))
        out = parallel_map(_square, items, max_workers=2, executor="process")
        assert out == [x * x for x in items]

    def test_process_executor_chunksize(self):
        items = list(range(10))
        out = parallel_map(_square, items, max_workers=2, executor="process", chunksize=3)
        assert out == [x * x for x in items]

    def test_process_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, [1, 2], max_workers=2, executor="process")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            parallel_map(_square, [1], executor="mpi")


class TestCodecEngine:
    def test_all_backends_produce_identical_payloads(self, blocks):
        reference = CodecEngine(executor="serial").encode_blocks(blocks, EB)
        for executor in ("thread", "process"):
            payloads = CodecEngine(
                executor=executor, max_workers=2, chunksize=8
            ).encode_blocks(blocks, EB)
            assert payloads == reference

    def test_decode_roundtrip(self, blocks):
        engine = CodecEngine(executor="thread", max_workers=2)
        payloads = engine.encode_blocks(blocks, EB)
        decoded = engine.decode_blocks(payloads)
        assert len(decoded) == blocks.shape[0]
        for recon, block in zip(decoded, blocks):
            assert np.abs(recon - block).max() <= EB * (1 + 1e-9)

    def test_chunk_bounds_cover_everything_once(self):
        engine = CodecEngine(chunksize=7)
        bounds = engine._chunk_bounds(23)
        flat = [i for a, b in bounds for i in range(a, b)]
        assert flat == list(range(23))

    def test_default_chunk_bounds(self):
        engine = CodecEngine(max_workers=4)
        bounds = engine._chunk_bounds(64)
        assert bounds[0] == (0, 4)  # 64 / (4 workers * 4) = 4 blocks per task
        assert bounds[-1][1] == 64

    def test_from_compressor_matches_codec(self, blocks):
        mrc = MultiResolutionCompressor(compressor="sz2", unit_size=8)
        engine = CodecEngine.from_compressor(mrc)
        payloads = engine.encode_blocks(blocks[:4], EB)
        direct = [mrc.codec.compress(b, EB).to_bytes() for b in blocks[:4]]
        assert payloads == direct

    def test_unknown_codec_rejected_eagerly(self):
        with pytest.raises(UnknownCompressorError):
            CodecEngine(codec="mgard")

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            CodecEngine(executor="gpu")


@pytest.mark.slow
class TestProcessEngineAtScale:
    def test_process_encode_matches_serial_on_larger_field(self):
        field = smooth_wave_field((64, 64, 64), frequencies=(3.0, 2.0, 4.0))
        blocks = extract_unit_blocks(field, unit_size=16).blocks
        serial = CodecEngine(executor="serial").encode_blocks(blocks, EB)
        parallel = CodecEngine(executor="process", max_workers=2).encode_blocks(blocks, EB)
        assert parallel == serial
