"""Unit tests for the Lorenzo / regression predictors and the ZFP transform."""

import numpy as np
import pytest

from repro.compressors.lorenzo import lorenzo_predict_open_loop, lorenzo_roundtrip_closed_loop
from repro.compressors.regression import (
    design_matrix,
    fit_mean_blocks,
    fit_plane_blocks,
    predict_plane_blocks,
)
from repro.compressors.transform import (
    ZFP_BLOCK_SIZE,
    forward_matrix,
    forward_transform_blocks,
    inverse_gain,
    inverse_matrix,
    inverse_transform_blocks,
)


class TestLorenzo:
    def test_open_loop_1d_is_previous_value(self):
        data = np.array([1.0, 2.0, 4.0, 8.0])
        pred = lorenzo_predict_open_loop(data)
        np.testing.assert_array_equal(pred, [0.0, 1.0, 2.0, 4.0])

    def test_open_loop_2d_exact_for_bilinear(self):
        """A bilinear (plane) field is predicted exactly by the 2-D Lorenzo stencil."""
        i, j = np.meshgrid(np.arange(1, 9), np.arange(1, 9), indexing="ij")
        data = (2.0 * i + 3.0 * j).astype(float)
        pred = lorenzo_predict_open_loop(data)
        np.testing.assert_allclose(pred[1:, 1:], data[1:, 1:])

    def test_open_loop_3d_exact_for_trilinear(self):
        i, j, k = np.meshgrid(np.arange(1, 6), np.arange(1, 6), np.arange(1, 6), indexing="ij")
        data = (1.0 * i + 2.0 * j - 3.0 * k).astype(float)
        pred = lorenzo_predict_open_loop(data)
        np.testing.assert_allclose(pred[1:, 1:, 1:], data[1:, 1:, 1:])

    @pytest.mark.parametrize("shape", [(40,), (12, 12), (6, 6, 6)])
    def test_closed_loop_respects_error_bound(self, shape):
        rng = np.random.default_rng(0)
        data = rng.normal(size=shape)
        eb = 0.01
        codes, recon = lorenzo_roundtrip_closed_loop(data, eb)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= eb + 1e-12
        assert codes.shape == data.shape

    def test_closed_loop_invalid_eb(self):
        with pytest.raises(ValueError):
            lorenzo_roundtrip_closed_loop(np.zeros(4), 0.0)

    def test_unsupported_ndim(self):
        with pytest.raises(ValueError):
            lorenzo_predict_open_loop(np.zeros((2, 2, 2, 2)))


class TestRegression:
    def test_design_matrix_shape(self):
        X = design_matrix((4, 4, 4))
        assert X.shape == (64, 4)
        np.testing.assert_array_equal(X[:, 0], np.ones(64))

    def test_plane_fit_recovers_exact_plane(self):
        block_shape = (4, 4)
        X = design_matrix(block_shape)
        true_coeffs = np.array([[5.0, 1.5, -2.0]])
        values = true_coeffs @ X.T
        fitted = fit_plane_blocks(values, block_shape)
        np.testing.assert_allclose(fitted, true_coeffs, atol=1e-10)

    def test_predict_inverts_fit_for_planes(self):
        block_shape = (4, 4, 4)
        rng = np.random.default_rng(5)
        coeffs = rng.normal(size=(10, 4))
        values = predict_plane_blocks(coeffs, block_shape)
        refit = fit_plane_blocks(values, block_shape)
        np.testing.assert_allclose(refit, coeffs, atol=1e-9)

    def test_constant_coefficient_is_block_mean(self):
        block_shape = (4, 4)
        rng = np.random.default_rng(7)
        values = rng.normal(size=(6, 16))
        coeffs = fit_plane_blocks(values, block_shape)
        np.testing.assert_allclose(coeffs[:, 0], values.mean(axis=1), atol=1e-10)

    def test_mean_blocks(self):
        values = np.array([[1.0, 3.0], [2.0, 4.0]])
        np.testing.assert_allclose(fit_mean_blocks(values), [[2.0], [3.0]])

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            fit_plane_blocks(np.zeros((3, 10)), (4, 4))
        with pytest.raises(ValueError):
            predict_plane_blocks(np.zeros((3, 7)), (4, 4))


class TestZFPTransform:
    def test_matrices_are_inverses(self):
        np.testing.assert_allclose(forward_matrix() @ inverse_matrix(), np.eye(4), atol=1e-12)

    def test_forward_inverse_roundtrip_3d(self):
        rng = np.random.default_rng(11)
        blocks = rng.normal(size=(20, 4, 4, 4))
        coeffs = forward_transform_blocks(blocks)
        restored = inverse_transform_blocks(coeffs)
        np.testing.assert_allclose(restored, blocks, atol=1e-10)

    def test_constant_block_concentrates_in_dc(self):
        blocks = np.full((1, 4, 4), 3.0)
        coeffs = forward_transform_blocks(blocks)
        assert abs(coeffs[0, 0, 0] - 3.0) < 1e-12
        assert np.abs(coeffs[0]).sum() == pytest.approx(3.0, abs=1e-10)

    def test_inverse_gain_monotone_in_ndim(self):
        assert inverse_gain(1) < inverse_gain(2) < inverse_gain(3)

    def test_wrong_block_shape_raises(self):
        with pytest.raises(ValueError):
            forward_transform_blocks(np.zeros((2, 5, 4)))
        with pytest.raises(ValueError):
            inverse_gain(0)

    def test_block_size_constant(self):
        assert ZFP_BLOCK_SIZE == 4
