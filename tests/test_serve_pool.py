"""``ConnectSpec`` + ``ConnectionPool``: dial policy, lease semantics, and the
concurrency regression the pool exists to fix.

The headline test is :class:`TestRouterConcurrency`: before the pool, the
router held **one** connection per shard, so N concurrent requests routed to
the same shard serialized — wall clock ≈ N × single-request latency.  With a
pool they overlap.  A deliberately slow shard daemon (a fixed sleep inside
``read``) makes the bound deterministic: sleeps are wall-clock floors, so the
serialized case *cannot* finish early and the pooled case *must* (generous
0.5·N slack keeps slow CI machines green).
"""

from __future__ import annotations

import socket
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import ConnectionPool, ConnectSpec, ReadDaemon, RemoteStore
from repro.serve.protocol import ProtocolError
from repro.shard import RouterDaemon, ShardMap, ShardSpec

DELAY = 0.15  # seconds each slow read sleeps; every bound builds on this
N_THREADS = 4


class SlowReadDaemon(ReadDaemon):
    """A daemon whose reads take (at least) ``DELAY`` seconds of wall clock."""

    def _dispatch(self, header):
        if header.get("op") == "read":
            time.sleep(DELAY)
        return super()._dispatch(header)


@pytest.fixture(scope="module")
def slow_shard(tmp_path_factory, smooth_field_3d):
    """One slow shard daemon plus a single-shard map routing everything to it."""
    from repro.core.mr_compressor import MultiResolutionCompressor
    from repro.store import Store

    root = tmp_path_factory.mktemp("pool-shard")
    store = Store(root / "s0", MultiResolutionCompressor(unit_size=8))
    store.append("density", 0, smooth_field_3d, 0.05)
    daemon = SlowReadDaemon(store)
    address = daemon.start()
    shard_map = ShardMap([ShardSpec("s0", address, store=str(root / "s0"))])
    yield SimpleNamespace(store=store, daemon=daemon, shard_map=shard_map)
    daemon.stop()


@pytest.fixture()
def fast_daemon(serve_daemon):
    """The shared session daemon (no artificial delay), for lease tests."""
    return serve_daemon


class TestConnectSpec:
    def test_address_normalizes(self):
        spec = ConnectSpec("localhost:4815")
        assert spec.address == "localhost:4815"
        with pytest.raises(ValueError):
            ConnectSpec("no-port-here")

    def test_no_retry_fails_fast_on_refused(self):
        # Grab a port the OS just released: connecting to it is refused.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        spec = ConnectSpec(f"127.0.0.1:{port}", retries=0)
        with pytest.raises(ConnectionRefusedError):
            spec.open_socket()

    def test_retry_rides_out_late_binding(self):
        """The retry loop connects once a listener appears mid-backoff."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        listener = socket.socket()

        def bind_late():
            time.sleep(0.1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)

        thread = threading.Thread(target=bind_late)
        thread.start()
        try:
            spec = ConnectSpec(f"127.0.0.1:{port}", retries=10, backoff=0.02)
            sock = spec.open_socket()
            sock.close()
        finally:
            thread.join()
            listener.close()

    def test_spec_connect_builds_a_live_store(self, serve_daemon):
        with ConnectSpec(serve_daemon.address).connect() as remote:
            assert remote.fields()

    def test_backoff_is_full_jitter_within_the_exponential_ceiling(self):
        spec = ConnectSpec("127.0.0.1:1", backoff=0.05, rng="jitter-seed")
        for attempt in range(8):
            delay = spec.backoff_delay(attempt)
            assert 0.0 <= delay <= min(0.05 * 2 ** attempt, 1.0)

    def test_injected_seed_makes_the_schedule_deterministic(self):
        a = ConnectSpec("127.0.0.1:1", backoff=0.05, rng="seed-a")
        b = ConnectSpec("127.0.0.1:1", backoff=0.05, rng="seed-a")
        rng_a, rng_b = a._jitter_rng(), b._jitter_rng()
        seq_a = [a.backoff_delay(i, rng=rng_a) for i in range(6)]
        seq_b = [b.backoff_delay(i, rng=rng_b) for i in range(6)]
        assert seq_a == seq_b
        other = ConnectSpec("127.0.0.1:1", backoff=0.05, rng="seed-z")
        rng_o = other._jitter_rng()
        assert [other.backoff_delay(i, rng=rng_o) for i in range(6)] != seq_a
        # The jitter source is policy-irrelevant: specs still compare equal.
        assert a == ConnectSpec("127.0.0.1:1", backoff=0.05)

    def test_uninjected_specs_do_not_share_a_jitter_stream(self):
        # Two plain specs must NOT draw identical jitter — that lockstep
        # (every pooled client re-dialing a restarted shard in sync) is the
        # thundering herd full jitter exists to break.
        a, b = ConnectSpec("127.0.0.1:1"), ConnectSpec("127.0.0.1:1")
        assert [a.backoff_delay(i) for i in range(6)] != [
            b.backoff_delay(i) for i in range(6)
        ]

    def test_retry_covers_reset_and_broken_pipe(self, monkeypatch):
        """A listener dropping us mid-handshake is retried like a refusal."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        fails = [ConnectionResetError("mid-handshake"), BrokenPipeError("gone")]
        real = socket.create_connection

        def flaky(addr, timeout=None):
            if fails:
                raise fails.pop(0)
            return real(addr, timeout=timeout)

        monkeypatch.setattr(socket, "create_connection", flaky)
        try:
            spec = ConnectSpec(
                f"127.0.0.1:{port}", retries=3, backoff=0.001, rng="reset-retry"
            )
            sock = spec.open_socket()
            sock.close()
            assert not fails, "both transient failures should have been retried"
            # With retries exhausted the typed error surfaces as-is.
            fails.append(ConnectionResetError("mid-handshake"))
            with pytest.raises(ConnectionResetError):
                ConnectSpec(f"127.0.0.1:{port}", retries=0).open_socket()
        finally:
            listener.close()


class TestLease:
    def test_sequential_leases_reuse_one_connection(self, fast_daemon):
        with ConnectionPool(fast_daemon.address, size=4) as pool:
            with pool.lease() as first:
                first.describe()
            with pool.lease() as second:
                second.describe()
            assert first is second
            stats = pool.stats()
            assert stats["created"] == 1
            assert stats["leases"] == 2
            assert stats["open"] == 1 and stats["idle"] == 1

    def test_exhausted_pool_queues_until_checkin(self, fast_daemon):
        pool = ConnectionPool(fast_daemon.address, size=1)
        holding = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with pool.lease():
                holding.set()
                release.wait(timeout=5)
            order.append("released")

        def waiter():
            holding.wait(timeout=5)
            with pool.lease():
                order.append("acquired")

        threads = [threading.Thread(target=holder), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        assert holding.wait(timeout=5)
        time.sleep(0.05)  # give the waiter time to reach the blocked wait
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        # The waiter could only proceed after the holder's checkin.
        assert order == ["released", "acquired"]
        assert pool.stats()["waits"] >= 1
        assert pool.stats()["open"] == 1  # never grew past size
        pool.close()

    def test_poisoned_connection_is_replaced(self, fast_daemon):
        pool = ConnectionPool(fast_daemon.address, size=1)
        with pool.lease() as conn:
            conn.describe()
            # Kill the transport under the lease; the next exchange dies and
            # poisons the connection (RemoteStore marks itself closed).
            conn._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises((OSError, ProtocolError)):
                conn.describe()
            assert conn.closed
        stats = pool.stats()
        assert stats["poisoned"] == 1
        assert stats["open"] == 0  # the slot was freed, not leaked
        # The freed slot redials transparently on the next checkout.
        with pool.lease() as fresh:
            assert fresh is not conn
            fresh.describe()
        assert pool.stats()["created"] == 2
        pool.close()

    def test_close_drains_idle_and_inflight(self, fast_daemon):
        pool = ConnectionPool(fast_daemon.address, size=2)
        with pool.lease() as conn:
            pool.close()
            # The in-flight lease finishes its exchange undisturbed...
            conn.describe()
        # ...but checkin discards it instead of recycling.
        assert conn.closed
        assert pool.stats()["open"] == 0
        with pytest.raises(ProtocolError, match="closed"):
            pool.warm()

    def test_checkout_after_close_raises(self, fast_daemon):
        pool = ConnectionPool(fast_daemon.address)
        pool.warm()
        pool.close()
        with pytest.raises(ProtocolError, match="closed"):
            with pool.lease():
                pass

    def test_waiters_released_by_close(self, fast_daemon):
        pool = ConnectionPool(fast_daemon.address, size=1)
        holding = threading.Event()
        outcome = []

        def holder():
            with pool.lease():
                holding.set()
                time.sleep(0.2)

        def waiter():
            holding.wait(timeout=5)
            try:
                with pool.lease():
                    outcome.append("leased")
            except ProtocolError:
                outcome.append("closed")

        threads = [threading.Thread(target=holder), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        holding.wait(timeout=5)
        time.sleep(0.05)
        pool.close()
        for thread in threads:
            thread.join(timeout=5)
        assert outcome == ["closed"]

    @pytest.mark.parametrize("close_after", [0.0, 0.01, 0.05])
    def test_close_races_concurrent_leases_without_hanging(
        self, fast_daemon, close_after
    ):
        """``close()`` landing mid-lease-storm: typed error or success, never a hang.

        Four workers hammer lease/describe in a loop while the main thread
        closes the pool at a varying offset — before any lease, mid-storm,
        and late.  Every worker must end in exactly one way (the typed
        ``ProtocolError`` from a closed pool); a worker stuck in checkout or
        an untyped error fails the assertions below.
        """
        pool = ConnectionPool(fast_daemon.address, size=2)
        outcomes = []
        outcomes_lock = threading.Lock()

        def worker():
            try:
                while True:
                    with pool.lease() as conn:
                        conn.describe()
            except ProtocolError:
                with outcomes_lock:
                    outcomes.append("closed")
            except Exception as exc:  # noqa: BLE001 - the assertion wants the type
                with outcomes_lock:
                    outcomes.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(close_after)
        pool.close()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads), (
            "a lease or checkout hung through pool.close()"
        )
        assert outcomes == ["closed"] * 4
        assert pool.stats()["open"] == 0


def _parallel_reads(router_address, n_threads):
    """N concurrent same-shard reads through one router; returns wall seconds."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def worker():
        try:
            with RemoteStore(router_address) as remote:
                arr = remote["density", 0]
                barrier.wait(timeout=10)
                arr[0:4, 0:4, 0:4]
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return elapsed


class TestRouterConcurrency:
    """The regression the pool fixes: same-shard requests must overlap."""

    def test_pooled_router_overlaps_same_shard_reads(self, slow_shard):
        router = RouterDaemon(slow_shard.shard_map, pool_size=N_THREADS)
        router.start()
        try:
            elapsed = _parallel_reads(router.address, N_THREADS)
            # Serialized would take >= N * DELAY of pure sleep; the pool must
            # beat half of that (parallel ideal is ~1 * DELAY).
            assert elapsed < 0.5 * N_THREADS * DELAY, (
                f"{N_THREADS} pooled same-shard reads took {elapsed:.3f}s; "
                f"bound {0.5 * N_THREADS * DELAY:.3f}s — pool is serializing"
            )
            pool_stats = router.stats()["pools"]["s0"]
            assert pool_stats["open"] >= 2  # the fan-out actually happened
        finally:
            router.stop()

    def test_pool_size_one_serializes(self, slow_shard):
        """The legacy shape (one connection per shard) really does queue."""
        router = RouterDaemon(slow_shard.shard_map, pool_size=1)
        router.start()
        try:
            elapsed = _parallel_reads(router.address, N_THREADS)
            # Each read sleeps DELAY on the shard and they all share one
            # backend connection, so the sleeps cannot overlap.
            assert elapsed >= 0.9 * N_THREADS * DELAY
            assert router.stats()["pools"]["s0"]["open"] <= 1
        finally:
            router.stop()

    def test_router_stats_surface_pool_counters(self, slow_shard):
        router = RouterDaemon(slow_shard.shard_map, pool_size=2)
        router.start()
        try:
            with RemoteStore(router.address) as remote:
                remote.entries()
            pools = router.stats()["pools"]
            assert set(pools) == {"s0"}
            for key in ("created", "leases", "waits", "poisoned", "open", "idle"):
                assert key in pools["s0"]
        finally:
            router.stop()
