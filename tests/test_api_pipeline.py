"""Tests for the composable repro.api Pipeline builder and the facade."""

import numpy as np
import pytest

import repro
from repro.amr.simulation import CollapsingDensitySimulation
from repro.api import CodecSpec, ErrorBound, Pipeline, PipelineConfig, WorkflowConfig
from repro.insitu.pipeline import InSituPipeline
from repro.store import MANIFEST_NAME, Store


def _simulation():
    return CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8, seed="api-pipe")


class TestPipelineBuilder:
    def test_array_source_to_store_sink(self, tmp_path, smooth_field_3d):
        reports = (
            Pipeline(CodecSpec.sz3mr(unit_size=8), ErrorBound.rel(0.02))
            .roi(fraction=0.5, block_size=8)
            .sink_store(tmp_path / "run")
            .run(smooth_field_3d)
        )
        assert len(reports) == 1
        assert (tmp_path / "run" / MANIFEST_NAME).exists()
        assert reports[0].compression_ratio > 1
        store = repro.open_store(tmp_path / "run", CodecSpec.sz3mr(unit_size=8))
        assert len(store) == 1

    def test_simulation_source_to_dir_sink(self, tmp_path):
        reports = (
            Pipeline(CodecSpec(unit_size=8), ErrorBound.rel(0.02))
            .sink_dir(tmp_path / "v1")
            .run(_simulation(), n_steps=2)
        )
        assert len(reports) == 2
        assert all(r.output_path is not None and r.output_path.exists() for r in reports)

    def test_filter_stage_applies_before_compression(self, smooth_field_3d):
        offset = 5.0
        plain = Pipeline(CodecSpec(unit_size=8), ErrorBound.abs(0.05)).run(smooth_field_3d)
        shifted = (
            Pipeline(CodecSpec(unit_size=8), ErrorBound.abs(0.05))
            .filter(lambda f: f + offset)
            .run(smooth_field_3d)
        )
        # The filter shifted the data fed to compression, so the in-memory
        # reconstruction of the shifted run is ~offset above the plain one.
        mean_plain = plain[0].compressed.levels[0].nbytes_original
        mean_shifted = shifted[0].compressed.levels[0].nbytes_original
        assert mean_plain == mean_shifted  # same geometry...
        psnr_delta = abs(plain[0].psnr - shifted[0].psnr)
        assert psnr_delta < 5.0  # ...and comparable quality against the filtered field

    def test_serializable_roundtrip_through_config(self, tmp_path):
        pipe = (
            Pipeline(CodecSpec.sz3mr(unit_size=8), ErrorBound.rel(0.02))
            .roi(0.4, 8)
            .workers(2)
            .sink_store(tmp_path / "run")
        )
        config = pipe.to_config(
            n_steps=2,
            source={"kind": "simulation", "name": "collapse", "shape": [16, 16, 16],
                    "block_size": 8, "seed": "api-pipe"},
        )
        again = PipelineConfig.from_dict(config.to_dict())
        assert again == config
        reports = Pipeline.from_config(again).run()
        assert len(reports) == 2

    def test_filters_are_not_serializable(self):
        pipe = Pipeline().filter(lambda f: f)
        with pytest.raises(ValueError, match="not serializable"):
            pipe.to_config()

    def test_run_without_source_raises(self):
        with pytest.raises(ValueError, match="no source"):
            Pipeline().run()

    def test_per_run_bound_override_does_not_leak(self, smooth_field_3d):
        pipe = Pipeline(CodecSpec(unit_size=8), ErrorBound.abs(0.01))
        loose = pipe.run(smooth_field_3d, error_bound=ErrorBound.abs(0.5))
        configured = pipe.run(smooth_field_3d)
        # The second run must use the builder's configured bound again.
        assert configured[0].compressed.error_bound == pytest.approx(0.01)
        assert loose[0].compressed.error_bound == pytest.approx(0.5)

    def test_insitu_from_config_delegates_to_builder(self, tmp_path):
        config = PipelineConfig(
            codec=CodecSpec(unit_size=8),
            sink={"kind": "dir", "path": str(tmp_path / "v1")},
        )
        engine = InSituPipeline.from_config(config)
        assert engine.output_dir == tmp_path / "v1"
        assert engine.store is None

    def test_builder_matches_direct_insitu_pipeline(self, tmp_path):
        """The builder is a thin adapter: same steps, same CR/PSNR."""
        spec = CodecSpec.sz3mr(unit_size=8)
        eb = ErrorBound.rel(0.02)
        built = (
            Pipeline(spec, eb).roi(0.5, 8).sink_dir(tmp_path / "a").run(_simulation(), 2)
        )
        direct_engine = InSituPipeline(
            spec.build(), output_dir=tmp_path / "b", roi_fraction=0.5, roi_block_size=8
        )
        direct = direct_engine.run(_simulation(), 2, eb)
        for b, d in zip(built, direct):
            assert b.compression_ratio == pytest.approx(d.compression_ratio)
            assert b.psnr == pytest.approx(d.psnr)


class TestFacade:
    def test_compress_decompress_roundtrip(self, smooth_field_3d):
        compressed = repro.compress(smooth_field_3d, ErrorBound.rel(0.01), codec="zfp")
        recon = repro.decompress(compressed)
        value_range = smooth_field_3d.max() - smooth_field_3d.min()
        assert np.abs(recon - smooth_field_3d).max() <= 0.01 * value_range * (1 + 1e-9)

    def test_decompress_accepts_bytes_and_paths(self, tmp_path, smooth_field_2d):
        from repro.insitu.io import write_compressed_array

        compressed = repro.compress(smooth_field_2d, 0.05)
        assert np.allclose(repro.decompress(compressed.to_bytes()),
                           repro.decompress(compressed))
        path = tmp_path / "f.rpca"
        write_compressed_array(path, compressed)
        assert np.allclose(repro.decompress(path), repro.decompress(compressed))

    def test_run_workflow_accepts_overrides(self, smooth_field_3d):
        result = repro.run_workflow(
            smooth_field_3d,
            WorkflowConfig(codec=CodecSpec(unit_size=8), postprocess=False),
            error_bound=ErrorBound.rel(0.05),
        )
        value_range = float(smooth_field_3d.max() - smooth_field_3d.min())
        assert result.error_bound == pytest.approx(0.05 * value_range)

    def test_run_workflow_accepts_hierarchy(self, small_hierarchy):
        result = repro.run_workflow(
            small_hierarchy,
            WorkflowConfig(codec=CodecSpec(unit_size=8), postprocess=False,
                           error_bound=ErrorBound.rel(0.05)),
        )
        assert result.compression_ratio > 1

    def test_open_store_rejects_mismatched_codec_on_append(self, tmp_path, smooth_field_3d):
        store = repro.open_store(tmp_path / "s", CodecSpec(unit_size=8))
        store.append("rho", 0, smooth_field_3d, ErrorBound.rel(0.02))
        entry = store.entry("rho", 0)
        value_range = float(smooth_field_3d.max() - smooth_field_3d.min())
        assert entry.error_bound == pytest.approx(0.02 * value_range)

    def test_store_backed_pipeline_spec_mismatch_raises(self, tmp_path):
        store = Store(tmp_path / "s", CodecSpec(unit_size=8).build())
        with pytest.raises(ValueError, match="disagree"):
            InSituPipeline(CodecSpec.sz3mr(unit_size=8).build(), store=store)
