"""Tests for ``repro.obs``: registry semantics, Prometheus rendering, wire
trace propagation, the daemon reader LRU and the logging plumbing.

The rendering test is *golden*: it pins the exact exposition text (names,
label ordering, escaping, cumulative buckets) so a scrape-format regression
cannot hide behind "roughly parses".  The storm test reuses the
``test_cache_concurrency`` harness idiom — worker threads hammer instruments
while a busy monitor samples snapshots mid-interleaving — to prove counters
never lose updates and snapshots stay monotone.  The trace test drives a real
remote read through the session daemon and asserts one trace tree spans both
sides of the wire.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from io import StringIO

import numpy as np
import pytest

from repro.core.mr_compressor import MultiResolutionCompressor
from repro.obs import (
    REGISTRY,
    TRACER,
    MetricsRegistry,
    configure_logging,
    format_trace,
    render_prometheus,
)
from repro.obs.tracing import Tracer, span
from repro.store import Store


# -- registry semantics --------------------------------------------------------


class TestRegistryBasics:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("t_ops_total", "ops")
        g = reg.gauge("t_depth", "depth")
        h = reg.histogram("t_seconds", "time", buckets=(0.1, 1.0))
        c.inc()
        c.inc(2)
        g.set(5)
        g.dec()
        h.observe(0.05)
        h.observe(0.5)
        h.observe(3.0)
        snap = {f["name"]: f for f in reg.snapshot()}
        assert snap["t_ops_total"]["samples"][0]["value"] == 3
        assert snap["t_depth"]["samples"][0]["value"] == 4
        hist = snap["t_seconds"]["samples"][0]
        assert hist["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(3.55)

    def test_labels_are_interned(self):
        reg = MetricsRegistry()
        c = reg.counter("t_lbl_total", "x", labelnames=("op",))
        assert c.labels(op="read") is c.labels(op="read")
        assert c.labels(op="read") is not c.labels(op="stats")

    def test_counters_reject_negative_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("t_neg_total", "x")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        first = reg.counter("t_dup_total", "x")
        assert reg.counter("t_dup_total", "x") is first
        with pytest.raises(ValueError, match="different type or label"):
            reg.gauge("t_dup_total", "x")
        with pytest.raises(ValueError, match="different type or label"):
            reg.counter("t_dup_total", "x", labelnames=("op",))

    def test_disabled_registry_ignores_mutations(self):
        reg = MetricsRegistry()
        c = reg.counter("t_off_total", "x")
        h = reg.histogram("t_off_seconds", "x")
        reg.enabled = False
        c.inc(10)
        h.observe(0.5)
        reg.enabled = True
        snap = {f["name"]: f for f in reg.snapshot()}
        assert snap["t_off_total"]["samples"][0]["value"] == 0
        assert snap["t_off_seconds"]["samples"][0]["count"] == 0

    def test_collector_families_merge_and_sum(self):
        reg = MetricsRegistry()
        reg.counter("t_m_total", "x", labelnames=("side",)).inc(2, side="a")
        reg.add_collector(
            lambda: [
                {
                    "name": "t_m_total",
                    "type": "counter",
                    "help": "x",
                    "samples": [
                        {"labels": {"side": "a"}, "value": 3},
                        {"labels": {"side": "b"}, "value": 7},
                    ],
                }
            ]
        )
        fam = next(f for f in reg.snapshot() if f["name"] == "t_m_total")
        values = {s["labels"]["side"]: s["value"] for s in fam["samples"]}
        assert values == {"a": 5, "b": 7}

    def test_collector_dies_with_weakref_owner(self):
        class Owner:
            pass

        reg = MetricsRegistry()
        owner = Owner()
        reg.add_collector(
            lambda: [{"name": "t_w_total", "type": "counter", "help": "", "samples": []}],
            owner=owner,
        )
        assert any(f["name"] == "t_w_total" for f in reg.snapshot())
        del owner
        assert not any(f["name"] == "t_w_total" for f in reg.snapshot())


# -- golden Prometheus rendering -----------------------------------------------


class TestPrometheusRendering:
    def test_golden_exposition_text(self):
        reg = MetricsRegistry()
        reqs = reg.counter(
            "demo_requests_total", "Requests served.", labelnames=("op", "status")
        )
        reqs.inc(3, op="read", status="ok")
        reqs.inc(1, op='a\\b"c\nd', status="error")
        reg.gauge("demo_temperature", "Current temperature.").set(-2.5)
        lat = reg.histogram("demo_latency_seconds", "Latency.", buckets=(0.1, 0.5))
        lat.observe(0.05)
        lat.observe(0.3)
        lat.observe(2.0)
        golden = (
            "# HELP demo_latency_seconds Latency.\n"
            "# TYPE demo_latency_seconds histogram\n"
            'demo_latency_seconds_bucket{le="0.1"} 1\n'
            'demo_latency_seconds_bucket{le="0.5"} 2\n'
            'demo_latency_seconds_bucket{le="+Inf"} 3\n'
            "demo_latency_seconds_sum 2.35\n"
            "demo_latency_seconds_count 3\n"
            "# HELP demo_requests_total Requests served.\n"
            "# TYPE demo_requests_total counter\n"
            'demo_requests_total{op="a\\\\b\\"c\\nd",status="error"} 1\n'
            'demo_requests_total{op="read",status="ok"} 3\n'
            "# HELP demo_temperature Current temperature.\n"
            "# TYPE demo_temperature gauge\n"
            "demo_temperature -2.5\n"
        )
        assert render_prometheus(reg.snapshot()) == golden

    def test_every_builtin_family_renders_and_reparses(self):
        # The process-wide registry (with whatever earlier tests observed)
        # must render to lines the exposition grammar accepts.
        text = render_prometheus(REGISTRY.snapshot())
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_part, _, value = line.rpartition(" ")
                assert name_part
                float(value)  # every sample value parses


# -- registry under concurrency ------------------------------------------------


class TestRegistryStorm:
    N_THREADS = 8
    N_INC = 4000

    def test_counters_never_lose_updates_and_stay_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("storm_ops_total", "ops", labelnames=("worker",))
        hist = reg.histogram("storm_op_seconds", "latency", buckets=(0.001, 0.01))
        stop_monitor = threading.Event()
        totals: list = []

        def monitor():
            # Busy sampling on purpose (the cache-storm idiom): the point is
            # to observe snapshot totals *mid-interleaving*; the cap bounds
            # memory if the workers are slow on a loaded machine.
            while not stop_monitor.is_set() and len(totals) < 200_000:
                fam = next(
                    f for f in reg.snapshot() if f["name"] == "storm_ops_total"
                )
                totals.append(sum(s["value"] for s in fam["samples"]))

        monitor_thread = threading.Thread(target=monitor, daemon=True)
        monitor_thread.start()

        def worker(worker_id: int):
            child = counter.labels(worker=str(worker_id))
            for i in range(self.N_INC):
                child.inc()
                hist.observe(0.0001 * (i % 3))

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            list(pool.map(worker, range(self.N_THREADS)))
        stop_monitor.set()
        monitor_thread.join(5.0)

        fam = next(f for f in reg.snapshot() if f["name"] == "storm_ops_total")
        per_worker = {s["labels"]["worker"]: s["value"] for s in fam["samples"]}
        assert per_worker == {str(i): self.N_INC for i in range(self.N_THREADS)}
        hfam = next(f for f in reg.snapshot() if f["name"] == "storm_op_seconds")
        sample = hfam["samples"][0]
        assert sample["count"] == self.N_THREADS * self.N_INC
        assert sample["buckets"]["+Inf"] == self.N_THREADS * self.N_INC
        assert totals, "monitor never sampled during the storm"
        assert all(a <= b for a, b in zip(totals, totals[1:])), (
            "snapshot totals regressed mid-storm"
        )


# -- tracing -------------------------------------------------------------------


class TestTracing:
    def test_span_is_noop_without_ambient_trace(self):
        with span("orphan", blocks=1) as sp:
            assert sp is None

    def test_disabled_tracer_opens_no_roots(self):
        tracer = Tracer()
        with tracer.trace("request") as root:
            assert root is None
        assert len(tracer) == 0

    def test_nested_spans_share_the_trace(self):
        tracer = Tracer().enable()
        with tracer.trace("outer", kind="test") as root:
            with span("inner", blocks=2) as child:
                child.set(extra=1)
        spans = tracer.trace_spans(root.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == root.span_id
        assert by_name["inner"]["attrs"] == {"blocks": 2, "extra": 1}
        assert by_name["outer"]["parent_id"] is None
        assert "inner" in format_trace(spans)

    def test_ring_is_bounded(self):
        tracer = Tracer(max_traces=3).enable()
        for _ in range(10):
            with tracer.trace("r"):
                pass
        assert len(tracer) == 3

    def test_graft_dedupes_by_span_id(self):
        tracer = Tracer().enable()
        with tracer.trace("outer") as root:
            pass
        spans = tracer.trace_spans(root.trace_id)
        tracer.graft(spans)  # in-process: already recorded
        assert len(tracer.trace_spans(root.trace_id)) == len(spans)

    def test_remote_read_trace_spans_both_sides(self, serve_store, remote_store):
        # A cold remote read must yield ONE trace: the client's remote_read
        # root, its encode, the daemon's request span parented on the root,
        # the read path's fetch/decode/paste children, and the server-side
        # send span — all sharing the client-generated, wire-propagated id.
        rng = np.random.default_rng(7)
        field = rng.normal(size=(24, 24)).cumsum(axis=0)
        serve_store.append("obstrace", 0, field, 0.05, overwrite=True)
        TRACER.enable()
        try:
            arr = remote_store["obstrace", 0]
            arr[...]
            match = [
                (tid, spans)
                for tid, spans in TRACER.traces().items()
                if any(
                    s["name"] == "remote_read"
                    and s["attrs"].get("field") == "obstrace"
                    for s in spans
                )
            ]
            assert len(match) == 1, "one remote read must be exactly one trace"
            tid, spans = match[0]
            # The daemon worker records "send" just after sendmsg — possibly
            # a beat after the client already parsed the response.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                spans = TRACER.trace_spans(tid)
                if any(s["name"] == "send" for s in spans):
                    break
                time.sleep(0.01)
            names = {s["name"] for s in spans}
            assert {"remote_read", "encode", "request", "fetch", "decode",
                    "paste", "send"} <= names
            assert all(s["trace_id"] == tid for s in spans)
            by_name = {s["name"]: s for s in spans}
            root = by_name["remote_read"]
            request = by_name["request"]
            assert request["parent_id"] == root["span_id"]
            assert by_name["encode"]["parent_id"] == root["span_id"]
            assert by_name["send"]["parent_id"] == request["span_id"]
            # fetch/decode/paste descend from the request span.
            ids = {s["span_id"]: s for s in spans}
            for name in ("fetch", "decode", "paste"):
                node = by_name[name]
                while node["parent_id"] in ids and node["name"] != "request":
                    node = ids[node["parent_id"]]
                assert node["name"] == "request", f"{name} not under request"
            assert by_name["fetch"]["attrs"]["blocks"] == arr.n_blocks
        finally:
            TRACER.disable()
            TRACER.clear()


# -- daemon reader LRU ---------------------------------------------------------


class TestReaderLRU:
    @pytest.fixture()
    def lru_store(self, tmp_path):
        store = Store(tmp_path / "lru", MultiResolutionCompressor(unit_size=8))
        rng = np.random.default_rng(3)
        for i, name in enumerate(["alpha", "beta", "gamma", "delta"]):
            store.append(name, 0, rng.normal(size=(16, 16)).cumsum(axis=0) + i, 0.05)
        return store

    def test_reader_cache_is_bounded_and_reads_stay_correct(self, lru_store):
        from repro.serve import ReadDaemon, RemoteStore

        daemon = ReadDaemon(lru_store, max_readers=2)
        with daemon:
            with RemoteStore(daemon.address) as client:
                for _ in range(2):  # second pass re-opens evicted readers
                    for name in ["alpha", "beta", "gamma", "delta"]:
                        got = np.asarray(client[name, 0][...])
                        want = np.asarray(lru_store[name, 0][...])
                        assert np.array_equal(got, want)
                        assert daemon.stats()["containers_open"] <= 2
                # A global scrape sums gauges across every daemon in the
                # process (the session fixture included), so assert on this
                # daemon's own collector output.
                snapshot = {f["name"]: f for f in daemon._collect_families()}
        open_readers = snapshot["repro_daemon_open_readers"]["samples"][0]["value"]
        assert 0 < open_readers <= 2
        # Evicted readers fold their fetch counters into the aggregate, so
        # the scraped totals cover all 8 reads, not just the live two.
        decoded = snapshot["repro_store_blocks_decoded_total"]["samples"][0]["value"]
        assert decoded >= sum(lru_store[n, 0].n_blocks for n in
                              ["alpha", "beta", "gamma", "delta"])

    def test_eviction_waits_for_inflight_reads(self, lru_store):
        # A lease pins its reader: retiring mid-read must defer the close
        # until the lease drains, never yank the source out from under it.
        from repro.serve import ReadDaemon

        daemon = ReadDaemon(lru_store, max_readers=1)
        with daemon._lease("alpha", 0) as reader:
            with daemon._lease("beta", 0):  # evicts alpha's slot (max 1)
                pass
            # alpha is retired but still leased: its source must still fetch.
            assert reader.decode_entries([0])[0].shape == (8, 8)
        assert daemon.stats()["containers_open"] == 1


# -- logging -------------------------------------------------------------------


class TestLogging:
    def test_package_root_has_nullhandler(self):
        import repro  # noqa: F401 - import installs the handler

        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_daemon_emits_structured_access_log(self, tmp_path):
        from repro.serve import ReadDaemon, RemoteStore

        store = Store(tmp_path / "logs", MultiResolutionCompressor(unit_size=8))
        store.append("f", 0, np.arange(64.0).reshape(8, 8), 0.05)
        stream = StringIO()
        logger = configure_logging(verbosity=1, json_lines=True, stream=stream)
        try:
            with ReadDaemon(store, slow_ms=0.0) as daemon:
                with RemoteStore(daemon.address) as client:
                    client["f", 0][...]
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        reads = [r for r in records if r["message"] == "request" and r["op"] == "read"]
        assert reads, f"no read access line in {records}"
        line = reads[-1]
        assert line["logger"] == "repro.serve.daemon"
        assert line["status"] == "ok" and line["field"] == "f"
        assert line["blocks_touched"] >= 1 and line["ms"] >= 0
        # slow_ms=0 marks every request slow: the WARNING rides the same data.
        assert any(r["message"] == "slow request" for r in records)

    def test_configure_logging_is_idempotent(self):
        stream = StringIO()
        logger = configure_logging(verbosity=0, stream=stream, logger="repro.t_idem")
        configure_logging(verbosity=0, stream=stream, logger="repro.t_idem")
        ours = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(ours) == 1
        for handler in ours:
            logger.removeHandler(handler)


# -- TimingBreakdown re-base ---------------------------------------------------


class TestTimingBreakdownObs:
    def test_add_feeds_phase_histogram_once(self):
        from repro.utils.timer import TimingBreakdown

        hist = REGISTRY.get("repro_phase_seconds")
        child = hist.labels(phase="t_obs_phase")
        before = child.sample()["count"]
        td = TimingBreakdown()
        td.add("t_obs_phase", 0.25)
        td.add("t_obs_phase", 0.5)
        assert child.sample()["count"] - before == 2
        merged = td.merge(TimingBreakdown())
        # Merging re-groups already-observed durations: no double counting.
        assert child.sample()["count"] - before == 2
        assert merged.as_dict() == {"t_obs_phase": 0.75}
        assert merged.format_table() == td.format_table()
