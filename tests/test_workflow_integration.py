"""Integration tests: the end-to-end workflow facade and cross-module properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import psnr, ssim
from repro.core.workflow import MultiResolutionWorkflow
from repro.datasets import get_dataset
from repro.datasets.synthetic import gaussian_random_field


class TestWorkflowUniform:
    @pytest.fixture(scope="class")
    def result(self):
        ds = get_dataset("warpx", size="tiny")
        wf = MultiResolutionWorkflow(
            compressor="sz3", roi_fraction=0.5, roi_block_size=8, unit_size=8,
            postprocess=True, uncertainty=True,
        )
        value_range = ds.field.max() - ds.field.min()
        return ds, wf.compress_uniform(ds.field, error_bound=0.01 * value_range)

    def test_compression_ratio_positive(self, result):
        _, res = result
        assert res.compression_ratio > 1.0

    def test_roi_attached(self, result):
        _, res = result
        assert res.roi is not None
        assert res.roi.hierarchy.n_levels == 2

    def test_reconstruction_quality(self, result):
        ds, res = result
        assert res.psnr > 25.0
        assert 0.0 < res.ssim <= 1.0
        assert res.decompressed_field.shape == ds.field.shape

    def test_postprocess_not_worse(self, result):
        _, res = result
        assert res.psnr_processed is not None
        assert res.psnr_processed >= res.psnr - 0.5

    def test_uncertainty_model_present(self, result):
        _, res = result
        assert res.uncertainty is not None
        assert res.uncertainty.error_std() >= 0.0

    def test_best_field_prefers_processed(self, result):
        _, res = result
        assert res.best_field is res.processed_field


class TestWorkflowAMR:
    def test_amr_input_path(self):
        ds = get_dataset("nyx-t1", size="tiny")
        wf = MultiResolutionWorkflow(compressor="sz3", unit_size=8, postprocess=False)
        res = wf.compress_hierarchy(ds.hierarchy, error_bound=0.5)
        assert res.roi is None
        assert res.compression_ratio > 1.0
        assert res.psnr > 20.0

    def test_blockwise_codecs_supported(self):
        ds = get_dataset("nyx-t1", size="tiny")
        for codec in ("sz2", "zfp"):
            wf = MultiResolutionWorkflow(compressor=codec, unit_size=8, postprocess=True)
            res = wf.compress_hierarchy(ds.hierarchy, error_bound=0.5)
            assert res.compression_ratio > 1.0
            assert res.psnr_processed >= res.psnr - 0.5

    def test_original_field_reference(self):
        ds = get_dataset("nyx-t1", size="tiny")
        wf = MultiResolutionWorkflow(compressor="sz3", unit_size=8, postprocess=False)
        res = wf.compress_hierarchy(ds.hierarchy, 0.5, original_field=ds.field)
        # PSNR against the original uniform data includes the ROI restriction loss,
        # so it can only be lower than against the hierarchy's own reconstruction.
        res_self = wf.compress_hierarchy(ds.hierarchy, 0.5)
        assert res.psnr <= res_self.psnr + 1e-6


class TestCrossModuleConsistency:
    def test_workflow_matches_manual_pipeline(self):
        """The facade must produce the same compressed stream as calling the
        engine directly with the same configuration."""
        from repro.core.mr_compressor import MultiResolutionCompressor
        from repro.core.roi import extract_roi

        ds = get_dataset("hurricane", size="tiny")
        eb = 0.02 * (ds.field.max() - ds.field.min())

        wf = MultiResolutionWorkflow(
            compressor="sz3", roi_fraction=0.35, roi_block_size=8, unit_size=8,
            postprocess=False,
        )
        res = wf.compress_uniform(ds.field, eb)

        manual_roi = extract_roi(ds.field, roi_fraction=0.35, block_size=8)
        manual = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding="auto",
            adaptive_eb=True, unit_size=8,
        ).compress_hierarchy(manual_roi.hierarchy, eb)
        assert res.compressed.nbytes_compressed == manual.nbytes_compressed

    def test_rate_distortion_monotonicity_full_workflow(self):
        ds = get_dataset("s3d", size="tiny")
        wf = MultiResolutionWorkflow(compressor="sz3", unit_size=8, postprocess=False)
        value_range = ds.field.max() - ds.field.min()
        loose = wf.compress_uniform(ds.field, 0.05 * value_range)
        tight = wf.compress_uniform(ds.field, 0.001 * value_range)
        assert loose.compression_ratio > tight.compression_ratio
        assert loose.psnr < tight.psnr


@settings(max_examples=5, deadline=None)
@given(
    roi_fraction=st.floats(min_value=0.2, max_value=0.8),
    eb_rel=st.floats(min_value=1e-3, max_value=5e-2),
)
def test_property_workflow_roi_cells_error_bounded(roi_fraction, eb_rel):
    """Property: inside the ROI the end-to-end error of the (non post-processed)
    workflow never exceeds the absolute error bound."""
    field = gaussian_random_field((32, 32, 32), spectral_index=-2.5, seed="wf-prop")
    eb = eb_rel * float(field.max() - field.min())
    wf = MultiResolutionWorkflow(
        compressor="sz3", roi_fraction=roi_fraction, roi_block_size=8, unit_size=8,
        postprocess=False,
    )
    res = wf.compress_uniform(field, eb)
    roi_mask = res.roi.roi_mask
    err = np.abs(res.decompressed_field - field)[roi_mask].max()
    assert err <= eb * (1 + 1e-9)
