"""Unit tests for repro.utils.timer, rng and validation."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, seed_from_name
from repro.utils.timer import Timer, TimingBreakdown
from repro.utils.validation import (
    ensure_array,
    ensure_in_range,
    ensure_positive,
    ensure_power_of_two,
    is_power_of_two,
)


class TestTimer:
    def test_context_manager_records_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed > 0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_accumulates(self):
        t = Timer()
        t.start()
        t.stop()
        first = t.elapsed
        t.start()
        t.stop()
        assert t.elapsed >= first


class TestTimingBreakdown:
    def test_phase_context_manager(self):
        tb = TimingBreakdown()
        with tb.phase("compress"):
            sum(range(1000))
        assert "compress" in tb
        assert tb["compress"] > 0

    def test_same_phase_accumulates(self):
        tb = TimingBreakdown()
        tb.add("io", 1.0)
        tb.add("io", 2.0)
        assert tb["io"] == pytest.approx(3.0)
        assert tb.total() == pytest.approx(3.0)

    def test_merge_combines_phases(self):
        a = TimingBreakdown()
        a.add("x", 1.0)
        b = TimingBreakdown()
        b.add("x", 2.0)
        b.add("y", 3.0)
        merged = a.merge(b)
        assert merged["x"] == pytest.approx(3.0)
        assert merged["y"] == pytest.approx(3.0)

    def test_format_table_mentions_total(self):
        tb = TimingBreakdown()
        tb.add("a", 0.5)
        assert "total" in tb.format_table()


class TestRng:
    def test_same_name_same_stream(self):
        a = default_rng("abc").standard_normal(5)
        b = default_rng("abc").standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        a = default_rng("abc").standard_normal(5)
        b = default_rng("abd").standard_normal(5)
        assert not np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_seed_from_name_is_stable(self):
        assert seed_from_name("x") == seed_from_name("x")
        assert seed_from_name("x") != seed_from_name("y")


class TestValidation:
    def test_ensure_array_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_array(np.array([1.0, np.nan]))

    def test_ensure_array_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            ensure_array(np.zeros((2, 2)), ndim=3)

    def test_ensure_array_accepts_ndim_tuple(self):
        out = ensure_array(np.zeros((2, 2)), ndim=(2, 3))
        assert out.shape == (2, 2)

    def test_ensure_positive(self):
        assert ensure_positive(1.5) == 1.5
        with pytest.raises(ValueError):
            ensure_positive(0.0)

    def test_ensure_in_range(self):
        assert ensure_in_range(0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            ensure_in_range(2.0, 0, 1)

    def test_power_of_two(self):
        assert is_power_of_two(8)
        assert not is_power_of_two(6)
        assert ensure_power_of_two(16) == 16
        with pytest.raises(ValueError):
            ensure_power_of_two(12)
        with pytest.raises(ValueError):
            ensure_power_of_two(2, minimum=4)
