"""lock-guard positives: every sanctioned way to touch a guarded attribute.

Pure AST fixture for the golden tests — expected findings: none.
"""

import threading


class Queue:
    def __init__(self):
        # __init__ is exempt: the object is not visible to other threads yet.
        self._lock = threading.Lock()
        self._items = []  # repro: guarded-by(_lock)
        self._closed = False  # repro: guarded-by(_lock)

    def put(self, item):
        with self._lock:
            self._items.append(item)

    def _drain_locked(self):  # repro: holds(_lock)
        items = list(self._items)
        self._items.clear()
        return items

    def drain(self):
        with self._lock:
            return self._drain_locked()

    @property
    def closed(self):
        return self._closed  # repro: unlocked -- racy one-way probe is fine
