"""metrics-hygiene negatives.  Pure AST fixture — parsed, never imported.

Expected findings: five ``metrics-hygiene`` reports.
"""

REGISTRY = None  # stand-in: the rule matches the call shape, not the object


READS = REGISTRY.counter("repro_reads", "Counter missing its _total suffix.")
BAD_NAME = REGISTRY.gauge("Bad_Name", "Name outside the repro_* namespace.")

MIXED = REGISTRY.counter("repro_mixed_total", "Registered as a counter here...")
MIXED_AGAIN = REGISTRY.gauge("repro_mixed_total", "...and as a gauge here.")

DUP_A = REGISTRY.counter("repro_dup_total", "Registered twice in one module.")
DUP_B = REGISTRY.counter("repro_dup_total", "Registered twice in one module.")

REQS = REGISTRY.counter(
    "repro_requests_total", "Labelled counter.", labelnames=("method", "code")
)


def touch():
    # finding: 'verb' is not one of the registered labelnames.
    REQS.labels(verb="GET", code="200").inc()
