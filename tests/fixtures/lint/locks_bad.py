"""lock-guard negatives: guarded attributes touched outside their lock.

Pure AST fixture for the golden tests — parsed by the linter, never imported.
Expected findings: three ``lock-guard`` reports, all on ``self._items``.
"""

import threading


class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # repro: guarded-by(_lock)
        self._closed = False  # repro: guarded-by(_lock)

    def put(self, item):
        self._items.append(item)  # finding: no lock held

    def close(self):
        with self._lock:
            self._closed = True
        self._items.clear()  # finding: the with-block already ended

    def drain(self):
        with self._lock:
            def flush():
                # finding: a closure runs later, possibly on another thread,
                # so the enclosing with-block's lock does not apply.
                return list(self._items)

            return flush
