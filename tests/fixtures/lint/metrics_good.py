"""metrics-hygiene positives.  Pure AST fixture — expected findings: none."""

REGISTRY = None  # stand-in: the rule matches the call shape, not the object


HITS = REGISTRY.counter("repro_fixture_hits_total", "Well-formed counter.")
DEPTH = REGISTRY.gauge("repro_fixture_depth", "Gauges need no suffix.")
LATENCY = REGISTRY.histogram("repro_fixture_seconds", "Histograms neither.")

REQS = REGISTRY.counter(
    "repro_fixture_requests_total", "Labelled counter.", labelnames=("method",)
)


def counter_family(name, help, value, labels=None):
    return {"name": name, "type": "counter", "help": help, "value": value}


def snapshot(hits):
    REQS.labels(method="GET").inc()
    # A collector family for a name the registry also owns is fine as long
    # as the kind agrees: families carry labels per sample, not a label set.
    return [counter_family("repro_fixture_hits_total", "Same name, same kind.", hits)]
