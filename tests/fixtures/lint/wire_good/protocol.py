"""Fixture protocol module with full three-sided coverage. No findings."""

WIRE_OPS = ("ping", "fetch")

_ERROR_TYPES = {
    "ValueError": ValueError,
    "KeyError": KeyError,
}


def register_error_type(cls):
    _ERROR_TYPES[cls.__name__] = cls
    return cls
