"""Fixture dispatchers: full coverage, plus an abstract base that is skipped."""


class GoodDaemon:
    def _dispatch(self, op, payload):
        if op == "ping":
            return {}
        if op == "fetch":
            return self._op_fetch(payload)
        raise ValueError(f"bad op {op!r}")

    def _op_fetch(self, payload):
        if "key" not in payload:
            raise KeyError("key")
        return {"data": payload["key"]}


class AbstractDaemon:
    """Defines ``_dispatch`` but compares no op literals: not a dispatcher."""

    def _dispatch(self, op, payload):
        raise NotImplementedError
