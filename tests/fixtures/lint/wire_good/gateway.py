"""Fixture gateway: every registered error type has an HTTP mapping."""

STATUS_BY_ERROR_TYPE = {
    "ValueError": 400,
    "KeyError": 404,
    "RemoteError": 502,
}
