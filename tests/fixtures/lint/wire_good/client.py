"""Fixture client building every declared op. No findings."""


def request(op_name, key=None):
    if op_name == "ping":
        return {"op": "ping"}
    return {"op": "fetch", "key": key}
