"""API-hygiene negatives.  Pure AST fixture — parsed, never imported.

Expected findings: one ``bare-except``, two ``mutable-default``, two
``deprecated-api``, two ``unclosed-resource``.
"""

import socket


def swallow(fn):
    try:
        return fn()
    except:  # finding: also catches KeyboardInterrupt/SystemExit
        return None


def accumulate(item, bucket=[]):  # finding: default shared across calls
    bucket.append(item)
    return bucket


def tag(item, labels={}):  # finding: default shared across calls
    return {**labels, "item": item}


def legacy_read(store, level):
    data = store.read_level(level)  # finding: deprecated eager-read surface
    return store.compress(data, 1e-3, relative=True)  # finding: deprecated kwarg


def leak_file(path):
    fh = open(path, "rb")  # finding: never closed, never handed off
    return fh.read()


def leak_socket(host, port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # finding: leaks
    sock.connect((host, port))
    return True
