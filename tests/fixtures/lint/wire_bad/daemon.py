"""Fixture dispatcher with coverage holes and an unregistered raise."""


class UnknownBoom(Exception):
    pass


def register_error_type(cls):
    return cls


@register_error_type
class Overloaded(Exception):
    # finding (in gateway.py): registered for the wire, but the gateway's
    # STATUS_BY_ERROR_TYPE table has no entry for it.
    pass


class BadDaemon:
    def _dispatch(self, op, payload):
        # findings: declared ops 'fetch' and 'stats' have no branch, and the
        # 'extra' branch handles an op that was never declared.
        if op == "ping":
            return {}
        if op == "extra":
            return self._op_extra(payload)
        raise ValueError(f"bad op {op!r}")

    def _op_extra(self, payload):
        # finding: UnknownBoom is not in _ERROR_TYPES / register_error_type,
        # so it degrades to the untyped RemoteError fallback client-side.
        raise UnknownBoom("nope")
