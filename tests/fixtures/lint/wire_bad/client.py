"""Fixture client: builds one declared op, skips two, invents one."""


def ping_request():
    return {"op": "ping", "payload": {}}


def rogue_request():
    # finding: 'rogue' is built here but never declared in WIRE_OPS.
    return {"op": "rogue"}
