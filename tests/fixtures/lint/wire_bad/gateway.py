"""Fixture gateway: the status table misses registered error types.

``KeyError`` comes from the ``_ERROR_TYPES`` table and ``Overloaded`` from a
``register_error_type`` decorator; neither has an HTTP mapping here, so both
would degrade to a generic 500 at the gateway.
"""

STATUS_BY_ERROR_TYPE = {
    "ValueError": 400,
}
