"""Fixture protocol module: op vocabulary and error table, with gaps.

The wire rule finds ``WIRE_OPS`` / ``_ERROR_TYPES`` by assignment name, so
this trio lints exactly like the real ``repro.serve`` tree.  Expected
findings across the package: seven ``wire-protocol`` reports.
"""

WIRE_OPS = ("ping", "fetch", "stats")

_ERROR_TYPES = {
    "ValueError": ValueError,
    "KeyError": KeyError,
}


def register_error_type(cls):
    _ERROR_TYPES[cls.__name__] = cls
    return cls
