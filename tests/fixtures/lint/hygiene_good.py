"""API-hygiene positives: every sanctioned shape.  Expected findings: none."""

import socket


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None


def accumulate(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def read_file(path):
    with open(path, "rb") as fh:
        return fh.read()


def checksum(path):
    fh = open(path, "rb")
    try:
        return sum(fh.read())
    finally:
        fh.close()


def connect(address):
    sock = socket.create_connection(address)
    return sock  # returning transfers ownership to the caller


def handoff(address, owner):
    sock = socket.create_connection(address)
    owner.adopt(sock)  # passing to any call transfers ownership
    return True


def deliberate(path):
    # The waiver is load-bearing here: nothing closes or adopts fh.
    fh = open(path, "rb")  # repro: ignore[unclosed-resource] -- fixture: waiver demo
    return fh.name
