"""Tests for the :class:`repro.api.ErrorBound` spec type."""

import json

import numpy as np
import pytest

from repro.api import ERROR_BOUND_MODES, ErrorBound
from repro.compressors import get_compressor


class TestConstruction:
    def test_constructors_set_mode(self):
        assert ErrorBound.abs(1e-3).mode == "abs"
        assert ErrorBound.rel(0.01).mode == "rel"
        assert ErrorBound.ptw_rel(0.01).mode == "ptw_rel"
        assert ErrorBound.psnr(60).mode == "psnr"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown error-bound mode"):
            ErrorBound("relative", 0.01)

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_non_positive_values_rejected(self, value):
        with pytest.raises(ValueError, match="finite and positive"):
            ErrorBound.abs(value)

    def test_roundtrip_through_json(self):
        for mode in ERROR_BOUND_MODES:
            spec = ErrorBound(mode, 0.25)
            again = ErrorBound.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert again == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ErrorBound keys"):
            ErrorBound.from_dict({"mode": "abs", "value": 1.0, "relative": True})


class TestResolution:
    def test_abs_ignores_data(self):
        data = np.linspace(-5.0, 5.0, 100)
        assert ErrorBound.abs(1e-2).resolve(data) == 1e-2

    def test_rel_uses_known_value_range(self):
        data = np.linspace(2.0, 12.0, 50)  # value range exactly 10
        assert ErrorBound.rel(0.01).resolve(data) == pytest.approx(0.1)

    def test_ptw_rel_uses_peak_magnitude(self):
        data = np.array([-8.0, 0.0, 4.0])
        assert ErrorBound.ptw_rel(0.25).resolve(data) == pytest.approx(2.0)

    def test_degenerate_data_falls_back_to_absolute(self):
        flat = np.ones(10)
        assert ErrorBound.rel(1e-3).resolve(flat) == 1e-3
        assert ErrorBound.ptw_rel(1e-3).resolve(np.zeros(10)) == 1e-3

    def test_psnr_target_monotonicity(self):
        data = np.linspace(0.0, 1.0, 64)
        bounds = [ErrorBound.psnr(db).resolve(data) for db in (40, 50, 60, 80, 100)]
        assert all(b > 0 for b in bounds)
        # Tighter quality targets must demand tighter bounds, strictly.
        assert all(hi > lo for hi, lo in zip(bounds, bounds[1:]))

    def test_psnr_target_approximately_achieved(self):
        rng = np.random.default_rng(20260730)
        data = rng.standard_normal((32, 32, 32)).cumsum(axis=0)
        target = 55.0
        result = get_compressor("sz3").roundtrip(data, ErrorBound.psnr(target))
        # The uniform-error model is approximate; the achieved PSNR should
        # land in the target's neighbourhood, not orders of magnitude away.
        assert abs(result.psnr - target) < 12.0

    def test_resolve_range_matches_resolve(self):
        data = np.linspace(-3.0, 7.0, 128)
        for mode, value in (("rel", 0.02), ("ptw_rel", 0.02), ("psnr", 60.0), ("abs", 0.5)):
            spec = ErrorBound(mode, value)
            assert spec.resolve_range(10.0, 7.0) == pytest.approx(spec.resolve(data))


class TestCoercion:
    def test_float_coerces_to_abs(self):
        assert ErrorBound.coerce(1e-3) == ErrorBound.abs(1e-3)

    def test_relative_flag_coerces_to_rel(self):
        assert ErrorBound.coerce(0.01, relative=True) == ErrorBound.rel(0.01)

    def test_dict_coerces_through_from_dict(self):
        assert ErrorBound.coerce({"mode": "psnr", "value": 60}) == ErrorBound.psnr(60)

    def test_spec_passes_through(self):
        spec = ErrorBound.rel(0.01)
        assert ErrorBound.coerce(spec) is spec

    def test_relative_flag_with_spec_rejected(self):
        with pytest.raises(ValueError, match="relative="):
            ErrorBound.coerce(ErrorBound.abs(1.0), relative=True)

    def test_legacy_relative_kwarg_warns_but_works(self, smooth_field_3d):
        codec = get_compressor("sz3")
        with pytest.warns(DeprecationWarning, match="relative="):
            legacy = codec.compress(smooth_field_3d, 0.01, relative=True)
        modern = codec.compress(smooth_field_3d, ErrorBound.rel(0.01))
        assert legacy.error_bound == modern.error_bound

    def test_explicit_relative_false_also_warns(self, smooth_field_3d):
        codec = get_compressor("zfp")
        with pytest.warns(DeprecationWarning):
            legacy = codec.compress(smooth_field_3d, 0.01, relative=False)
        assert legacy.error_bound == 0.01

    def test_unspecified_relative_does_not_warn(self, smooth_field_3d, recwarn):
        get_compressor("sz3").compress(smooth_field_3d, 0.01)
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]


class TestDescribe:
    def test_describe_is_compact(self):
        assert ErrorBound.rel(0.01).describe() == "rel:0.01"
        assert ErrorBound.psnr(60).describe() == "psnr:60dB"
