"""Unit tests for the in-situ pipeline, container I/O and scheduler."""

import numpy as np
import pytest

from repro.amr.simulation import CollapsingDensitySimulation, TravelingPulseSimulation
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor
from repro.compressors import SZ3Compressor
from repro.insitu import (
    InSituPipeline,
    parallel_map,
    read_compressed_array,
    read_compressed_hierarchy,
    write_compressed_array,
    write_compressed_hierarchy,
)


class TestScheduler:
    def test_preserves_order(self):
        items = list(range(20))
        assert parallel_map(lambda x: x * x, items, max_workers=4) == [x * x for x in items]

    def test_serial_path(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3], max_workers=1) == [2, 3, 4]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], max_workers=2)


class TestContainerIO:
    def test_compressed_array_roundtrip(self, tmp_path, smooth_field_3d):
        comp = SZ3Compressor().compress(smooth_field_3d, 1e-3)
        path = tmp_path / "field.rpca"
        nbytes = write_compressed_array(path, comp)
        assert path.stat().st_size == nbytes
        restored = read_compressed_array(path)
        recon = SZ3Compressor().decompress(restored)
        assert np.abs(recon - smooth_field_3d).max() <= 1e-3 * (1 + 1e-9)

    def test_compressed_hierarchy_roundtrip(self, tmp_path, small_hierarchy):
        mrc = SZ3MRCompressor(unit_size=8)
        comp = mrc.compress_hierarchy(small_hierarchy, 0.02)
        path = tmp_path / "snapshot.rpmh"
        write_compressed_hierarchy(path, comp)
        restored = read_compressed_hierarchy(path)
        assert restored.compression_ratio == pytest.approx(comp.compression_ratio, rel=1e-6)
        deco = mrc.decompress_hierarchy(restored, small_hierarchy)
        for orig, new in zip(small_hierarchy.levels, deco.levels):
            assert np.abs(orig.data - new.data)[orig.mask].max() <= 0.02 * (1 + 1e-9)

    def test_bad_file_raises(self, tmp_path):
        path = tmp_path / "junk.rpmh"
        path.write_bytes(b"not a container")
        from repro.compressors.errors import DecompressionError

        with pytest.raises(DecompressionError):
            read_compressed_hierarchy(path)


class TestInSituPipeline:
    def test_amr_simulation_run(self, tmp_path):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        pipeline = InSituPipeline(SZ3MRCompressor(unit_size=8), output_dir=tmp_path)
        reports = pipeline.run(sim, n_steps=2, error_bound=0.2)
        assert len(reports) == 2
        for report in reports:
            assert report.compression_ratio > 1.0
            assert report.psnr is not None and report.psnr > 20
            assert report.output_path is not None and report.output_path.exists()
            assert report.preprocess_time >= 0.0
            assert report.compress_write_time > 0.0

    def test_uniform_simulation_uses_roi(self, tmp_path):
        sim = TravelingPulseSimulation(shape=(16, 16, 64))
        pipeline = InSituPipeline(
            SZ3MRCompressor(unit_size=8),
            output_dir=tmp_path,
            roi_fraction=0.5,
            roi_block_size=8,
        )
        reports = pipeline.run(sim, n_steps=1, error_bound=0.02)
        assert reports[0].compression_ratio > 1.0

    def test_no_output_dir_skips_writing(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        pipeline = InSituPipeline(SZ3MRCompressor(unit_size=8), output_dir=None)
        report = pipeline.run(sim, n_steps=1, error_bound=0.2)[0]
        assert report.output_path is None

    def test_aggregate_timings(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        pipeline = InSituPipeline(SZ3MRCompressor(unit_size=8), compute_quality=False)
        reports = pipeline.run(sim, n_steps=3, error_bound=0.2)
        totals = InSituPipeline.aggregate_timings(reports)
        assert totals["total"] == pytest.approx(
            totals["pre-process"] + totals["compress+write"], rel=1e-6
        )

    def test_parallel_level_encoding_matches_serial(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8, seed=3)
        serial = InSituPipeline(SZ3MRCompressor(unit_size=8), max_workers=1, compute_quality=False)
        parallel = InSituPipeline(SZ3MRCompressor(unit_size=8), max_workers=2, compute_quality=False)
        snap = next(iter(sim.run(1)))
        r1 = serial.process_snapshot(snap, error_bound=0.2)
        r2 = parallel.process_snapshot(snap, error_bound=0.2)
        assert r1.compression_ratio == pytest.approx(r2.compression_ratio, rel=1e-6)

    def test_amric_vs_ours_preprocess_comparison_runs(self):
        """Table IV machinery: both pipelines produce comparable timing phases."""
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8, seed=4)
        snap = next(iter(sim.run(1)))
        ours = InSituPipeline(SZ3MRCompressor(unit_size=8), compute_quality=False)
        amric = InSituPipeline(
            MultiResolutionCompressor(compressor="sz3", arrangement="stack", unit_size=8),
            compute_quality=False,
        )
        for pipe in (ours, amric):
            report = pipe.process_snapshot(snap, error_bound=0.2)
            assert set(report.timings.phases) == {"pre-process", "compress+write"}
