"""Unit tests for repro.utils.morton."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.morton import (
    morton_decode3d,
    morton_encode2d,
    morton_encode3d,
    morton_order,
)


class TestMortonEncode3D:
    def test_origin_is_zero(self):
        assert morton_encode3d(np.array([0]), np.array([0]), np.array([0]))[0] == 0

    def test_known_small_codes(self):
        # Bit interleaving: (1,0,0) -> 1, (0,1,0) -> 2, (0,0,1) -> 4.
        assert morton_encode3d(np.array([1]), np.array([0]), np.array([0]))[0] == 1
        assert morton_encode3d(np.array([0]), np.array([1]), np.array([0]))[0] == 2
        assert morton_encode3d(np.array([0]), np.array([0]), np.array([1]))[0] == 4

    def test_codes_unique_on_grid(self):
        n = 8
        ii, jj, kk = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
        codes = morton_encode3d(ii.ravel(), jj.ravel(), kk.ravel())
        assert len(np.unique(codes)) == n**3

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            morton_encode3d(np.array([-1]), np.array([0]), np.array([0]))

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            morton_encode3d(np.array([1 << 22]), np.array([0]), np.array([0]))


class TestMortonDecode3D:
    @settings(max_examples=50, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=(1 << 21) - 1),
        j=st.integers(min_value=0, max_value=(1 << 21) - 1),
        k=st.integers(min_value=0, max_value=(1 << 21) - 1),
    )
    def test_property_encode_decode_roundtrip(self, i, j, k):
        code = morton_encode3d(np.array([i]), np.array([j]), np.array([k]))
        di, dj, dk = morton_decode3d(code)
        assert (di[0], dj[0], dk[0]) == (i, j, k)


class TestMortonOrder:
    def test_is_a_permutation(self):
        order = morton_order((4, 4, 4))
        assert sorted(order.tolist()) == list(range(64))

    def test_locality_first_eight_form_a_cube(self):
        """The first 8 points of the z-curve on a 4^3 grid are the 2^3 corner cube."""
        order = morton_order((4, 4, 4))
        coords = np.array(np.unravel_index(order[:8], (4, 4, 4))).T
        assert coords.max() <= 1

    def test_2d_encode_unique(self):
        n = 16
        ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        codes = morton_encode2d(ii.ravel(), jj.ravel())
        assert len(np.unique(codes)) == n * n
