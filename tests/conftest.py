"""Shared fixtures for the test suite.

Fields are deliberately small (16-32 cells per axis) so the full suite runs in
well under a minute; the benchmarks use larger grids.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.amr.refinement import build_hierarchy_from_uniform
from repro.datasets.synthetic import gaussian_random_field, smooth_wave_field
from repro.utils.rng import default_rng


# -- runtime lock-order detection (REPRO_LOCKCHECK=1) --------------------------
def _lockcheck_enabled() -> bool:
    return os.environ.get("REPRO_LOCKCHECK", "").strip() in ("1", "true", "yes")


def pytest_configure(config):
    if not _lockcheck_enabled():
        return
    # Import the concurrency-bearing packages first so every lock they create
    # from here on is instrumented; install() swaps a threading proxy into
    # all currently imported repro.* modules.
    import repro.array.cache  # noqa: F401
    import repro.obs.metrics  # noqa: F401
    import repro.obs.tracing  # noqa: F401
    import repro.gateway.daemon  # noqa: F401
    import repro.serve.client  # noqa: F401
    import repro.serve.daemon  # noqa: F401
    import repro.serve.pool  # noqa: F401
    import repro.chaos.proxy  # noqa: F401
    import repro.shard.breaker  # noqa: F401
    import repro.shard.router  # noqa: F401
    import repro.store.catalog  # noqa: F401
    import repro.store.engine  # noqa: F401
    import repro.store.format  # noqa: F401

    from repro.devtools import lockcheck

    lockcheck.install()
    config._repro_lockcheck = True


def pytest_sessionfinish(session, exitstatus):
    if not getattr(session.config, "_repro_lockcheck", False):
        return
    from repro.devtools import lockcheck

    result = lockcheck.report()
    problems = result["cycles"] + result["blocking"]
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    lines = [
        f"REPRO_LOCKCHECK: {result['locks']} locks instrumented, "
        f"{result['edges']} ordering edges, {len(result['cycles'])} cycle(s), "
        f"{len(result['blocking'])} lock-held blocking call(s)"
    ]
    for violation in problems:
        lines.append(f"  {violation}")
    for line in lines:
        if reporter is not None:
            reporter.write_line(line)
        else:
            print(line)
    if problems and session.exitstatus == 0:
        session.exitstatus = 3


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return default_rng("test-suite")


@pytest.fixture(scope="session")
def smooth_field_3d() -> np.ndarray:
    """A smooth, easily compressible 32^3 field."""
    return smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))


@pytest.fixture(scope="session")
def noisy_field_3d() -> np.ndarray:
    """A 32^3 field with structure plus noise (harder to compress)."""
    field = gaussian_random_field((32, 32, 32), spectral_index=-2.5, seed="noisy-3d")
    noise = default_rng("noisy-3d-extra").standard_normal((32, 32, 32))
    return field + 0.05 * noise


@pytest.fixture(scope="session")
def smooth_field_2d() -> np.ndarray:
    return smooth_wave_field((48, 48), frequencies=(2.0, 3.0))


# -- read-daemon fixtures ------------------------------------------------------
# One daemon serves the whole session: the protocol golden tests, the CLI
# --remote tests and the indexing fuzz suite all talk to it, which is itself a
# soak test (one accept loop, many connections, shared cache).  Tests must
# assert on counter *deltas*, never absolutes, and register extra containers
# via ``serve_store.adopt`` under their own field names.


@pytest.fixture(scope="session")
def serve_store(tmp_path_factory, smooth_field_3d, smooth_field_2d, small_hierarchy):
    """A store with 3D, 2D and multi-level entries, shared by serve tests."""
    from repro.core.mr_compressor import MultiResolutionCompressor
    from repro.store import Store

    store = Store(
        tmp_path_factory.mktemp("serve") / "store",
        MultiResolutionCompressor(unit_size=8),
    )
    store.append("density", 0, smooth_field_3d, 0.05)
    store.append("density", 1, smooth_field_3d * 1.5 + 0.25, 0.05)
    store.append("plane", 0, smooth_field_2d, 0.05)
    store.append("amr", 0, small_hierarchy, 0.05)
    return store


@pytest.fixture(scope="session")
def serve_daemon(serve_store):
    """A running ``ReadDaemon`` over :func:`serve_store`, stopped at exit."""
    from repro.serve import ReadDaemon

    daemon = ReadDaemon(serve_store)
    daemon.start()
    yield daemon
    daemon.stop()


@pytest.fixture()
def remote_store(serve_daemon):
    """A fresh client connection per test (the daemon itself is shared)."""
    from repro.serve import RemoteStore

    with RemoteStore(serve_daemon.address) as client:
        yield client


@pytest.fixture(scope="session")
def small_hierarchy(noisy_field_3d) -> "AMRHierarchy":
    """A two-level hierarchy built from the noisy field (fine 25% / coarse 75%)."""
    return build_hierarchy_from_uniform(
        noisy_field_3d, n_levels=2, block_size=8, fractions=[0.25, 0.75]
    )


@pytest.fixture(scope="session")
def three_level_hierarchy(noisy_field_3d) -> "AMRHierarchy":
    """A three-level hierarchy (RT-style 15/31/54 split)."""
    return build_hierarchy_from_uniform(
        noisy_field_3d, n_levels=3, block_size=8, fractions=[0.15, 0.31, 0.54]
    )
