"""Shared fixtures for the test suite.

Fields are deliberately small (16-32 cells per axis) so the full suite runs in
well under a minute; the benchmarks use larger grids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.refinement import build_hierarchy_from_uniform
from repro.datasets.synthetic import gaussian_random_field, smooth_wave_field
from repro.utils.rng import default_rng


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return default_rng("test-suite")


@pytest.fixture(scope="session")
def smooth_field_3d() -> np.ndarray:
    """A smooth, easily compressible 32^3 field."""
    return smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))


@pytest.fixture(scope="session")
def noisy_field_3d() -> np.ndarray:
    """A 32^3 field with structure plus noise (harder to compress)."""
    field = gaussian_random_field((32, 32, 32), spectral_index=-2.5, seed="noisy-3d")
    noise = default_rng("noisy-3d-extra").standard_normal((32, 32, 32))
    return field + 0.05 * noise


@pytest.fixture(scope="session")
def smooth_field_2d() -> np.ndarray:
    return smooth_wave_field((48, 48), frequencies=(2.0, 3.0))


@pytest.fixture(scope="session")
def small_hierarchy(noisy_field_3d) -> "AMRHierarchy":
    """A two-level hierarchy built from the noisy field (fine 25% / coarse 75%)."""
    return build_hierarchy_from_uniform(
        noisy_field_3d, n_levels=2, block_size=8, fractions=[0.25, 0.75]
    )


@pytest.fixture(scope="session")
def three_level_hierarchy(noisy_field_3d) -> "AMRHierarchy":
    """A three-level hierarchy (RT-style 15/31/54 split)."""
    return build_hierarchy_from_uniform(
        noisy_field_3d, n_levels=3, block_size=8, fractions=[0.15, 0.31, 0.54]
    )
