"""Shard fuzz: gateway ≡ router reads ≡ single store ≡ NumPy, live rebalance.

Reuses the seeded index-expression machinery from ``test_array_fuzz`` and
replays it through a three-shard router.  The centrepiece test replays the
matrix, grows the topology to four shards with the copy → switch → prune
live-rebalance sequence mid-run, and keeps replaying through the *same*
client connection — proving reads stay bit-for-bit through a topology
change.

The parity test replays every draw twice per case: once through the router's
socket client, once through the HTTP gateway mounted on that router — so one
seed matrix holds all three remote hops (daemon, router, gateway) bit-for-bit
equal to NumPy, *including* error-type and error-message parity through the
gateway's JSON error envelope.

Entry keys are fixed (field ``fz``, steps ``0..N``) so placement and the
move list are identical for every ``REPRO_FUZZ_SEED``: the seed varies
shapes and index draws, never the topology change under test.  Containers
mirror the 2–3D Morton envelope of the container fuzz; 1–4D indexing is
covered by the pure-view fuzz in ``test_array_fuzz``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from test_array_fuzz import (
    FUZZ_SEED,
    INDICES_PER_CASE,
    build_fuzz_container,
    check_against_numpy,
    random_index,
)

from repro.gateway import GatewayDaemon, HTTPStore
from repro.serve import ReadDaemon, RemoteStore
from repro.shard import RouterDaemon, ShardMap, ShardSpec, plan_for_stores, execute_plan, split_store
from repro.store import Store
from repro.utils.rng import default_rng

N_CASES = 6
FIELD = "fz"
SHARDS = ("s0", "s1", "s2")
JOINER = "s3"


def _fuzz_shape(rng):
    """Mirror the container-fuzz envelope: 2–3D, one axis forced off-grid."""
    ndim = int(rng.integers(2, 4))
    unit = int(rng.integers(3, 7))
    shape = [int(rng.integers(max(2, unit - 1), 4 * unit)) for _ in range(ndim)]
    forced = int(rng.integers(0, ndim))
    if shape[forced] % unit == 0:
        shape[forced] += 1
    return tuple(shape), unit


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Reference store of N fuzz containers, split over three routed shards."""
    root = tmp_path_factory.mktemp("shard-fuzz")
    single = Store(root / "single")
    references = {}
    for case in range(N_CASES):
        rng = default_rng(f"{FUZZ_SEED}:shard:{case}")
        shape, unit = _fuzz_shape(rng)
        path = root / f"fz{case}.rps2"
        references[case] = build_fuzz_container(path, rng, shape, unit)
        single.adopt(FIELD, case, path)

    stores = {name: Store(root / name) for name in SHARDS}
    placement = ShardMap(
        [ShardSpec(name, "0:0", store=str(root / name)) for name in SHARDS]
    )
    split_store(single, placement, stores=stores)
    daemons = {name: ReadDaemon(stores[name]) for name in SHARDS}
    shard_map = ShardMap(
        [
            ShardSpec(name, daemons[name].start(), store=str(root / name))
            for name in SHARDS
        ]
    )
    router = RouterDaemon(shard_map)
    router.start()
    gateway = GatewayDaemon(router.address)
    gateway.start()
    cluster = SimpleNamespace(
        root=root,
        single=single,
        references=references,
        stores=stores,
        daemons=daemons,
        shard_map=shard_map,
        router=router,
        gateway=gateway,
    )
    yield cluster
    gateway.stop()
    router.stop()
    for daemon in cluster.daemons.values():
        daemon.stop()


@pytest.mark.parametrize("case", range(N_CASES))
def test_router_fuzz_parity(case, cluster):
    """Random draws: local view ≡ NumPy ≡ routed remote ≡ HTTP gateway.

    Each drawn index replays through both remote hops, so the gateway's
    extra layer (query-string encoding, octet framing, JSON error
    envelopes) is held to the same oracle — values bit-for-bit, errors
    type- and message-identical.
    """
    reference = cluster.references[case]
    local = cluster.single.array(FIELD, case)
    rng = default_rng(f"{FUZZ_SEED}:shard-replay:{case}")
    label = f"seed={FUZZ_SEED} shard case={case} shape={reference.shape}"
    with RemoteStore(cluster.router.address) as client, HTTPStore(
        cluster.gateway.address
    ) as http_client:
        remote = client.array(FIELD, case)
        via_gateway = http_client.array(FIELD, case)
        assert remote.shape == reference.shape
        assert via_gateway.shape == reference.shape
        for _ in range(INDICES_PER_CASE):
            index = random_index(rng, reference.shape)
            check_against_numpy(local, reference, index, label, remote=remote)
            check_against_numpy(
                local, reference, index, f"{label} [gateway]", remote=via_gateway
            )


def test_live_rebalance_mid_fuzz(cluster, tmp_path):
    """Replay → grow to four shards live → keep replaying, same connection."""
    rngs = {
        case: default_rng(f"{FUZZ_SEED}:shard-rebalance:{case}")
        for case in range(N_CASES)
    }

    def replay(client, draws, tag):
        for case in range(N_CASES):
            reference = cluster.references[case]
            local = cluster.single.array(FIELD, case)
            remote = client.array(FIELD, case)
            label = f"seed={FUZZ_SEED} rebalance[{tag}] case={case}"
            for _ in range(draws):
                check_against_numpy(
                    local, reference, random_index(rngs[case], reference.shape),
                    label, remote=remote,
                )

    joiner_store = Store(tmp_path / JOINER)
    joiner = ReadDaemon(joiner_store)
    cluster.stores[JOINER] = joiner_store
    cluster.daemons[JOINER] = joiner  # module teardown stops it
    old = cluster.shard_map
    new = ShardMap(
        list(old.shards)
        + [ShardSpec(JOINER, joiner.start(), store=str(joiner_store.root))]
    )

    with RemoteStore(cluster.router.address) as client:
        replay(client, 2, "before")

        plan = plan_for_stores(old, new, stores=cluster.stores)
        # Placement hashes only (field, step); with keys fixed the joiner is
        # guaranteed work regardless of REPRO_FUZZ_SEED.
        assert len(plan) >= 1
        assert all(move.dest == JOINER for move in plan)
        result = execute_plan(plan, old, new, stores=cluster.stores, router=cluster.router)
        assert result == {"moves": len(plan), "copied": len(plan), "pruned": len(plan)}

        # Data moved for real: the joiner owns exactly the planned entries and
        # the sources dropped theirs.
        assert sorted(e.key for e in joiner_store.entries()) == sorted(
            move.key for move in plan
        )
        for name in SHARDS:
            for entry in cluster.stores[name].entries():
                assert new.owner_name(entry.field, entry.step) == name

        # The same client keeps reading through the switch: the replay below
        # routes at least the moved entries to the brand-new shard.
        replay(client, 2, "after")
        for case in range(N_CASES):
            whole = np.asarray(client.array(FIELD, case)[...])
            assert np.array_equal(whole, cluster.references[case]), case

        # And the router's merged stats now carry the joiner.
        stats = client.stats()
        assert JOINER in stats["shards"]
        assert stats["shards"][JOINER]["reads"] >= 1
