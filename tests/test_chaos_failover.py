"""Chaos tier: the fuzz matrix through a replicated cluster under injected faults.

A three-shard cluster with ``replicas=2`` — every entry lives on two shards —
where each shard daemon sits behind a :class:`~repro.chaos.ChaosProxy`.  The
proxies inject transport faults (refused dials, mid-frame disconnects, byte
corruption, hangs) from schedules seeded off ``REPRO_FUZZ_SEED``, so a
failing run replays exactly by exporting the same seed.

The invariant under test is absolute, not probabilistic: **every read is
bit-identical to the NumPy oracle or a typed error, and every call returns
within a bounded wall clock — never a hang, never silently wrong data.**
Corruption in particular must *never* reach a client: the payload checksum
turns a corrupting shard into a transport failure the router fails over.

Entry keys are fixed (field ``cz``, steps ``0..N``) so placement is the same
for every seed: shard ``s2`` sits in **every** replica set (and is primary
for two entries), which makes it the designated victim — killing it
exercises failover on all four entries while the cluster stays available.
"""

from __future__ import annotations

import contextlib
import time
from types import SimpleNamespace

import numpy as np
import pytest
from test_array_fuzz import (
    FUZZ_SEED,
    INDICES_PER_CASE,
    build_fuzz_container,
    random_index,
)

from repro.chaos import ChaosProxy, ChaosSchedule
from repro.serve import ReadDaemon, RemoteStore
from repro.serve.protocol import ProtocolError
from repro.shard import (
    BreakerOpenError,
    RouterDaemon,
    ShardError,
    ShardMap,
    ShardSpec,
    split_store,
)
from repro.store import Store
from repro.utils.rng import default_rng

N_CASES = 4
FIELD = "cz"
SHARDS = ("s0", "s1", "s2")
VICTIM = "s2"  # in every replica set for field "cz" steps 0..3 (see docstring)

#: Transport-class errors the router may type a faulted read with.  Anything
#: else escaping a read under chaos is a bug.
TYPED_TRANSPORT = (ShardError, BreakerOpenError, ProtocolError)

#: Per-call wall-clock ceiling.  The router's backend timeout below is 1.5 s,
#: so even a read that rides out a hung replica and fails over stays well
#: under this; hitting it means something genuinely hung.
DEADLINE = 10.0


def _fuzz_shape(rng):
    ndim = int(rng.integers(2, 4))
    unit = int(rng.integers(3, 7))
    shape = [int(rng.integers(max(2, unit - 1), 4 * unit)) for _ in range(ndim)]
    forced = int(rng.integers(0, ndim))
    if shape[forced] % unit == 0:
        shape[forced] += 1
    return tuple(shape), unit


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Reference store + an R=2 split of it across three shard stores on disk."""
    root = tmp_path_factory.mktemp("chaos-fuzz")
    single = Store(root / "single")
    references = {}
    for case in range(N_CASES):
        rng = default_rng(f"{FUZZ_SEED}:chaos:{case}")
        shape, unit = _fuzz_shape(rng)
        path = root / f"cz{case}.rps2"
        references[case] = build_fuzz_container(path, rng, shape, unit)
        single.adopt(FIELD, case, path)

    roots = {name: root / name for name in SHARDS}
    stores = {name: Store(roots[name]) for name in SHARDS}
    placement = ShardMap(
        [ShardSpec(name, "0:0", store=str(roots[name])) for name in SHARDS],
        replicas=2,
    )
    split_store(single, placement, stores=stores)
    # The fixture's premise: with keys fixed, the victim is in every replica
    # set, so every entry's failover path is exercised when it dies.
    for case in range(N_CASES):
        assert VICTIM in placement.owner_names(FIELD, case)
    return SimpleNamespace(
        single=single, references=references, roots=roots, placement=placement
    )


@contextlib.contextmanager
def serving(corpus, schedules=None, breaker_threshold=2):
    """Daemons behind chaos proxies behind one replicated router.

    ``schedules`` maps shard name -> :class:`ChaosSchedule` (missing shards
    pass traffic through).  The router is tuned for bounded failure: 1.5 s
    backend timeout (a hung replica costs that, not 30 s), no connect
    retries (a dead proxy fails over immediately), 0.2 s breaker cooldown
    and a 0.1 s prober so recovery happens within a test's patience.
    """
    schedules = schedules or {}
    daemons, proxies = {}, {}
    router = None
    try:
        for name in SHARDS:
            daemons[name] = ReadDaemon(Store(corpus.roots[name]))
            proxies[name] = ChaosProxy(
                daemons[name].start(), schedule=schedules.get(name), timeout=1.5
            )
            proxies[name].start()
        shard_map = ShardMap(
            [
                ShardSpec(name, proxies[name].address, store=str(corpus.roots[name]))
                for name in SHARDS
            ],
            replicas=2,
        )
        router = RouterDaemon(
            shard_map,
            timeout=1.5,
            retries=0,
            backoff=0.01,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=0.2,
            probe_interval=0.1,
        )
        router.start()
        yield SimpleNamespace(
            daemons=daemons, proxies=proxies, router=router, shard_map=shard_map
        )
    finally:
        if router is not None:
            router.stop()
        for proxy in proxies.values():
            proxy.stop()
        for daemon in daemons.values():
            daemon.stop()


def chaos_check(remote, reference, index, label, strict=False):
    """One draw: bit-identical, expected app error, or typed transport error.

    Returns ``"value"`` / ``"app"`` / ``"transport"``.  ``strict`` forbids
    the transport outcome (for phases where the cluster should mask every
    fault).  Any outcome past :data:`DEADLINE` fails — that is the hang the
    chaos tier exists to rule out.
    """
    expected_error = None
    try:
        expected = reference[index]
        if np.asarray(expected).size == 0:
            expected_error = ValueError
    except IndexError:
        expected_error = IndexError
    started = time.perf_counter()
    try:
        got = np.asarray(remote[index])
        outcome, payload = "value", got
    except TYPED_TRANSPORT as exc:
        outcome, payload = "transport", exc
    except (IndexError, ValueError) as exc:
        outcome, payload = "app", type(exc)
    elapsed = time.perf_counter() - started
    assert elapsed < DEADLINE, f"{label}: {index!r} took {elapsed:.1f}s — a hang"
    if outcome == "value":
        assert expected_error is None, (
            f"{label}: expected {expected_error.__name__} for {index!r}, got data"
        )
        want = np.asarray(expected)
        assert payload.shape == want.shape, f"{label}: shape for {index!r}"
        assert np.array_equal(payload, want), (
            f"{label}: values diverged for {index!r} — a fault leaked "
            "corrupt data past the checksum"
        )
    elif outcome == "app":
        assert payload is expected_error, f"{label}: wrong error for {index!r}"
    elif strict:
        pytest.fail(f"{label}: unexpected transport error for {index!r}: {payload}")
    return outcome


def replay_matrix(cluster, corpus, tag, strict=False, draws=INDICES_PER_CASE):
    """Replay the seeded index matrix once; returns outcome counts."""
    outcomes = {"value": 0, "app": 0, "transport": 0}
    with RemoteStore(cluster.router.address, timeout=30.0) as client:
        for case in range(N_CASES):
            reference = corpus.references[case]
            rng = default_rng(f"{FUZZ_SEED}:chaos-replay:{tag}:{case}")
            label = f"seed={FUZZ_SEED} chaos[{tag}] case={case}"
            try:
                remote = client.array(FIELD, case)
            except TYPED_TRANSPORT:
                if strict:
                    raise
                outcomes["transport"] += draws
                continue
            for _ in range(draws):
                index = random_index(rng, reference.shape)
                outcomes[chaos_check(remote, reference, index, label, strict)] += 1
    return outcomes


def test_steady_state_replica_parity(corpus):
    """No faults: an R=2 cluster behind pass-through proxies is bit-exact."""
    with serving(corpus) as cluster:
        outcomes = replay_matrix(cluster, corpus, "steady", strict=True)
        assert outcomes["transport"] == 0
        assert outcomes["value"] > 0
        health = cluster.router.health()
        assert health["ok"] and health["degraded"] == []


def test_fuzz_matrix_through_scripted_faults(corpus):
    """The centrepiece: scripted disconnect/corrupt/refuse on the victim.

    The victim's proxy cycles through a fault script while the full matrix
    replays twice.  Every draw must come back bit-identical or typed within
    the deadline; the router's failover/backend-error counters prove the
    faults really fired rather than the schedule missing traffic.
    """
    # Pooled backend connections are long-lived, so each *fault* kills one
    # connection and the redial draws the next script entry; leading with
    # faults guarantees the cycle advances (an all-pass prefix would park the
    # pool on one healthy connection forever).
    schedule = ChaosSchedule(
        ["disconnect", "corrupt", "refuse", "pass", "corrupt", "delay"],
        seed=f"{FUZZ_SEED}:chaos-script",
        max_offset=256,
    )
    with serving(corpus, schedules={VICTIM: schedule}) as cluster:
        for round_ in range(2):
            replay_matrix(cluster, corpus, f"script:{round_}")
        stats = cluster.router.stats()
        faults = cluster.proxies[VICTIM].stats()["faults"]
        assert sum(n for f, n in faults.items() if f != "pass") >= 1, faults
        assert stats["failovers"] + stats["backend_errors"] >= 1
        # The survivors never tripped: fault injection stayed on the victim.
        for name in SHARDS:
            if name != VICTIM:
                assert stats["breakers"][name]["trips"] == 0


def test_mid_run_kill_failover_and_recovery(corpus):
    """Kill the victim's proxy mid-replay; reads keep answering; it recovers.

    With R=2 and one dead shard the kill must be *invisible* to clients
    (strict parity, no typed errors) — failover masks it.  The breaker
    trips, health degrades without going unhealthy, and once the proxy
    rebinds the prober closes the breaker again with no client traffic
    required.
    """
    with serving(corpus) as cluster:
        replay_matrix(cluster, corpus, "before-kill", strict=True)

        victim_port = int(cluster.proxies[VICTIM].address.rsplit(":", 1)[1])
        upstream = cluster.proxies[VICTIM].upstream
        cluster.proxies[VICTIM].stop()

        outcomes = replay_matrix(cluster, corpus, "after-kill", strict=True)
        assert outcomes["value"] > 0
        stats = cluster.router.stats()
        assert stats["failovers"] >= 1
        assert stats["breakers"][VICTIM]["state"] in ("open", "half_open")
        assert stats["breakers"][VICTIM]["trips"] >= 1
        health = cluster.router.health()
        assert health["ok"], "one dead shard of an R=2 pair must not kill entries"
        assert health["degraded"] == [VICTIM]
        assert health["unreachable"] == []

        # Rebind on the same port; the background prober notices within its
        # 0.1 s interval + 0.2 s cooldown, no reads needed.
        revived = ChaosProxy(upstream, port=victim_port, timeout=1.5)
        cluster.proxies[VICTIM] = revived  # the context manager stops it
        revived.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if cluster.router.health()["degraded"] == []:
                break
            time.sleep(0.05)
        health = cluster.router.health()
        assert health["degraded"] == [], "prober never recovered the revived shard"

        replay_matrix(cluster, corpus, "after-recovery", strict=True)


def test_corrupting_shard_never_serves_corrupt_data(corpus):
    """Every byte the victim relays is corrupted; clients still read clean.

    The payload checksum turns corruption into a typed transport failure at
    the router's backend client, so the only outcomes are failover (clean
    data from the replica) or a typed error — ``chaos_check`` fails the run
    on the first silently-wrong array.
    """
    schedule = ChaosSchedule(
        ["corrupt"], seed=f"{FUZZ_SEED}:chaos-corrupt", max_offset=128
    )
    with serving(corpus, schedules={VICTIM: schedule}) as cluster:
        outcomes = replay_matrix(cluster, corpus, "corrupt")
        assert outcomes["value"] > 0, "failover should still produce data"
        stats = cluster.router.stats()
        assert stats["backend_errors"] >= 1, "corruption never surfaced?"
        corrupted = cluster.proxies[VICTIM].stats()["faults"]["corrupt"]
        assert corrupted >= 1


def test_hung_replica_is_bounded_by_the_backend_timeout(corpus):
    """An accept-then-hang victim costs one backend timeout, not forever.

    Step 1's primary is the victim, so the read *must* ride out the hung
    exchange (1.5 s backend timeout) before failing over — the wall clock
    proves the hang was bounded and the data still arrives bit-exact.
    """
    schedule = ChaosSchedule(["hang"], seed=f"{FUZZ_SEED}:chaos-hang")
    with serving(corpus, schedules={VICTIM: schedule}, breaker_threshold=1) as cluster:
        step = next(
            case
            for case in range(N_CASES)
            if cluster.shard_map.owner_name(FIELD, case) == VICTIM
        )
        with RemoteStore(cluster.router.address, timeout=30.0) as client:
            started = time.perf_counter()
            got = np.asarray(client[FIELD, step][...])
            elapsed = time.perf_counter() - started
        assert elapsed < DEADLINE, f"hung read took {elapsed:.1f}s"
        assert np.array_equal(got, corpus.references[step])
        assert cluster.router.stats()["failovers"] >= 1
