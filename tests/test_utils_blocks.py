"""Unit tests for repro.utils.blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.blocks import (
    assemble_blocks,
    block_index_grid,
    block_reduce_mean,
    block_reduce_range,
    block_view,
    downsample_mean,
    iter_block_slices,
    num_blocks,
    pad_to_multiple,
    upsample_nearest,
    upsample_trilinear,
)


class TestPadToMultiple:
    def test_no_padding_needed_returns_same_object(self):
        data = np.zeros((8, 8, 8))
        assert pad_to_multiple(data, 4) is data

    def test_pads_to_next_multiple(self):
        data = np.ones((5, 7, 9))
        padded = pad_to_multiple(data, 4)
        assert padded.shape == (8, 8, 12)

    def test_edge_mode_replicates_boundary(self):
        data = np.arange(6, dtype=float)
        padded = pad_to_multiple(data, 4)
        assert padded.shape == (8,)
        assert padded[-1] == data[-1]
        assert padded[-2] == data[-1]

    def test_per_axis_block_size(self):
        data = np.zeros((5, 6))
        padded = pad_to_multiple(data, (4, 3))
        assert padded.shape == (8, 6)

    def test_invalid_block_size_raises(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.zeros((4, 4)), 0)


class TestBlockView:
    def test_roundtrip_3d(self):
        data = np.arange(4 * 4 * 8, dtype=float).reshape(4, 4, 8)
        bv = block_view(data, (2, 2, 4))
        assert bv.shape == (2, 2, 2, 2, 2, 4)
        restored = assemble_blocks(bv)
        np.testing.assert_array_equal(restored, data)

    def test_blocks_contain_correct_values(self):
        data = np.arange(16, dtype=float).reshape(4, 4)
        bv = block_view(data, 2)
        np.testing.assert_array_equal(bv[0, 0], data[:2, :2])
        np.testing.assert_array_equal(bv[1, 1], data[2:, 2:])

    def test_non_divisible_shape_raises(self):
        with pytest.raises(ValueError):
            block_view(np.zeros((5, 4)), 4)

    def test_assemble_with_crop(self):
        data = np.arange(5 * 6, dtype=float).reshape(5, 6)
        padded = pad_to_multiple(data, 4)
        bv = block_view(padded, 4)
        restored = assemble_blocks(bv, out_shape=data.shape)
        np.testing.assert_array_equal(restored, data)

    def test_assemble_odd_axes_raises(self):
        with pytest.raises(ValueError):
            assemble_blocks(np.zeros((2, 2, 2)))


class TestBlockReductions:
    def test_range_of_constant_blocks_is_zero(self):
        data = np.ones((8, 8))
        np.testing.assert_array_equal(block_reduce_range(data, 4), np.zeros((2, 2)))

    def test_range_detects_varying_block(self):
        data = np.zeros((8, 8))
        data[:4, :4] = np.arange(16).reshape(4, 4)
        ranges = block_reduce_range(data, 4)
        assert ranges[0, 0] == 15
        assert ranges[1, 1] == 0

    def test_mean_matches_numpy(self):
        data = np.arange(64, dtype=float).reshape(8, 8)
        means = block_reduce_mean(data, 4)
        np.testing.assert_allclose(means[0, 0], data[:4, :4].mean())

    def test_num_blocks_ceil_division(self):
        assert num_blocks((5, 8, 9), 4) == (2, 2, 3)

    def test_block_index_grid_covers_all(self):
        grid = block_index_grid((8, 8), 4)
        assert grid.shape == (4, 2)
        assert set(map(tuple, grid)) == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestResampling:
    def test_downsample_mean_averages(self):
        data = np.array([[1.0, 3.0], [5.0, 7.0]])
        np.testing.assert_allclose(downsample_mean(data, 2), [[4.0]])

    def test_upsample_nearest_repeats(self):
        data = np.array([[1.0, 2.0]])
        up = upsample_nearest(data, 2)
        assert up.shape == (2, 4)
        np.testing.assert_array_equal(up[0], [1, 1, 2, 2])

    def test_down_then_up_preserves_mean(self):
        rng = np.random.default_rng(1)
        data = rng.random((8, 8, 8))
        down = downsample_mean(data, 2)
        up = upsample_nearest(down, 2)
        assert up.shape == data.shape
        np.testing.assert_allclose(up.mean(), data.mean(), rtol=1e-12)

    def test_upsample_trilinear_shape(self):
        data = np.random.default_rng(2).random((4, 4, 4))
        up = upsample_trilinear(data, 2)
        assert up.shape == (8, 8, 8)

    def test_upsample_trilinear_explicit_shape(self):
        data = np.random.default_rng(3).random((4, 5, 6))
        up = upsample_trilinear(data, 2, out_shape=(8, 10, 12))
        assert up.shape == (8, 10, 12)


class TestIterBlockSlices:
    def test_covers_whole_domain_once(self):
        shape = (6, 10)
        seen = np.zeros(shape, dtype=int)
        for sl in iter_block_slices(shape, 4):
            seen[sl] += 1
        assert (seen == 1).all()


@settings(max_examples=25, deadline=None)
@given(
    nx=st.integers(min_value=2, max_value=12),
    ny=st.integers(min_value=2, max_value=12),
    b=st.integers(min_value=1, max_value=6),
)
def test_property_pad_block_view_roundtrip(nx, ny, b):
    """pad -> block_view -> assemble -> crop is the identity for any shape."""
    rng = np.random.default_rng(nx * 100 + ny * 10 + b)
    data = rng.random((nx, ny))
    padded = pad_to_multiple(data, b)
    restored = assemble_blocks(block_view(padded, b), out_shape=data.shape)
    np.testing.assert_array_equal(restored, data)
