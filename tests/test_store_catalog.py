"""Tests for the Store catalog: manifest, append-as-you-simulate, queries."""

import json

import numpy as np
import pytest

from repro.amr.simulation import CollapsingDensitySimulation
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor
from repro.insitu import InSituPipeline
from repro.store import CodecEngine, Store

EB = 0.05


@pytest.fixture()
def store(tmp_path):
    return Store(tmp_path / "store", MultiResolutionCompressor(unit_size=8))


class TestCatalog:
    def test_append_and_get(self, store, small_hierarchy):
        entry = store.append("density", 0, small_hierarchy, EB)
        assert entry.key == "density/00000"
        assert entry.compression_ratio > 1.0
        reader = store.get("density", 0)
        for lvl in small_hierarchy.levels:
            recon = reader.as_array(lvl.level)[...]
            assert np.abs(recon - lvl.data)[lvl.mask].max() <= EB * (1 + 1e-9)

    def test_append_uniform_array(self, store, smooth_field_3d):
        store.append("temp", 7, smooth_field_3d, EB)
        recon = store["temp", 7][...]
        assert np.abs(recon - smooth_field_3d).max() <= EB * (1 + 1e-9)

    def test_duplicate_append_needs_overwrite(self, store, smooth_field_3d):
        store.append("temp", 1, smooth_field_3d, EB)
        with pytest.raises(ValueError, match="overwrite"):
            store.append("temp", 1, smooth_field_3d, EB)
        store.append("temp", 1, smooth_field_3d, EB, overwrite=True)
        assert len(store) == 1

    def test_adopt_external_container(self, tmp_path, store, smooth_field_3d):
        # A container written by another store is adopted without re-encoding:
        # the bytes are copied in, the entry metadata comes from its header.
        other = Store(tmp_path / "other", MultiResolutionCompressor(unit_size=8))
        source = other.append("density", 3, smooth_field_3d, EB)
        entry = store.adopt("density", 3, other.root / source.path)
        assert entry.key == "density/00003"
        assert entry.n_blocks == source.n_blocks
        assert entry.error_bound == source.error_bound
        assert (store.root / entry.path).exists()
        assert np.array_equal(
            np.asarray(store["density", 3][...]), np.asarray(other["density", 3][...])
        )
        # The adopted entry survives a reopen like any appended one.
        reopened = Store(store.root)
        assert reopened.entry("density", 3).n_blocks == source.n_blocks

    def test_adopt_in_place_and_overwrite_rules(self, tmp_path, store, smooth_field_3d):
        entry = store.append("temp", 0, smooth_field_3d, EB)
        # Adopting a path already under the root does not copy it.
        readopted = store.adopt("alias", 0, store.root / entry.path)
        assert readopted.path == entry.path
        with pytest.raises(ValueError, match="overwrite"):
            store.adopt("alias", 0, store.root / entry.path)
        store.adopt("alias", 0, store.root / entry.path, overwrite=True)

    def test_refresh_picks_up_external_writer(self, store, smooth_field_3d):
        # Two Store objects on one root model a writer and a reader process.
        writer = Store(store.root, MultiResolutionCompressor(unit_size=8))
        assert store.refresh() is False  # steady state: a stat, no reload
        writer.append("density", 5, smooth_field_3d, EB)
        assert store.refresh() is True
        assert store.entry("density", 5).n_blocks == writer.entry("density", 5).n_blocks
        # An external overwrite replaces the entry row on refresh.
        writer.append("density", 5, smooth_field_3d[:16, :16, :16], EB, overwrite=True)
        assert store.refresh() is True
        assert store["density", 5].shape == (16, 16, 16)
        assert store.refresh() is False

    def test_adopt_rejects_non_container(self, store, tmp_path):
        from repro.compressors.errors import DecompressionError

        junk = tmp_path / "junk.rps2"
        junk.write_bytes(b"not a container")
        with pytest.raises(DecompressionError):
            store.adopt("junk", 0, junk)

    def test_manifest_survives_reopen(self, tmp_path, store, smooth_field_3d, small_hierarchy):
        store.append("temp", 0, smooth_field_3d, EB)
        store.append("temp", 1, smooth_field_3d, EB)
        store.append("density", 4, small_hierarchy, EB)
        reopened = Store(store.root)
        assert len(reopened) == 3
        assert reopened.fields() == ["density", "temp"]
        assert reopened.steps("temp") == [0, 1]
        assert ("density", 4) in reopened
        assert ("density", 5) not in reopened
        recon = reopened["temp", 1][...]
        assert np.abs(recon - smooth_field_3d).max() <= EB * (1 + 1e-9)

    def test_iteration_order(self, store, smooth_field_3d):
        store.append("b", 2, smooth_field_3d, EB)
        store.append("a", 9, smooth_field_3d, EB)
        store.append("b", 1, smooth_field_3d, EB)
        keys = [e.key for e in store]
        assert keys == ["a/00009", "b/00001", "b/00002"]

    def test_missing_entry_raises(self, store):
        with pytest.raises(KeyError, match="no entry"):
            store.get("nope", 0)

    def test_open_does_not_write_manifest(self, tmp_path):
        root = tmp_path / "existing"
        root.mkdir()
        store = Store(root)
        assert len(store) == 0
        assert not (root / "manifest.json").exists()

    def test_corrupt_manifest_raises(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(ValueError, match="manifest"):
            Store(root)

    def test_foreign_manifest_raises(self, tmp_path):
        root = tmp_path / "foreign"
        root.mkdir()
        (root / "manifest.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a store manifest"):
            Store(root)

    def test_roi_through_catalog(self, store, smooth_field_3d):
        store.append("temp", 3, smooth_field_3d, EB)
        roi = store.read_roi("temp", 3, ((0, 8), (8, 16), (0, 8)))
        assert roi.shape == (8, 8, 8)
        assert np.abs(roi - smooth_field_3d[:8, 8:16, :8]).max() <= EB * (1 + 1e-9)

    def test_summary_lists_entries(self, store, smooth_field_3d):
        store.append("temp", 0, smooth_field_3d, EB)
        text = store.summary()
        assert "temp" in text and "1 entries" in text


class TestPipelineIntegration:
    def test_append_as_you_simulate(self, tmp_path):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        store = Store(tmp_path / "run", SZ3MRCompressor(unit_size=8))
        pipeline = InSituPipeline(SZ3MRCompressor(unit_size=8), store=store)
        reports = pipeline.run(sim, n_steps=3, error_bound=0.2)
        assert len(reports) == 3
        assert store.steps(reports[0].field_name) == [r.step for r in reports]
        for report in reports:
            # Store-backed steps keep only the on-disk container.
            assert report.compressed is None
            assert report.compression_ratio > 1.0
            assert report.psnr is not None and report.psnr > 20
            assert report.output_path is not None and report.output_path.exists()
            assert report.compress_write_time > 0.0

    def test_mismatched_store_compressor_rejected(self, tmp_path):
        store = Store(tmp_path / "s", MultiResolutionCompressor(compressor="zfp", unit_size=8))
        with pytest.raises(ValueError, match="disagree"):
            InSituPipeline(SZ3MRCompressor(unit_size=8), store=store)

    def test_store_quality_matches_v1_path(self, tmp_path):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8, seed=5)
        snap = next(iter(sim.run(1)))
        v1 = InSituPipeline(SZ3MRCompressor(unit_size=8))
        store = Store(tmp_path / "s", SZ3MRCompressor(unit_size=8))
        v2 = InSituPipeline(SZ3MRCompressor(unit_size=8), store=store)
        r1 = v1.process_snapshot(snap, error_bound=0.2)
        r2 = v2.process_snapshot(snap, error_bound=0.2)
        # Same codec, same error bound: quality is comparable even though the
        # v2 path compresses each unit block independently.
        assert r2.psnr == pytest.approx(r1.psnr, rel=0.2)

    def test_parallel_engine_store_matches_serial(self, tmp_path, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        serial = Store(tmp_path / "serial", mrc)
        threaded = Store(
            tmp_path / "threaded",
            mrc,
            engine=CodecEngine.from_compressor(mrc, executor="thread", max_workers=4),
        )
        e1 = serial.append("density", 0, small_hierarchy, EB)
        e2 = threaded.append("density", 0, small_hierarchy, EB)
        assert e1.nbytes_compressed == e2.nbytes_compressed
        a = serial["density", 0][...]
        b = threaded["density", 0][...]
        assert np.array_equal(a, b)
