"""Golden tests for the read-daemon wire protocol and its failure modes.

Three layers, in order of trust: pure frame/index codec round trips (no
sockets), hostile-bytes handling against a live daemon (bad magic, version
mismatch, truncation, garbage — a broken client must get a clean error
response, never a hung connection), and the end-to-end client surface against
the shared session daemon fixture.
"""

from __future__ import annotations

import io
import socket
import struct

import numpy as np
import pytest

from repro.serve import ReadDaemon, RemoteStore
from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    VersionMismatch,
    decode_ndarray,
    encode_ndarray,
    error_header,
    index_from_wire,
    index_to_wire,
    pack_frame,
    payload_checksum,
    raise_remote_error,
    read_frame,
    verify_payload,
)


def roundtrip(header, payload=b""):
    return read_frame(io.BytesIO(pack_frame(header, payload)))


class TestFrameCodec:
    def test_header_only_roundtrip(self):
        header, payload = roundtrip({"op": "stats", "n": 3})
        assert header == {"op": "stats", "n": 3}
        assert payload == b""

    def test_header_plus_payload_roundtrip(self):
        blob = bytes(range(256))
        header, payload = roundtrip({"op": "read"}, blob)
        assert payload == blob

    def test_clean_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_multiple_frames_in_one_stream(self):
        stream = io.BytesIO(pack_frame({"a": 1}) + pack_frame({"b": 2}, b"xy"))
        assert read_frame(stream)[0] == {"a": 1}
        assert read_frame(stream) == ({"b": 2}, b"xy")
        assert read_frame(stream) is None

    def test_bad_magic(self):
        blob = b"NOPE" + pack_frame({"op": "stats"})[4:]
        with pytest.raises(ProtocolError, match="bad frame magic"):
            read_frame(io.BytesIO(blob))

    def test_version_mismatch_is_its_own_error(self):
        blob = pack_frame({"op": "stats"}, version=PROTOCOL_VERSION + 1)
        with pytest.raises(VersionMismatch, match="version mismatch"):
            read_frame(io.BytesIO(blob))

    @pytest.mark.parametrize("cut", [1, 8, 12, -1])
    def test_truncated_frame(self, cut):
        blob = pack_frame({"op": "read", "field": "density"}, b"payload")
        with pytest.raises(ProtocolError, match="truncated frame"):
            read_frame(io.BytesIO(blob[:cut]))

    def test_oversized_header_rejected_without_allocation(self):
        head = struct.pack(
            "<4sBIQ", PROTOCOL_MAGIC, PROTOCOL_VERSION, MAX_HEADER_BYTES + 1, 0
        )
        with pytest.raises(ProtocolError, match="caps headers"):
            read_frame(io.BytesIO(head))

    def test_lifted_payload_cap_is_still_bounded(self):
        # A response reader passes max_payload=None, but one flipped bit in
        # the length field must be a typed ProtocolError the failover path
        # can absorb — never an unbounded allocation (MemoryError reached
        # the chaos corruption tier as an unfailoverable router envelope).
        body = b"{}"
        blob = struct.pack(
            "<4sBIQ", PROTOCOL_MAGIC, PROTOCOL_VERSION, len(body), 1 << 56
        ) + body
        with pytest.raises(ProtocolError, match="caps payloads"):
            read_frame(io.BytesIO(blob), max_payload=None)

    def test_corrupt_header_json(self):
        blob = struct.pack("<4sBIQ", PROTOCOL_MAGIC, PROTOCOL_VERSION, 4, 0) + b"{{{{"
        with pytest.raises(ProtocolError, match="corrupt frame header"):
            read_frame(io.BytesIO(blob))

    def test_non_object_header_rejected(self):
        body = b"[1, 2]"
        blob = struct.pack("<4sBIQ", PROTOCOL_MAGIC, PROTOCOL_VERSION, len(body), 0) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(io.BytesIO(blob))


class TestPayloadChecksum:
    def test_checksum_is_stable_and_accepts_memoryviews(self):
        blob = bytes(range(256))
        digest = payload_checksum(blob)
        assert digest == payload_checksum(memoryview(blob))
        assert digest == payload_checksum(np.frombuffer(blob, dtype=np.uint8))
        assert len(digest) == 16  # blake2b digest_size=8, hex

    def test_verify_passes_on_match_and_on_absent_header(self):
        blob = b"payload bytes"
        verify_payload({"status": "ok", "checksum": payload_checksum(blob)}, blob)
        verify_payload({"status": "ok"}, blob)  # pre-checksum daemons
        verify_payload({"status": "ok", "checksum": payload_checksum(b"")}, b"")

    def test_single_flipped_bit_is_a_typed_mismatch(self):
        blob = bytearray(bytes(range(256)))
        header = {"checksum": payload_checksum(bytes(blob))}
        blob[97] ^= 0x01
        with pytest.raises(ProtocolError, match="checksum mismatch"):
            verify_payload(header, bytes(blob))

    def test_read_responses_carry_a_verifiable_checksum(self, serve_daemon):
        with RemoteStore(serve_daemon.address) as client:
            entry = client.entries()[0]
            resp, payload = client.exchange(
                {
                    "op": "read",
                    "field": entry["field"],
                    "step": entry["step"],
                    "index": index_to_wire((Ellipsis,)),
                }
            )
        assert resp["checksum"] == payload_checksum(payload)


class TestNdarrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(24, dtype=np.float64).reshape(2, 3, 4),
            np.array(3.5),  # 0-d stays 0-d
            np.empty((0, 5)),  # empty selections survive
            np.arange(6, dtype=np.int32).reshape(3, 2).T,  # non-contiguous input
        ],
    )
    def test_roundtrip(self, arr):
        meta, payload = encode_ndarray(arr)
        out = decode_ndarray(meta, payload)
        assert out.shape == arr.shape
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)

    def test_size_mismatch_rejected(self):
        meta, payload = encode_ndarray(np.zeros(4))
        with pytest.raises(ProtocolError, match="require"):
            decode_ndarray(meta, payload[:-8])


class TestIndexWire:
    @pytest.mark.parametrize(
        "index",
        [
            (slice(0, 8), slice(None), slice(None, None, 2)),
            (3, 4, 5),
            (-1, Ellipsis),
            (Ellipsis, 0),
            (slice(30, 4, -3), slice(-8, None)),
            5,
            Ellipsis,
            slice(None, None, -1),
        ],
    )
    def test_roundtrip(self, index):
        expected = index if isinstance(index, tuple) else (index,)
        assert index_from_wire(index_to_wire(index)) == expected

    def test_json_safe(self):
        import json

        wire = index_to_wire((np.int64(3), slice(np.int64(1), None), Ellipsis))
        assert json.loads(json.dumps(wire)) == wire

    def test_unsupported_kind_raises_like_local_view(self):
        with pytest.raises(TypeError, match="basic indexing"):
            index_to_wire(([1, 2, 3],))

    def test_bad_wire_elements_rejected(self):
        with pytest.raises(ProtocolError):
            index_from_wire("not-a-list")
        with pytest.raises(ProtocolError):
            index_from_wire([1.5])


class TestErrorTransport:
    @pytest.mark.parametrize(
        "exc", [ValueError("bad bbox"), IndexError("oops"), TypeError("kind")]
    )
    def test_typed_errors_survive(self, exc):
        with pytest.raises(type(exc), match=str(exc)):
            raise_remote_error(error_header(exc))

    def test_key_error_message_unquoted(self):
        header = error_header(KeyError("store has no entry x/00001"))
        assert header["message"] == "store has no entry x/00001"

    def test_unknown_type_becomes_remote_error(self):
        with pytest.raises(RemoteError, match="OSError: disk on fire"):
            raise_remote_error({"error_type": "OSError", "message": "disk on fire"})


# -- hostile bytes against a live daemon ---------------------------------------


def raw_exchange(address, blob, expect_response=True):
    """Send raw bytes to the daemon; return the response frame (or None)."""
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        sock.sendall(blob)
        with sock.makefile("rb") as fh:
            return read_frame(fh)


class TestDaemonHostileBytes:
    def test_version_mismatch_gets_clean_error_response(self, serve_daemon):
        blob = pack_frame({"op": "stats"}, version=PROTOCOL_VERSION + 7)
        header, _ = raw_exchange(serve_daemon.address, blob)
        assert header["status"] == "error"
        assert header["error_type"] == "VersionMismatch"
        assert "version mismatch" in header["message"]

    def test_bad_magic_gets_clean_error_response(self, serve_daemon):
        blob = b"EVIL" + pack_frame({"op": "stats"})[4:]
        header, _ = raw_exchange(serve_daemon.address, blob)
        assert header["status"] == "error"
        assert "bad frame magic" in header["message"]

    def test_truncated_frame_never_hangs_the_client(self, serve_daemon):
        # Send a frame head promising more bytes than we deliver, then shut
        # down the write side: the daemon must answer (truncation error) and
        # close, not wait forever for the missing payload.
        blob = pack_frame({"op": "read", "field": "density"}, b"x" * 64)[:-32]
        host, port = serve_daemon.address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=10.0) as sock:
            sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            with sock.makefile("rb") as fh:
                header, _ = read_frame(fh)
        assert header["status"] == "error"
        assert "truncated frame" in header["message"]

    def test_connection_reusable_after_request_error(self, remote_store):
        # Application errors (unlike framing errors) keep the connection open.
        with pytest.raises(KeyError):
            remote_store.array("no-such-field", 0)
        assert "density" in remote_store.fields()

    def test_oversized_request_payload_is_answered_not_awaited(self, serve_daemon):
        # A frame head claiming a huge payload must get an immediate error
        # response; a daemon that tried to read it would hang this test.
        head = struct.pack(
            "<4sBIQ", PROTOCOL_MAGIC, PROTOCOL_VERSION, 2, 1 << 40
        ) + b"{}"
        header, _ = raw_exchange(serve_daemon.address, head)
        assert header["status"] == "error"
        assert "caps payloads" in header["message"]

    def test_unknown_op_is_a_clean_error(self, serve_daemon):
        header, _ = raw_exchange(serve_daemon.address, pack_frame({"op": "explode"}))
        assert header["status"] == "error"
        assert "unknown operation" in header["message"]

    def test_read_requires_exactly_one_selector(self, serve_daemon):
        both = {"op": "read", "field": "density", "step": 0, "index": [0], "bbox": [[0, 1]]}
        header, _ = raw_exchange(serve_daemon.address, pack_frame(both))
        assert header["status"] == "error" and "exactly one" in header["message"]
        neither = {"op": "read", "field": "density", "step": 0}
        header, _ = raw_exchange(serve_daemon.address, pack_frame(neither))
        assert header["status"] == "error" and "exactly one" in header["message"]


# -- end-to-end client surface -------------------------------------------------


class TestRemoteSurface:
    def test_describe_and_catalog_match_store(self, remote_store, serve_store):
        assert set(serve_store.fields()) <= set(remote_store.fields())
        assert remote_store.steps("density") == serve_store.steps("density")
        described = remote_store.describe("density", 0)
        reader = serve_store.get("density", 0)
        assert described["codec"] == reader.codec
        assert [lvl["level_shape"] for lvl in described["levels"]] == [
            list(info.level_shape) for info in reader.levels
        ]
        entry = next(
            e for e in remote_store.entries() if e["field"] == "density" and e["step"] == 0
        )
        assert entry["n_blocks"] == serve_store.entry("density", 0).n_blocks

    def test_remote_view_mirrors_local_metadata(self, remote_store, serve_store):
        remote = remote_store["amr", 0]
        local = serve_store["amr", 0]
        assert remote.shape == local.shape
        assert remote.dtype == local.dtype
        assert remote.ndim == local.ndim and remote.size == local.size
        assert remote.levels == local.levels
        assert remote.n_blocks == local.n_blocks
        assert len(remote) == len(local)
        assert remote.level(1).shape == local.level(1).shape

    def test_reads_are_bit_for_bit(self, remote_store, serve_store):
        remote = remote_store["density", 1]
        local = serve_store["density", 1]
        for index in [(slice(4, 28), slice(None), slice(None, None, 2)), (0, Ellipsis), (3, 4, 5)]:
            r, l = remote[index], local[index]
            assert np.asarray(r).shape == np.asarray(l).shape
            assert np.array_equal(np.asarray(r), np.asarray(l))
        assert np.array_equal(
            remote.read_roi(((0, 8), (8, 24), (0, 32))),
            local.read_roi(((0, 8), (8, 24), (0, 32))),
        )

    def test_multi_level_reads(self, remote_store, serve_store):
        for level in serve_store["amr", 0].levels:
            assert np.array_equal(
                np.asarray(remote_store["amr", 0].level(level)[...]),
                np.asarray(serve_store["amr", 0].level(level)[...]),
            )

    def test_unknown_level_raises_keyerror(self, remote_store):
        with pytest.raises(KeyError, match="no level 9"):
            remote_store["density", 0].level(9)

    def test_out_of_domain_bbox_message_matches_local(self, remote_store, serve_store):
        with pytest.raises(ValueError) as remote_exc:
            remote_store["density", 0].read_roi(((40, 50), (0, 32), (0, 32)))
        with pytest.raises(ValueError) as local_exc:
            serve_store["density", 0].read_roi(((40, 50), (0, 32), (0, 32)))
        assert str(remote_exc.value) == str(local_exc.value)
        assert "entirely outside the domain" in str(remote_exc.value)

    def test_accounting_and_shared_cache(self, serve_daemon, remote_store):
        before = serve_daemon.stats()
        arr = remote_store["density", 0]
        arr[...]
        mid = serve_daemon.stats()
        decoded_cold = mid["blocks_decoded"] - before["blocks_decoded"]
        assert arr.stats["blocks_touched"] == arr.n_blocks
        # Re-read through a *different* connection: everything is warm.
        with RemoteStore(serve_daemon.address) as other:
            arr2 = other["density", 0]
            arr2[...]
        after = serve_daemon.stats()
        assert after["blocks_decoded"] - mid["blocks_decoded"] == 0
        assert arr2.stats["cache_hits"] == arr2.n_blocks
        assert decoded_cold <= arr.n_blocks
        assert after["reads"] - before["reads"] == 2

    def test_overwrite_append_invalidates_daemon_reader(
        self, serve_daemon, serve_store, remote_store, smooth_field_2d
    ):
        # The daemon caches one reader per entry; an overwrite-append changes
        # the bytes *under the same path*, so serving the old reader (or old
        # cached blocks) would silently return stale data.
        serve_store.append("mutable", 0, smooth_field_2d, 0.05, overwrite=True)
        assert np.array_equal(
            np.asarray(remote_store["mutable", 0][...]),
            np.asarray(serve_store["mutable", 0][...]),
        )
        replacement = smooth_field_2d[:24, :24] * 2.0 + 1.0
        serve_store.append("mutable", 0, replacement, 0.05, overwrite=True)
        remote_after = remote_store["mutable", 0]
        assert remote_after.shape == (24, 24)  # fresh describe, fresh reader
        assert np.array_equal(
            np.asarray(remote_after[...]),
            np.asarray(serve_store["mutable", 0][...]),
        )

    def test_external_writer_overwrite_reaches_remote_reads(
        self, serve_store, remote_store, smooth_field_2d
    ):
        # A *separate Store object* on the same root models the real in-situ
        # case: the writer is another process, so the daemon only sees the
        # change through its per-request manifest refresh.
        from repro.core.mr_compressor import MultiResolutionCompressor
        from repro.store import Store

        writer = Store(serve_store.root, MultiResolutionCompressor(unit_size=8))
        writer.append("external", 0, smooth_field_2d, 0.05, overwrite=True)
        assert np.array_equal(
            np.asarray(remote_store["external", 0][...]),
            np.asarray(writer["external", 0][...]),
        )
        writer.append(
            "external", 0, smooth_field_2d[:24, :24] * 3.0 - 1.0, 0.05, overwrite=True
        )
        remote = remote_store["external", 0]
        assert remote.shape == (24, 24)
        assert np.array_equal(
            np.asarray(remote[...]), np.asarray(writer["external", 0][...])
        )

    def test_scalar_read_returns_numpy_scalar(self, remote_store):
        value = remote_store["density", 0][1, 2, 3]
        assert isinstance(value, np.float64)

    def test_stats_op_shape(self, remote_store):
        stats = remote_store.stats()
        for key in ("requests", "reads", "blocks_decoded", "blocks_touched", "cache"):
            assert key in stats
        assert stats["cache"]["max_blocks"] >= 1

    def test_closed_client_raises_cleanly(self, serve_daemon):
        client = RemoteStore(serve_daemon.address)
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.stats()

    def test_daemon_stop_is_idempotent_and_clean(self, serve_store):
        daemon = ReadDaemon(serve_store)
        addr = daemon.start()
        client = RemoteStore(addr)
        try:
            assert client.fields()
            daemon.stop()
            daemon.stop()  # idempotent
            # The open connection is torn down, not left hanging: the next
            # request fails fast instead of blocking on a dead socket.
            with pytest.raises((ProtocolError, OSError)):
                client.stats()
        finally:
            client.close()
