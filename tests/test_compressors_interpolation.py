"""Unit tests for the SZ3 interpolation engine (and the padding rationale of Figs. 7/8)."""

import numpy as np
import pytest

from repro.compressors.interpolation import (
    build_plan,
    count_extrapolated_points,
    max_interpolation_level,
    predict_step,
)


class TestMaxLevel:
    def test_power_of_two_plus_one(self):
        # 9 = 2^3 + 1 points -> 3 levels, anchors at 0 and 8.
        assert max_interpolation_level((9,)) == 3

    def test_power_of_two(self):
        assert max_interpolation_level((8,)) == 3

    def test_single_point(self):
        assert max_interpolation_level((1,)) == 0

    def test_uses_longest_axis(self):
        assert max_interpolation_level((4, 4, 64)) == max_interpolation_level((64,))


class TestBuildPlan:
    def test_plan_covers_every_point_exactly_once(self):
        """Anchors plus all step targets partition the array."""
        for shape in [(8,), (9,), (7, 5), (6, 9, 4), (16, 16, 48)]:
            plan = build_plan(shape)
            counter = np.zeros(shape, dtype=int)
            counter[plan.anchor] += 1
            for step in plan.steps:
                counter[step.target] += 1
            assert (counter == 1).all(), f"coverage failed for {shape}"

    def test_steps_ordered_coarse_to_fine(self):
        plan = build_plan((33,))
        levels = [s.level for s in plan.steps]
        assert levels == sorted(levels, reverse=True)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            build_plan((0, 4))

    def test_n_targets_matches_view(self):
        shape = (10, 13)
        plan = build_plan(shape)
        data = np.zeros(shape)
        for step in plan.steps:
            assert plan.n_targets(step) == data[step.target].size


class TestPredictStep:
    def test_linear_interpolation_exact_for_linear_data(self):
        """Linear data is predicted exactly at interpolated (non-extrapolated) points."""
        n = 9  # 2^3 + 1 so no extrapolation is needed anywhere
        data = np.linspace(0.0, 8.0, n)
        plan = build_plan((n,))
        recon = data.copy()  # pretend all coarse points are known exactly
        for step in plan.steps:
            pred = predict_step(recon, step, mode="linear")
            np.testing.assert_allclose(pred, data[step.target], atol=1e-12)

    def test_cubic_exact_for_cubic_polynomial(self):
        n = 17
        x = np.linspace(-1, 1, n)
        data = 2 * x**3 - x**2 + 0.5 * x + 3
        plan = build_plan((n,))
        # interior points at the finest level should be perfectly predicted
        step = [s for s in plan.steps if s.level == 1][0]
        pred = predict_step(data, step, mode="cubic")
        target = data[step.target]
        # skip first/last targets which may fall back to linear
        np.testing.assert_allclose(pred[1:-1], target[1:-1], atol=1e-9)

    def test_extrapolation_used_when_upper_neighbour_missing(self):
        """With 8 points (2^3), the point at index 4 is extrapolated from index 0 (Fig. 7)."""
        data = np.arange(8, dtype=float)
        plan = build_plan((8,))
        first_step = plan.steps[0]  # level 3, stride 4, target index 4
        assert first_step.target[0] == slice(4, None, 8)
        pred = predict_step(data, first_step, mode="linear")
        # Only the lower neighbour (index 0) is available -> constant extrapolation.
        assert pred[0] == data[0]

    def test_invalid_mode_raises(self):
        plan = build_plan((8,))
        with pytest.raises(ValueError):
            predict_step(np.zeros(8), plan.steps[0], mode="nearest")


class TestExtrapolationCount:
    def test_padded_axis_needs_no_extrapolation(self):
        """Fig. 7 vs Fig. 8: 8 points need extrapolation, 9 (padded) need none."""
        assert count_extrapolated_points((8,)) > 0
        assert count_extrapolated_points((9,)) == 0

    def test_paper_example_two_of_six_inner_points(self):
        # For a block of 8, the paper counts d5 and d7 (2 inner points) as
        # extrapolated; our counter additionally includes the endpoint d8
        # (which the paper's level-0/1 special-casing predicts from d1), so the
        # total is 3 = 2 inner + 1 endpoint.
        assert count_extrapolated_points((8,)) == 2 + 1

    def test_block_of_16_three_points(self):
        # "If the block size is 16, this sub-optimal prediction affects 3 out
        # of 14 inner points" — plus the endpoint in our counting convention.
        assert count_extrapolated_points((16,)) == 3 + 1

    def test_3d_padded_unit_block(self):
        padded = count_extrapolated_points((17, 17, 128 + 1))
        unpadded = count_extrapolated_points((16, 16, 128))
        assert padded < unpadded
