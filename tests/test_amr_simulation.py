"""Unit tests for the toy in-situ simulations."""

import numpy as np
import pytest

from repro.amr.simulation import (
    CollapsingDensitySimulation,
    SimulationSnapshot,
    TravelingPulseSimulation,
)


class TestCollapsingDensitySimulation:
    def test_snapshots_are_amr(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        snap = next(iter(sim.run(1)))
        assert isinstance(snap, SimulationSnapshot)
        assert snap.is_amr
        assert snap.data.is_valid_partition()

    def test_density_mean_stays_normalised(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8)
        for _ in range(3):
            field = sim.advance()
            assert field.mean() == pytest.approx(1.0, rel=1e-6)
            assert (field > 0).all()

    def test_collapse_increases_contrast(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16), block_size=8, diffusion_sigma=0.0)
        start_std = sim.current_field.std()
        for _ in range(5):
            sim.advance()
        assert sim.current_field.std() > start_std

    def test_level_fractions_follow_configuration(self):
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, fractions=[0.18, 0.82])
        snap = next(iter(sim.run(1)))
        assert snap.data.level_densities()[0] == pytest.approx(0.18, abs=0.06)

    def test_deterministic_given_seed(self):
        a = CollapsingDensitySimulation(shape=(16, 16, 16), seed=7)
        b = CollapsingDensitySimulation(shape=(16, 16, 16), seed=7)
        np.testing.assert_array_equal(a.current_field, b.current_field)

    def test_steps_counted(self):
        sim = CollapsingDensitySimulation(shape=(16, 16, 16))
        reports = list(sim.run(3))
        assert [r.step for r in reports] == [1, 2, 3]


class TestTravelingPulseSimulation:
    def test_snapshots_are_uniform(self):
        sim = TravelingPulseSimulation(shape=(8, 8, 64))
        snap = next(iter(sim.run(1)))
        assert not snap.is_amr
        assert snap.data.shape == (8, 8, 64)

    def test_pulse_moves_forward(self):
        sim = TravelingPulseSimulation(shape=(8, 8, 128), noise_level=0.0)
        before = sim.current_field
        for _ in range(10):
            sim.advance()
        after = sim.current_field
        # centre of energy along z should move towards larger z
        z = np.arange(128)
        centre_before = (np.abs(before).sum(axis=(0, 1)) * z).sum() / np.abs(before).sum()
        centre_after = (np.abs(after).sum(axis=(0, 1)) * z).sum() / np.abs(after).sum()
        assert centre_after > centre_before

    def test_field_concentrated_near_axis(self):
        sim = TravelingPulseSimulation(shape=(16, 16, 64), noise_level=0.0)
        field = np.abs(sim.current_field)
        on_axis = field[7:9, 7:9, :].mean()
        off_axis = field[0:2, 0:2, :].mean()
        assert on_axis > 5 * off_axis

    def test_field_name_propagates(self):
        sim = TravelingPulseSimulation(shape=(8, 8, 32), field_name="Ey")
        assert next(iter(sim.run(1))).field_name == "Ey"
