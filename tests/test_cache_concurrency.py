"""Concurrency stress for ``BlockCache`` and the shared-cache read paths.

A thread pool hammers one cache with interleaved gets/puts/clears while
invariants are sampled *during* the storm (not just at the end): block and
byte caps never exceeded, counters monotone non-decreasing, every returned
array internally consistent with its key.  A second group proves the
read-path property the daemon relies on: many threads reading overlapping
regions through views sharing one cache never corrupt results and, once
warm, never decode again.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.array import BlockCache
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.datasets.synthetic import smooth_wave_field
from repro.store import Store
from repro.utils.rng import default_rng

BLOCK_CELLS = 64  # 64 float64 = 512 bytes per test block


def make_block(key_id: int) -> np.ndarray:
    """A block whose *every* cell encodes its key, so torn reads are visible."""
    return np.full(BLOCK_CELLS, float(key_id), dtype=np.float64)


class TestBlockCacheStorm:
    N_THREADS = 8
    OPS_PER_THREAD = 400

    def test_caps_counters_and_integrity_under_interleaving(self):
        max_blocks, max_bytes = 16, 16 * make_block(0).nbytes
        cache = BlockCache(max_blocks=max_blocks, max_bytes=max_bytes)
        violations: list = []
        stop_monitor = threading.Event()
        samples: list = []

        def monitor():
            # Snapshots are taken under the cache lock (stats does that), so
            # each one is internally consistent; monotonicity must hold
            # across them even while clears run.
            # Busy sampling on purpose: the storm is over in milliseconds and
            # the point is to observe counters *mid-interleaving*; the cap
            # bounds memory if the workers are slow on a loaded machine.
            while not stop_monitor.is_set() and len(samples) < 200_000:
                samples.append(cache.stats)
        monitor_thread = threading.Thread(target=monitor, daemon=True)
        monitor_thread.start()

        def worker(worker_id: int):
            rng = default_rng(f"cache-storm:{worker_id}")
            for op in range(self.OPS_PER_THREAD):
                key_id = int(rng.integers(0, 48))  # 48 keys > 16 slots: churn
                key = ("storm", 0, key_id)
                draw = rng.random()
                if draw < 0.45:
                    block = cache.get(key)
                    if block is not None and not (block == float(key_id)).all():
                        violations.append(f"worker {worker_id}: torn read for {key}")
                elif draw < 0.9:
                    cache.put(key, make_block(key_id))
                else:
                    cache.clear()
                stats = cache.stats
                if stats["size"] > max_blocks:
                    violations.append(f"size cap exceeded: {stats['size']}")
                if stats["nbytes"] > max_bytes and stats["size"] > 1:
                    violations.append(f"byte cap exceeded: {stats['nbytes']}")

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            list(pool.map(worker, range(self.N_THREADS)))
        stop_monitor.set()
        monitor_thread.join(5.0)

        assert not violations, violations[:10]
        assert len(samples) > 10  # the monitor actually observed the storm
        for earlier, later in zip(samples, samples[1:]):
            for counter in ("hits", "misses", "evictions"):
                assert later[counter] >= earlier[counter], (
                    f"{counter} went backwards: {earlier} -> {later}"
                )
        final = cache.stats
        assert final["hits"] + final["misses"] > 0
        assert final["size"] <= max_blocks and final["nbytes"] <= max_bytes

    def test_no_lost_updates_below_capacity(self):
        # Distinct keys, total below both caps, no clears: after the storm
        # every key must be present with exactly its own block — a lost
        # update or byte-accounting drift would show here.
        n_keys = 24
        cache = BlockCache(max_blocks=64, max_bytes=64 * make_block(0).nbytes)

        def worker(worker_id: int):
            rng = default_rng(f"cache-fill:{worker_id}")
            for _ in range(200):
                key_id = int(rng.integers(0, n_keys))
                cache.put(("fill", 0, key_id), make_block(key_id))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))

        assert len(cache) == n_keys
        for key_id in range(n_keys):
            block = cache.get(("fill", 0, key_id))
            assert block is not None and (block == float(key_id)).all()
        stats = cache.stats
        assert stats["evictions"] == 0
        assert stats["nbytes"] == n_keys * make_block(0).nbytes

    def test_clear_keeps_lifetime_counters(self):
        cache = BlockCache(max_blocks=4)
        cache.put("a", make_block(1))
        assert cache.get("a") is not None
        before = cache.stats
        cache.clear()
        after = cache.stats
        assert after["size"] == 0 and after["nbytes"] == 0
        assert after["hits"] == before["hits"] and after["misses"] == before["misses"]

    def test_single_oversized_block_still_caches_alone(self):
        cache = BlockCache(max_blocks=8, max_bytes=100)
        big = np.zeros(1024, dtype=np.float64)
        cache.put("big", big)
        assert len(cache) == 1 and cache.get("big") is not None


class TestSharedCacheReadPath:
    N_READERS = 8

    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        field = smooth_wave_field((32, 32, 32), frequencies=(2.0, 3.0, 1.0))
        store = Store(
            tmp_path_factory.mktemp("cc") / "store",
            MultiResolutionCompressor(unit_size=8),
        )
        store.append("f", 0, field, 0.05)
        return store

    def overlapping_roi(self, reader_id: int):
        # Sliding windows over the same planes: heavy key overlap by design.
        lo = (reader_id * 3) % 8
        return (slice(lo, lo + 24), slice(None), slice(None, None, 2))

    def test_concurrent_overlapping_reads_are_correct(self, store):
        reference = np.asarray(store["f", 0][...])
        store.block_cache.clear()

        def read(reader_id: int):
            view = store["f", 0]  # fresh view per thread, one shared cache
            roi = self.overlapping_roi(reader_id)
            out = []
            for _ in range(5):
                out.append(view[roi])
            return reader_id, out

        with ThreadPoolExecutor(max_workers=self.N_READERS) as pool:
            results = list(pool.map(read, range(self.N_READERS)))
        for reader_id, arrays in results:
            expected = reference[self.overlapping_roi(reader_id)]
            for got in arrays:
                assert np.array_equal(got, expected)
        stats = store.block_cache.stats
        assert stats["size"] <= stats["max_blocks"]
        assert stats["nbytes"] <= stats["max_bytes"]

    def test_warm_cache_never_decodes_again(self, store):
        store.block_cache.clear()
        warmup = store["f", 0]
        warmup[...]  # one serial pass decodes everything once

        def read(reader_id: int):
            view = store["f", 0]
            view[self.overlapping_roi(reader_id)]
            return view.stats["blocks_decoded"]

        with ThreadPoolExecutor(max_workers=self.N_READERS) as pool:
            decoded = list(pool.map(read, range(self.N_READERS)))
        # Each view's reader is fresh, so its decode counter is exactly what
        # that thread paid: nothing, everything was already cached.
        assert decoded == [0] * self.N_READERS
