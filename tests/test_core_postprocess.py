"""Unit tests for error sampling, Bezier post-processing and the uncertainty model."""

import numpy as np
import pytest

from repro.analysis import psnr
from repro.compressors import SZ2Compressor, ZFPCompressor
from repro.core.postprocess import (
    DEFAULT_CANDIDATES,
    PostProcessor,
    bezier_boundary_smooth,
)
from repro.core.sampling import sample_compression_errors
from repro.core.uncertainty import CompressionUncertaintyModel
from repro.datasets import s3d_field, warpx_ez_field


@pytest.fixture(scope="module")
def warpx_small():
    return warpx_ez_field((16, 16, 96), seed="pp-warpx")


@pytest.fixture(scope="module")
def s3d_small():
    return s3d_field((32, 32, 32), seed="pp-s3d")


class TestSampling:
    def test_sampling_rate_respected(self, s3d_small):
        sampled = sample_compression_errors(
            s3d_small, ZFPCompressor(), error_bound=1.0, sampling_rate=0.015
        )
        # On small arrays a single minimum-size sample block may exceed the
        # budget; the fraction must never exceed one such block.
        one_block = np.prod(sampled.block_shape) / s3d_small.size
        assert sampled.sample_fraction <= max(0.015, one_block) + 1e-9
        assert sampled.n_samples > 0

    def test_sampling_rate_respected_at_scale(self):
        """At a larger grid the paper's < 1.5 % budget is honoured exactly."""
        field = s3d_field((64, 64, 64), seed="pp-s3d-big")
        sampled = sample_compression_errors(
            field, ZFPCompressor(), error_bound=5.0, sampling_rate=0.015
        )
        assert sampled.sample_fraction <= 0.015 + 1e-9

    def test_errors_within_bound(self, s3d_small):
        eb = 2.0
        sampled = sample_compression_errors(s3d_small, SZ2Compressor(block_size=4), eb)
        assert sampled.max_abs_error() <= eb * (1 + 1e-9)

    def test_block_shape_multiplier(self, s3d_small):
        # generous budget: the requested multiplier is used as-is
        sampled = sample_compression_errors(
            s3d_small, ZFPCompressor(), 1.0, block_multiplier=3, base_block_size=4,
            sampling_rate=0.2,
        )
        assert sampled.block_shape == (12, 12, 12)

    def test_block_multiplier_shrinks_under_tight_budget(self, s3d_small):
        # tight budget: the multiplier drops towards 2 so the sample stays small
        sampled = sample_compression_errors(
            s3d_small, ZFPCompressor(), 1.0, block_multiplier=3, base_block_size=4,
            sampling_rate=0.015,
        )
        assert sampled.block_shape == (8, 8, 8)

    def test_deterministic_given_seed(self, s3d_small):
        a = sample_compression_errors(s3d_small, ZFPCompressor(), 1.0, seed="same")
        b = sample_compression_errors(s3d_small, ZFPCompressor(), 1.0, seed="same")
        np.testing.assert_array_equal(a.original_blocks, b.original_blocks)

    def test_invalid_arguments(self, s3d_small):
        with pytest.raises(ValueError):
            sample_compression_errors(s3d_small, ZFPCompressor(), 0.0)
        with pytest.raises(ValueError):
            sample_compression_errors(s3d_small, ZFPCompressor(), 1.0, sampling_rate=0.0)


class TestBezierSmooth:
    def test_clamp_never_exceeds_intensity_times_eb(self):
        rng = np.random.default_rng(0)
        data = rng.random((16, 16))
        eb, a = 0.05, 0.4
        out = bezier_boundary_smooth(data, block_size=4, error_bound=eb, intensity=a)
        assert np.abs(out - data).max() <= a * eb * (1 + 1e-12)

    def test_zero_intensity_is_identity(self):
        data = np.random.default_rng(1).random((12, 12, 12))
        out = bezier_boundary_smooth(data, block_size=4, error_bound=0.1, intensity=0.0)
        np.testing.assert_array_equal(out, data)

    def test_only_boundary_points_change(self):
        data = np.random.default_rng(2).random((16,))
        out = bezier_boundary_smooth(data, block_size=4, error_bound=10.0, intensity=1.0)
        changed = np.nonzero(out != data)[0]
        # boundary indices for block size 4 on 16 points: 3,4,7,8,11,12 (15 has no right neighbour... 15 is last)
        assert set(changed) <= {3, 4, 7, 8, 11, 12}

    def test_reduces_blocking_artifact_on_smooth_signal(self):
        """A smooth ramp with a per-block constant approximation has steps at block
        boundaries; Bezier smoothing must bring it closer to the ramp."""
        n = 64
        truth = np.linspace(0, 1, n)
        block = 8
        blocky = np.repeat(truth.reshape(-1, block).mean(axis=1), block)
        eb = float(np.abs(blocky - truth).max())
        smoothed = bezier_boundary_smooth(blocky, block_size=block, error_bound=eb, intensity=0.5)
        assert np.abs(smoothed - truth).sum() < np.abs(blocky - truth).sum()

    def test_per_axis_intensity(self):
        data = np.random.default_rng(3).random((8, 8))
        out = bezier_boundary_smooth(
            data, block_size=4, error_bound=1.0, intensity=[0.5, 0.0]
        )
        # axis 1 disabled: columns 3,4 may change only through axis-0 smoothing of rows 3,4
        untouched_rows = [r for r in range(8) if r not in (3, 4)]
        np.testing.assert_array_equal(out[untouched_rows][:, [1, 2, 5, 6]],
                                      data[untouched_rows][:, [1, 2, 5, 6]])

    def test_invalid_arguments(self):
        data = np.zeros((8, 8))
        with pytest.raises(ValueError):
            bezier_boundary_smooth(data, block_size=1, error_bound=1.0)
        with pytest.raises(ValueError):
            bezier_boundary_smooth(data, block_size=4, error_bound=0.0)
        with pytest.raises(ValueError):
            bezier_boundary_smooth(data, block_size=4, error_bound=1.0, intensity=1.5)
        with pytest.raises(ValueError):
            bezier_boundary_smooth(data, block_size=4, error_bound=1.0, intensity=[0.1])


class TestPostProcessor:
    def test_default_candidates_match_paper(self):
        assert DEFAULT_CANDIDATES["zfp"][0] == pytest.approx(0.005)
        assert DEFAULT_CANDIDATES["zfp"][-1] == pytest.approx(0.05)
        assert DEFAULT_CANDIDATES["sz2"][0] == pytest.approx(0.05)
        assert DEFAULT_CANDIDATES["sz2"][-1] == pytest.approx(0.5)

    def test_plan_selects_valid_intensities(self, warpx_small):
        pp = PostProcessor("zfp")
        value_range = warpx_small.max() - warpx_small.min()
        plan = pp.plan(warpx_small, ZFPCompressor(), error_bound=0.02 * value_range)
        assert len(plan.intensities) == 3
        for a in plan.intensities:
            assert a == 0.0 or a in plan.candidates
        # small test grid: at most one minimum-size sample block
        assert plan.sample_fraction <= 0.1

    def test_postprocess_improves_zfp_psnr(self, warpx_small):
        """Fig. 12 / Table I behaviour: dynamic post-processing improves PSNR."""
        value_range = warpx_small.max() - warpx_small.min()
        eb = 0.03 * value_range
        pp = PostProcessor("zfp")
        deco, processed, plan = pp.process(warpx_small, ZFPCompressor(), eb)
        assert psnr(warpx_small, processed) >= psnr(warpx_small, deco)

    def test_postprocess_improves_sz2_psnr(self, s3d_small):
        value_range = s3d_small.max() - s3d_small.min()
        eb = 0.02 * value_range
        pp = PostProcessor("sz2")
        deco, processed, plan = pp.process(s3d_small, SZ2Compressor(block_size=4), eb)
        assert psnr(s3d_small, processed) >= psnr(s3d_small, deco) - 1e-9

    def test_grid_strategy_not_worse_than_sgd(self, warpx_small):
        value_range = warpx_small.max() - warpx_small.min()
        eb = 0.03 * value_range
        comp = ZFPCompressor()
        sgd_plan = PostProcessor("zfp", strategy="sgd").plan(warpx_small, comp, eb)
        grid_plan = PostProcessor("zfp", strategy="grid").plan(warpx_small, comp, eb)
        assert grid_plan.gain_estimate >= sgd_plan.gain_estimate - 0.05

    def test_apply_respects_overall_error_bound(self, warpx_small):
        value_range = warpx_small.max() - warpx_small.min()
        eb = 0.03 * value_range
        pp = PostProcessor("zfp")
        deco, processed, plan = pp.process(warpx_small, ZFPCompressor(), eb)
        max_a = max(plan.intensities) if plan.intensities else 0.0
        # the processed value may move at most a*eb per axis pass away from the
        # decompressed value, and the decompressed value is within eb of the original
        assert np.abs(processed - warpx_small).max() <= eb * (1 + 3 * max_a) * (1 + 1e-9)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            PostProcessor("jpeg")
        with pytest.raises(ValueError):
            PostProcessor("zfp", strategy="random")
        with pytest.raises(ValueError):
            PostProcessor("zfp", candidates=[])


class TestUncertaintyModel:
    def test_from_sampling_statistics(self, s3d_small):
        model = CompressionUncertaintyModel.from_sampling(
            s3d_small, ZFPCompressor(), error_bound=5.0
        )
        assert model.error_std() >= 0.0
        assert abs(model.error_mean()) <= 5.0

    def test_isovalue_conditioned_std_positive(self, s3d_small):
        model = CompressionUncertaintyModel.from_sampling(
            s3d_small, ZFPCompressor(), error_bound=5.0
        )
        isovalue = float(np.median(s3d_small))
        assert model.isovalue_conditioned_std(isovalue) > 0.0

    def test_crossing_probability_shape(self, s3d_small):
        model = CompressionUncertaintyModel.from_sampling(
            s3d_small, ZFPCompressor(), error_bound=5.0
        )
        deco = ZFPCompressor().roundtrip(s3d_small, 5.0).decompressed
        prob = model.crossing_probability(deco, isovalue=float(np.median(s3d_small)))
        assert prob.shape == tuple(s - 1 for s in s3d_small.shape)
        assert prob.max() <= 1.0

    def test_feature_recovery_runs(self, s3d_small):
        eb = 0.2 * (s3d_small.max() - s3d_small.min())
        model = CompressionUncertaintyModel.from_sampling(s3d_small, ZFPCompressor(), eb)
        deco = ZFPCompressor().roundtrip(s3d_small, eb).decompressed
        rec = model.feature_recovery(s3d_small, deco, isovalue=float(np.median(s3d_small)))
        assert rec.original_cells > 0
        assert 0.0 <= rec.recovery_rate <= 1.0
