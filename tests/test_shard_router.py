"""``RouterDaemon``: protocol parity, merged ops, failures, traces, retry.

One module-scoped cluster — a single reference store split three ways, three
:class:`ReadDaemon` shards and one router — backs most tests; the contract
under test is the ISSUE's headline: ``repro.connect()`` pointed at the
router is bit-for-bit a single-daemon client.
"""

from __future__ import annotations

import socket
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import ReadDaemon, RemoteStore, connect
from repro.shard import (
    BreakerOpenError,
    CircuitBreaker,
    RouterDaemon,
    ShardError,
    ShardMap,
    ShardSpec,
    split_store,
)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory, smooth_field_3d, smooth_field_2d, small_hierarchy):
    """Reference store + the same entries split across three routed shards."""
    from repro.core.mr_compressor import MultiResolutionCompressor
    from repro.store import Store

    root = tmp_path_factory.mktemp("shard-cluster")
    single = Store(root / "single", MultiResolutionCompressor(unit_size=8))
    single.append("density", 0, smooth_field_3d, 0.05)
    single.append("density", 1, smooth_field_3d * 1.5 + 0.25, 0.05)
    single.append("plane", 0, smooth_field_2d, 0.05)
    single.append("amr", 0, small_hierarchy, 0.05)

    placement = ShardMap(
        [ShardSpec(name, "0:0", store=str(root / name)) for name in ("s0", "s1", "s2")]
    )
    split_store(single, placement)
    stores = {name: Store(root / name) for name in placement.names()}
    daemons = {name: ReadDaemon(stores[name]) for name in placement.names()}
    shard_map = ShardMap(
        [
            ShardSpec(name, daemons[name].start(), store=str(root / name))
            for name in placement.names()
        ]
    )
    single_daemon = ReadDaemon(single)
    single_daemon.start()
    router = RouterDaemon(shard_map)
    router.start()
    yield SimpleNamespace(
        single=single,
        single_daemon=single_daemon,
        stores=stores,
        daemons=daemons,
        shard_map=shard_map,
        router=router,
    )
    router.stop()
    single_daemon.stop()
    for daemon in daemons.values():
        daemon.stop()


@pytest.fixture()
def router_client(cluster):
    with RemoteStore(cluster.router.address) as client:
        yield client


def test_split_covers_every_entry_exactly_once(cluster):
    single_keys = {e.key for e in cluster.single.entries()}
    shard_keys = [e.key for store in cluster.stores.values() for e in store.entries()]
    assert sorted(shard_keys) == sorted(single_keys)
    # And each shard holds exactly what the map says it owns.
    for name, store in cluster.stores.items():
        for entry in store.entries():
            assert cluster.shard_map.owner_name(entry.field, entry.step) == name


def test_catalog_merges_shards_into_the_single_store_catalog(cluster, router_client):
    merged = {(e["field"], e["step"]) for e in router_client.entries()}
    assert merged == {(e.field, e.step) for e in cluster.single.entries()}
    assert router_client.fields() == sorted(cluster.single.fields())
    assert len(router_client) == len(cluster.single)


def test_describe_forwards_to_the_owning_shard(cluster, router_client):
    with RemoteStore(cluster.single_daemon.address) as direct:
        for field, step in [("density", 0), ("plane", 0), ("amr", 0)]:
            via_router = router_client.describe(field, step)
            assert via_router == direct.describe(field, step)


def test_read_parity_with_single_daemon(cluster, router_client):
    with RemoteStore(cluster.single_daemon.address) as direct:
        for field, step, index in [
            ("density", 0, np.s_[...]),
            ("density", 1, np.s_[4:20, ::2, -1]),
            ("plane", 0, np.s_[::3, 5]),
            ("amr", 0, np.s_[1:30:4]),
        ]:
            through = np.asarray(router_client[field, step][index])
            straight = np.asarray(direct[field, step][index])
            assert through.dtype == straight.dtype
            assert np.array_equal(through, straight), (field, step, index)


def test_read_accounting_relays_from_the_shard(cluster, router_client):
    arr = router_client["density", 0]
    arr[...]
    # The accounting in the response header is the *shard's* — the router
    # adds none of its own, so cache math keeps working for clients.
    assert arr.stats["blocks_touched"] > 0
    assert arr.stats["blocks_touched"] == (
        arr.stats["blocks_decoded"] + arr.stats["cache_hits"]
    )
    before = arr.stats["blocks_decoded"]
    arr[...]
    assert arr.stats["blocks_decoded"] == before  # warm on the shard


def test_error_relay_preserves_type_and_message(cluster, router_client):
    with RemoteStore(cluster.single_daemon.address) as direct:
        for index in [np.s_[99], np.s_[0:0], (0, 1, 2, 3, 4)]:
            router_err = direct_err = None
            try:
                direct["density", 0][index]
            except Exception as exc:  # noqa: BLE001 - capturing for comparison
                direct_err = exc
            try:
                router_client["density", 0][index]
            except Exception as exc:  # noqa: BLE001
                router_err = exc
            assert direct_err is not None, index
            assert type(router_err) is type(direct_err), index
            assert str(router_err) == str(direct_err), index


def test_missing_entry_is_a_typed_keyerror(router_client):
    with pytest.raises(KeyError, match="store has no entry"):
        router_client.array("no-such-field", 0)


def test_unknown_op_names_the_router(router_client):
    with pytest.raises(ValueError, match="the router serves"):
        router_client.request({"op": "explode"})


def test_stats_merges_counters_and_labels_metrics(cluster, router_client):
    router_client["density", 0][...]
    stats = router_client.stats()
    # Per-shard detail, summed top level, router's own accounting.
    assert set(stats["shards"]) == {"s0", "s1", "s2"}
    assert stats["reads"] == sum(s["reads"] for s in stats["shards"].values())
    assert stats["entries"] == len(cluster.single)
    assert stats["router"]["reads_forwarded"] >= 1
    assert stats["router"]["relay_bytes"] > 0
    # Every process's registry snapshot arrives labeled: shard samples under
    # their shard name, the router's own under shard="router".
    by_name = {fam["name"]: fam for fam in stats["metrics"]}
    router_fam = by_name["repro_router_requests_total"]
    assert {"shard": "router"} in [s["labels"] for s in router_fam["samples"]]
    daemon_fam = by_name["repro_daemon_requests_total"]
    shard_labels = {s["labels"].get("shard") for s in daemon_fam["samples"]}
    assert {"s0", "s1", "s2"} <= shard_labels


def test_stats_render_as_prometheus_with_shard_label(router_client):
    from repro.obs import render_prometheus

    text = render_prometheus(router_client.stats()["metrics"])
    assert 'repro_daemon_requests_total{shard="s0"}' in text or (
        'shard="s0"' in text
    )
    assert 'shard="router"' in text


def test_trace_tree_spans_client_router_and_shard(cluster):
    """One routed read = one trace: client root → router route → shard read."""
    from repro.obs import TRACER

    TRACER.enable()
    try:
        with RemoteStore(cluster.router.address) as client:
            client["density", 1][2:10, 3]
        traces = TRACER.traces()
        spans = max(traces.values(), key=len)  # the routed read's trace
        names = [s["name"] for s in spans]
        assert "remote_read" in names  # client root
        assert "route" in names  # router relay span
        assert names.count("request") >= 2  # router's and the shard's
        route = next(s for s in spans if s["name"] == "route")
        assert route["attrs"]["shard"] in {"s0", "s1", "s2"}
        # Every span in one tree: same trace id, and the shard's request span
        # parents on the router's route span (the graft wired them together).
        assert len({s["trace_id"] for s in spans}) == 1
        shard_request = next(
            s for s in spans if s["name"] == "request" and s["parent_id"] == route["span_id"]
        )
        assert shard_request is not None
        span_ids = [s["span_id"] for s in spans]
        assert len(span_ids) == len(set(span_ids))  # graft deduped
    finally:
        TRACER.disable()
        TRACER.clear()


def test_backend_failure_surfaces_typed_shard_error(tmp_path, cluster):
    """A dead shard answers as ShardError naming the shard, not a hang."""
    from repro.store import Store

    store = Store(tmp_path / "lonely")
    entry = cluster.single.entries()[0]
    store.adopt(entry.field, entry.step, cluster.single.root / entry.path)
    daemon = ReadDaemon(store)
    shard_map = ShardMap([ShardSpec("lonely", daemon.start(), store=str(store.root))])
    router = RouterDaemon(shard_map, retries=0)
    router.start()
    try:
        with RemoteStore(router.address) as client:
            np.asarray(client[entry.field, entry.step][...])  # healthy first
            daemon.stop()
            with pytest.raises(ShardError, match="shard 'lonely'"):
                client[entry.field, entry.step][...]
    finally:
        router.stop()
        daemon.stop()


def test_connect_retry_rides_out_late_bind():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    address = f"127.0.0.1:{port}"

    # Nothing listening: without retries the refusal surfaces immediately.
    with pytest.raises(ConnectionRefusedError):
        connect(address)

    listener = socket.socket()

    def bind_late():
        time.sleep(0.25)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", port))
        listener.listen(1)

    binder = threading.Thread(target=bind_late)
    binder.start()
    try:
        started = time.perf_counter()
        client = connect(address, retries=10, backoff=0.05)
        waited = time.perf_counter() - started
        client.close()
        assert waited >= 0.1  # it genuinely backed off rather than winning a race
    finally:
        binder.join()
        listener.close()


class _FakeClock:
    """A hand-cranked monotonic clock so cooldown tests never sleep."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_only_on_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("s0", threshold=3, cooldown=1.0, clock=clock)
        assert breaker.allow()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        breaker.record_success()  # one good exchange resets the streak
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.record_failure()  # third consecutive: trips
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["trips"] == 1
        assert breaker.stats()["rejections"] == 1

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("s0", threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.9)
        assert not breaker.allow(), "cooldown has not lapsed yet"
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allow(), "the first caller past cooldown is the probe"
        assert not breaker.allow(), "the half-open slot holds one probe"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.stats()["probes"] == 1

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker("s0", threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.record_failure()  # probe failed: snap back open
        assert breaker.state == "open"
        clock.advance(0.5)
        assert not breaker.allow(), "cooldown restarted at the failed probe"
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.stats()["failures_consecutive"] == 0


@pytest.fixture()
def replicated_pair(cluster, tmp_path):
    """Two shards that both hold every entry (R=2), behind one router.

    The breaker threshold is 1 and the prober is off, so a single kill
    deterministically trips the dead shard's breaker on first contact.
    """
    from repro.store import Store

    roots = {name: tmp_path / name for name in ("a", "b")}
    stores = {name: Store(root) for name, root in roots.items()}
    entry = cluster.single.entries()[0]
    for store in stores.values():
        store.adopt(entry.field, entry.step, cluster.single.root / entry.path)
    daemons = {name: ReadDaemon(store) for name, store in stores.items()}
    shard_map = ShardMap(
        [ShardSpec(n, daemons[n].start(), store=str(roots[n])) for n in daemons],
        replicas=2,
    )
    router = RouterDaemon(
        shard_map, retries=0, breaker_threshold=1, probe_interval=0.0
    )
    router.start()
    yield SimpleNamespace(
        entry=entry, daemons=daemons, router=router, shard_map=shard_map
    )
    router.stop()
    for daemon in daemons.values():
        daemon.stop()


class TestReplicaFailover:
    def test_read_survives_one_dead_shard(self, replicated_pair):
        entry = replicated_pair.entry
        with RemoteStore(replicated_pair.router.address) as client:
            reference = np.asarray(client[entry.field, entry.step][...])
            # Kill the primary (first owner) of this entry specifically.
            primary = replicated_pair.shard_map.owner_name(entry.field, entry.step)
            replicated_pair.daemons[primary].stop()
            survived = np.asarray(client[entry.field, entry.step][...])
            np.testing.assert_array_equal(reference, survived)
            stats = replicated_pair.router.stats()
            assert stats["failovers"] >= 1
            assert stats["breakers"][primary]["state"] == "open"
            health = replicated_pair.router.health()
            assert health["ok"], "one dead replica must not take entries down"
            assert primary in health["degraded"]
            assert health["unreachable"] == []

    def test_open_breaker_short_circuits_without_dialing(self, replicated_pair):
        entry = replicated_pair.entry
        with RemoteStore(replicated_pair.router.address) as client:
            primary = replicated_pair.shard_map.owner_name(entry.field, entry.step)
            replicated_pair.daemons[primary].stop()
            client[entry.field, entry.step][...]  # trips the breaker
            rejections_before = replicated_pair.router.stats()["breakers"][
                primary
            ]["rejections"]
            started = time.perf_counter()
            client[entry.field, entry.step][...]  # breaker path, no dial
            assert time.perf_counter() - started < 1.0
            assert (
                replicated_pair.router.stats()["breakers"][primary]["rejections"]
                > rejections_before
            )

    def test_all_replicas_dead_is_a_typed_error_and_503_health(
        self, replicated_pair
    ):
        entry = replicated_pair.entry
        with RemoteStore(replicated_pair.router.address) as client:
            client.describe()  # warm
            for daemon in replicated_pair.daemons.values():
                daemon.stop()
            with pytest.raises((ShardError, BreakerOpenError)):
                client[entry.field, entry.step][...]
            # Both breakers are now open: health reports unreachable entries.
            with pytest.raises((ShardError, BreakerOpenError)):
                client[entry.field, entry.step][...]
            health = replicated_pair.router.health()
            assert not health["ok"]
            assert sorted(health["degraded"]) == ["a", "b"]
            assert health["unreachable"], "every replica set is fully down"

    def test_health_op_reports_over_the_wire(self, replicated_pair):
        with RemoteStore(replicated_pair.router.address) as client:
            health = client.health()
            assert health["ok"] is True
            assert health["replicas"] == 2
            assert set(health["shards"]) == {"a", "b"}
            assert all(state == "closed" for state in health["shards"].values())


def test_single_daemon_answers_the_health_op(cluster):
    with RemoteStore(cluster.single_daemon.address) as client:
        health = client.health()
        assert health["ok"] is True
        assert health["kind"] == "daemon"


def test_breaker_metrics_appear_in_router_stats(cluster):
    """The existing (healthy) cluster exports breaker families and health."""
    with RemoteStore(cluster.router.address) as client:
        stats = client.stats()
    names = {family["name"] for family in stats["metrics"]}
    assert "repro_router_breaker_state" in names
    assert "repro_router_breaker_trips_total" in names
    assert "repro_router_failovers_total" in names
    assert "repro_router_breaker_rejections_total" in names
    assert stats["router"]["health"]["ok"] is True
    assert set(stats["router"]["breakers"]) == set(cluster.shard_map.names())


def test_set_map_closes_backends_of_removed_shards(cluster, tmp_path):
    """A shard leaving the map gets its backend connection closed."""
    from repro.store import Store

    roots = {name: tmp_path / name for name in ("a", "b")}
    stores = {name: Store(root) for name, root in roots.items()}
    entry = cluster.single.entries()[0]
    for store in stores.values():
        store.adopt(entry.field, entry.step, cluster.single.root / entry.path)
    daemons = {name: ReadDaemon(store) for name, store in stores.items()}
    shard_map = ShardMap(
        [ShardSpec(n, daemons[n].start(), store=str(roots[n])) for n in daemons]
    )
    router = RouterDaemon(shard_map)
    router.start()
    try:
        assert set(router._pools) == {"a", "b"}
        dropped = router._pools["b"]
        router.set_map(ShardMap([shard_map.spec("a")]))
        assert dropped.closed
        assert "b" not in router._pools
        with RemoteStore(router.address) as client:
            np.asarray(client[entry.field, entry.step][...])  # still serves
    finally:
        router.stop()
        for daemon in daemons.values():
            daemon.stop()
