"""Unit tests for dynamic padding and the adaptive error-bound schedule."""

import numpy as np
import pytest

from repro.core.adaptive_eb import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    AdaptiveErrorBoundSchedule,
    adaptive_level_error_bounds,
)
from repro.core.padding import (
    PAD_MODES,
    pad_small_dimensions,
    padding_overhead,
    should_pad,
    unpad,
)


class TestPadding:
    def test_pads_the_two_smallest_axes(self):
        data = np.random.default_rng(0).random((8, 8, 64))
        padded, info = pad_small_dimensions(data)
        assert padded.shape == (9, 9, 64)
        assert info.axes == (0, 1)

    def test_unpad_restores_original(self):
        data = np.random.default_rng(1).random((8, 8, 40))
        padded, info = pad_small_dimensions(data, mode="linear")
        restored = unpad(padded, info)
        np.testing.assert_array_equal(restored, data)

    def test_constant_mode_copies_last_layer(self):
        data = np.arange(8, dtype=float).reshape(8, 1) * np.ones((8, 8))
        padded, _ = pad_small_dimensions(data, mode="constant", n_axes=1)
        np.testing.assert_array_equal(padded[-1], data[-1])

    def test_linear_mode_extrapolates_linear_data_exactly(self):
        x = np.arange(8, dtype=float)
        data = np.add.outer(2.0 * x, 3.0 * x)  # plane: exactly linear along both axes
        padded, _ = pad_small_dimensions(data, mode="linear", n_axes=2)
        # the padded layer continues the linear trend exactly
        np.testing.assert_allclose(padded[8, :8], 2.0 * 8 + 3.0 * x)
        np.testing.assert_allclose(padded[:8, 8], 2.0 * x + 3.0 * 8)

    def test_quadratic_mode_extrapolates_quadratic_exactly(self):
        x = np.arange(8, dtype=float)
        data = x**2
        padded, _ = pad_small_dimensions(data, mode="quadratic", n_axes=1)
        assert padded.shape == (9,)
        np.testing.assert_allclose(padded[8], 64.0)

    def test_pad_modes_constant_list(self):
        assert set(PAD_MODES) == {"constant", "linear", "quadratic"}

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            pad_small_dimensions(np.zeros((4, 4)), mode="cubic")

    def test_invalid_n_axes_raises(self):
        with pytest.raises(ValueError):
            pad_small_dimensions(np.zeros((4, 4)), n_axes=3)

    def test_padding_overhead_matches_paper(self):
        # (u+1)^2/u^2 - 1: 56% for u=4, ~13% for u=16 (§III-A).
        assert padding_overhead(4) == pytest.approx(0.5625)
        assert padding_overhead(16) == pytest.approx((17**2) / (16**2) - 1)

    def test_should_pad_rule(self):
        assert not should_pad(4)
        assert should_pad(8)
        assert should_pad(16)


class TestAdaptiveErrorBound:
    def test_finest_level_gets_full_bound(self):
        schedule = adaptive_level_error_bounds()
        assert schedule(1, 10, 1e-2) == pytest.approx(1e-2)

    def test_early_levels_get_tighter_bounds(self):
        schedule = adaptive_level_error_bounds()
        ebs = [schedule(level, 10, 1.0) for level in range(1, 11)]
        assert all(ebs[i] >= ebs[i + 1] - 1e-15 for i in range(len(ebs) - 1))

    def test_beta_caps_the_reduction(self):
        schedule = AdaptiveErrorBoundSchedule(alpha=2.25, beta=8.0)
        assert schedule(10, 10, 1.0) == pytest.approx(1.0 / 8.0)

    def test_paper_constants_are_defaults(self):
        schedule = adaptive_level_error_bounds()
        assert schedule.alpha == DEFAULT_ALPHA == 2.25
        assert schedule.beta == DEFAULT_BETA == 8.0

    def test_second_level_uses_alpha(self):
        schedule = AdaptiveErrorBoundSchedule(alpha=2.0, beta=100.0)
        assert schedule(2, 5, 1.0) == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveErrorBoundSchedule(alpha=0.5)
        with pytest.raises(ValueError):
            AdaptiveErrorBoundSchedule(beta=0.5)
        with pytest.raises(ValueError):
            adaptive_level_error_bounds()(0, 5, 1.0)
