"""Unit tests for the AMR hierarchy data model."""

import numpy as np
import pytest

from repro.amr.grid import AMRHierarchy, AMRLevel
from repro.amr.reconstruct import flatten_hierarchy, level_footprint, prolong, restrict


def _two_level_hierarchy(n=16):
    rng = np.random.default_rng(0)
    fine = rng.random((n, n, n))
    coarse = restrict(fine, 2)
    fine_mask = np.zeros((n, n, n), dtype=bool)
    fine_mask[: n // 2] = True
    coarse_mask = np.zeros((n // 2,) * 3, dtype=bool)
    coarse_mask[n // 4 :] = True
    return AMRHierarchy(
        [
            AMRLevel(level=0, data=fine, mask=fine_mask),
            AMRLevel(level=1, data=coarse, mask=coarse_mask),
        ]
    )


class TestAMRLevel:
    def test_density(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2] = True
        lvl = AMRLevel(level=0, data=np.zeros((4, 4)), mask=mask)
        assert lvl.density == pytest.approx(0.5)
        assert lvl.n_owned == 8

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            AMRLevel(level=0, data=np.zeros((4, 4)), mask=np.zeros((4, 5), dtype=bool))

    def test_negative_level_raises(self):
        with pytest.raises(ValueError):
            AMRLevel(level=-1, data=np.zeros((4, 4)), mask=np.zeros((4, 4), dtype=bool))

    def test_owned_values(self):
        data = np.arange(16, dtype=float).reshape(4, 4)
        mask = data >= 8
        lvl = AMRLevel(level=0, data=data, mask=mask)
        np.testing.assert_array_equal(lvl.owned_values(), np.arange(8, 16))


class TestAMRHierarchy:
    def test_valid_partition(self):
        h = _two_level_hierarchy()
        assert h.is_valid_partition()
        assert h.coverage_map().max() == 1

    def test_densities_sum_accounts_for_resolution(self):
        h = _two_level_hierarchy()
        densities = h.level_densities()
        assert densities[0] == pytest.approx(0.5)
        assert densities[1] == pytest.approx(0.5)

    def test_storage_reduction_between_one_and_eight(self):
        h = _two_level_hierarchy()
        assert 1.0 < h.storage_reduction() <= 8.0

    def test_level_order_enforced(self):
        fine = AMRLevel(level=1, data=np.zeros((8, 8, 8)), mask=np.ones((8, 8, 8), bool))
        with pytest.raises(ValueError):
            AMRHierarchy([fine])

    def test_shape_consistency_enforced(self):
        fine = AMRLevel(level=0, data=np.zeros((8, 8, 8)), mask=np.ones((8, 8, 8), bool))
        bad_coarse = AMRLevel(level=1, data=np.zeros((3, 4, 4)), mask=np.zeros((3, 4, 4), bool))
        with pytest.raises(ValueError):
            AMRHierarchy([fine, bad_coarse])

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError):
            AMRHierarchy([])

    def test_copy_with_data_keeps_masks(self):
        h = _two_level_hierarchy()
        new = h.copy_with_data([np.zeros(l.shape) for l in h.levels])
        for old_lvl, new_lvl in zip(h.levels, new.levels):
            np.testing.assert_array_equal(old_lvl.mask, new_lvl.mask)
            assert new_lvl.data.sum() == 0

    def test_copy_with_wrong_shape_raises(self):
        h = _two_level_hierarchy()
        with pytest.raises(ValueError):
            h.copy_with_data([np.zeros((2, 2, 2))] * h.n_levels)

    def test_summary_mentions_levels(self):
        text = _two_level_hierarchy().summary()
        assert "level 0" in text and "level 1" in text


class TestReconstruct:
    def test_restrict_then_prolong_preserves_block_means(self):
        rng = np.random.default_rng(1)
        data = rng.random((8, 8, 8))
        coarse = restrict(data, 2)
        up = prolong(coarse, 2, order="nearest")
        assert up.shape == data.shape
        np.testing.assert_allclose(restrict(up, 2), coarse)

    def test_prolong_linear_shape(self):
        data = np.random.default_rng(2).random((4, 4))
        assert prolong(data, 2, order="linear", out_shape=(8, 8)).shape == (8, 8)

    def test_prolong_invalid_order(self):
        with pytest.raises(ValueError):
            prolong(np.zeros((2, 2)), 2, order="cubic")

    def test_level_footprints_partition_domain(self):
        h = _two_level_hierarchy()
        total = sum(level_footprint(h, i).astype(int) for i in range(h.n_levels))
        assert (total == 1).all()

    def test_flatten_uses_fine_data_where_owned(self):
        h = _two_level_hierarchy()
        flat = flatten_hierarchy(h)
        fine_region = level_footprint(h, 0)
        np.testing.assert_array_equal(flat[fine_region], h.levels[0].data[fine_region])

    def test_flatten_matches_original_when_single_level(self):
        data = np.random.default_rng(3).random((8, 8, 8))
        h = AMRHierarchy([AMRLevel(level=0, data=data, mask=np.ones_like(data, dtype=bool))])
        np.testing.assert_array_equal(flatten_hierarchy(h), data)
