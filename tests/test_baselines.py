"""Unit tests for the AMRIC / TAC / zMesh / HZ-order baselines."""

import numpy as np
import pytest

from repro.analysis import psnr
from repro.baselines import (
    HZOrderCompressor,
    ZMeshCompressor,
    amric_sz2_compressor,
    amric_sz3_compressor,
    tac_sz3_compressor,
)
from repro.compressors import SZ2Compressor


def _owned_max_error(hierarchy, decompressed):
    worst = 0.0
    for orig, deco in zip(hierarchy.levels, decompressed.levels):
        if orig.mask.any():
            worst = max(worst, float(np.abs(orig.data - deco.data)[orig.mask].max()))
    return worst


class TestAMRICConfigurations:
    def test_amric_sz3_uses_stack_merge(self):
        mrc = amric_sz3_compressor()
        assert mrc.arrangement == "stack"
        assert mrc.compressor_kind == "sz3"
        assert not mrc.adaptive_eb

    def test_amric_sz2_uses_4cubed_blocks(self):
        mrc = amric_sz2_compressor()
        assert mrc.compressor_kind == "sz2"
        assert mrc.codec.block_size == 4

    def test_amric_roundtrip_error_bound(self, small_hierarchy):
        eb = 0.02
        for mrc in (amric_sz3_compressor(unit_size=8), amric_sz2_compressor(unit_size=8)):
            _, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
            assert _owned_max_error(small_hierarchy, deco) <= eb * (1 + 1e-9)


class TestTACConfiguration:
    def test_tac_uses_adjacency_merge(self):
        mrc = tac_sz3_compressor()
        assert mrc.arrangement == "adjacency"

    def test_tac_roundtrip(self, small_hierarchy):
        eb = 0.02
        comp, deco = tac_sz3_compressor(unit_size=8).roundtrip_hierarchy(small_hierarchy, eb)
        assert comp.compression_ratio > 1.0
        assert _owned_max_error(small_hierarchy, deco) <= eb * (1 + 1e-9)

    def test_tac_pays_per_segment_overhead_on_fragmented_levels(self, noisy_field_3d):
        """When the occupied region is fragmented TAC produces several payloads."""
        from repro.amr.refinement import build_hierarchy_from_uniform

        h = build_hierarchy_from_uniform(
            noisy_field_3d, n_levels=2, block_size=8, fractions=[0.2, 0.8]
        )
        comp = tac_sz3_compressor(unit_size=8).compress_hierarchy(h, 0.02)
        assert any(len(level.payloads) >= 1 for level in comp.levels)
        # the fine level of a 20% random-ish selection is typically fragmented
        assert len(comp.levels[0].payloads) >= 1


class TestZOrderBaselines:
    @pytest.mark.parametrize("cls", [ZMeshCompressor, HZOrderCompressor])
    def test_roundtrip_error_bound(self, small_hierarchy, cls):
        eb = 0.02
        baseline = cls()
        comp = baseline.compress_hierarchy(small_hierarchy, eb)
        deco = baseline.decompress_hierarchy(comp, small_hierarchy)
        assert _owned_max_error(small_hierarchy, deco) <= eb * (1 + 1e-9)
        assert comp.compression_ratio > 1.0

    @pytest.mark.parametrize("cls", [ZMeshCompressor, HZOrderCompressor])
    def test_unowned_cells_untouched(self, small_hierarchy, cls):
        baseline = cls()
        comp = baseline.compress_hierarchy(small_hierarchy, 0.05)
        deco = baseline.decompress_hierarchy(comp, small_hierarchy)
        for orig, new in zip(small_hierarchy.levels, deco.levels):
            np.testing.assert_array_equal(orig.data[~orig.mask], new.data[~orig.mask])

    def test_zmesh_with_sz2_codec(self, small_hierarchy):
        baseline = ZMeshCompressor(codec=SZ2Compressor())
        comp = baseline.compress_hierarchy(small_hierarchy, 0.05)
        deco = baseline.decompress_hierarchy(comp, small_hierarchy)
        assert _owned_max_error(small_hierarchy, deco) <= 0.05 * (1 + 1e-9)

    def test_3d_compression_beats_1d_linearisation(self, smooth_field_3d):
        """The paper's motivation for compressing levels in 3-D rather than
        flattening them (zMesh / HZ ordering): on spatially coherent data a
        3-D compression of the level outperforms 1-D compression of the same
        values in Morton order at the same error bound."""
        from repro.compressors import SZ3Compressor
        from repro.utils.morton import morton_order

        eb = 1e-3
        codec = SZ3Compressor()
        three_d = codec.compress(smooth_field_3d, eb)
        one_d = codec.compress(
            smooth_field_3d.ravel()[morton_order(smooth_field_3d.shape)], eb
        )
        assert three_d.compression_ratio > one_d.compression_ratio
