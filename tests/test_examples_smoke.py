"""Smoke tests that the shipped examples run end to end.

Only the faster examples are executed (the full set is exercised manually /
in CI nightlies); each must complete without error and print its headline
metrics.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "name,expected_fragment",
    [
        ("uncertainty_isosurface.py", "recovered by uncertainty"),
        ("warpx_adaptive_roi.py", "SZ3MR (pad+eb)"),
        ("store_random_access.py", "blocks decoded"),
        ("serve_shared_cache.py", "0 new decodes"),
    ],
)
def test_example_runs_and_reports(name, expected_fragment, capsys):
    output = _run_example(name, capsys)
    assert expected_fragment in output


def test_quickstart_reports_quality(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "compression ratio" in output
    assert "PSNR" in output
