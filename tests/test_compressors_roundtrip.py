"""Round-trip and error-bound tests for the SZ2 / SZ3 / ZFP compressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import SZ2Compressor, SZ3Compressor, ZFPCompressor
from repro.compressors.base import (
    CompressedArray,
    available_compressors,
    get_compressor,
)
from repro.compressors.errors import (
    CompressionError,
    DecompressionError,
    ErrorBoundViolation,
    UnknownCompressorError,
)

ALL_COMPRESSORS = [SZ3Compressor, SZ2Compressor, ZFPCompressor]


def _make_field(shape, seed=0, noise=0.02):
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(*[np.linspace(0, 1, s) for s in shape], indexing="ij")
    field = np.ones(shape)
    for i, c in enumerate(coords):
        field = field * np.sin(2 * np.pi * (i + 2) * c)
    return field + noise * rng.standard_normal(shape)


class TestRoundTripAllCompressors:
    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    @pytest.mark.parametrize("shape", [(200,), (24, 30), (18, 20, 22)])
    def test_error_bound_respected(self, cls, shape):
        data = _make_field(shape, seed=1)
        comp = cls()
        result = comp.roundtrip(data, 1e-3, verify=True)
        assert result.max_error <= 1e-3 * (1 + 1e-9)
        assert result.decompressed.shape == data.shape

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_larger_error_bound_gives_larger_ratio(self, cls):
        data = _make_field((24, 24, 24), seed=2)
        comp = cls()
        loose = comp.roundtrip(data, 1e-1)
        tight = comp.roundtrip(data, 1e-4)
        assert loose.compression_ratio > tight.compression_ratio

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_relative_error_bound(self, cls):
        data = 1000.0 * _make_field((16, 16, 16), seed=3)
        comp = cls()
        rel = 1e-3
        result = comp.roundtrip(data, rel, relative=True)
        value_range = data.max() - data.min()
        assert result.max_error <= rel * value_range * (1 + 1e-9)

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_constant_field_compresses_hugely(self, cls):
        data = np.full((16, 16, 16), 3.14)
        result = cls().roundtrip(data, 1e-6)
        assert result.compression_ratio > 50
        np.testing.assert_allclose(result.decompressed, data, atol=1e-6)

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_serialization_roundtrip(self, cls):
        data = _make_field((12, 12, 12), seed=4)
        comp = cls()
        compressed = comp.compress(data, 1e-3)
        blob = compressed.to_bytes()
        restored = CompressedArray.from_bytes(blob)
        recon = comp.decompress(restored)
        assert np.abs(recon - data).max() <= 1e-3 * (1 + 1e-9)

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_wrong_codec_decompression_raises(self, cls):
        data = _make_field((10, 10), seed=5)
        compressed = cls().compress(data, 1e-2)
        other = [c for c in ALL_COMPRESSORS if c is not cls][0]()
        with pytest.raises(DecompressionError):
            other.decompress(compressed)

    @pytest.mark.parametrize("cls", ALL_COMPRESSORS)
    def test_invalid_inputs_raise(self, cls):
        comp = cls()
        with pytest.raises(CompressionError):
            comp.compress(np.zeros((2, 2, 2, 2)), 1e-3)
        with pytest.raises(CompressionError):
            comp.compress(np.zeros((4, 4)), -1.0)


class TestSZ3Specifics:
    def test_linear_vs_cubic_both_bounded(self):
        data = _make_field((20, 20, 20), seed=6)
        for mode in ("linear", "cubic"):
            result = SZ3Compressor(interpolation=mode).roundtrip(data, 1e-3, verify=True)
            assert result.max_error <= 1e-3 * (1 + 1e-9)

    def test_huffman_entropy_roundtrip(self):
        data = _make_field((16, 16), seed=7)
        result = SZ3Compressor(entropy="huffman").roundtrip(data, 1e-3, verify=True)
        assert result.max_error <= 1e-3 * (1 + 1e-9)

    def test_level_error_bounds_hook_is_respected(self):
        data = _make_field((32, 32), seed=8)
        # Tighter bounds at earlier (coarser) levels must still respect the
        # overall bound and should give a better PSNR than it requires.
        schedule = lambda level, max_level, eb: eb / min(2.0 ** (level - 1), 8.0)
        result = SZ3Compressor(level_error_bounds=schedule).roundtrip(data, 1e-2, verify=True)
        assert result.max_error <= 1e-2

    def test_level_error_bounds_stored_in_metadata(self):
        data = _make_field((16, 16), seed=9)
        compressed = SZ3Compressor().compress(data, 1e-3)
        assert "level_error_bounds" in compressed.metadata
        assert all(float(v) > 0 for v in compressed.metadata["level_error_bounds"].values())

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            SZ3Compressor(interpolation="quintic")
        with pytest.raises(ValueError):
            SZ3Compressor(entropy="lz4")

    def test_global_beats_blockwise_on_smooth_data(self):
        """The paper's premise: global interpolation outperforms block-wise SZ2."""
        data = _make_field((32, 32, 32), seed=10, noise=0.0)
        eb = 1e-4
        sz3 = SZ3Compressor().roundtrip(data, eb)
        sz2 = SZ2Compressor().roundtrip(data, eb)
        assert sz3.compression_ratio > sz2.compression_ratio


class TestSZ2Specifics:
    @pytest.mark.parametrize("block_size", [4, 6, 8])
    def test_block_sizes(self, block_size):
        data = _make_field((20, 20, 20), seed=11)
        result = SZ2Compressor(block_size=block_size).roundtrip(data, 1e-3, verify=True)
        assert result.max_error <= 1e-3 * (1 + 1e-9)

    def test_mean_predictor(self):
        data = _make_field((16, 16), seed=12)
        result = SZ2Compressor(predictor="mean").roundtrip(data, 1e-3, verify=True)
        assert result.max_error <= 1e-3

    def test_block_boundaries_helper(self):
        comp = SZ2Compressor(block_size=4)
        bounds = comp.block_boundaries((10, 8))
        np.testing.assert_array_equal(bounds[0], [0, 4, 8])
        np.testing.assert_array_equal(bounds[1], [0, 4])

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            SZ2Compressor(block_size=1)
        with pytest.raises(ValueError):
            SZ2Compressor(predictor="spline")


class TestZFPSpecifics:
    def test_error_usually_well_below_bound(self):
        """ZFP's fixed-accuracy mode underestimates error (exploited in §III-B)."""
        data = _make_field((24, 24, 24), seed=13)
        eb = 1e-2
        result = ZFPCompressor().roundtrip(data, eb)
        assert result.max_error < eb / 2

    def test_coefficient_grouping_improves_ratio(self):
        data = _make_field((32, 32, 32), seed=14)
        grouped = ZFPCompressor(coefficient_grouping=True).roundtrip(data, 1e-3)
        flat = ZFPCompressor(coefficient_grouping=False).roundtrip(data, 1e-3)
        assert grouped.compression_ratio >= flat.compression_ratio * 0.95

    def test_block_size_property(self):
        assert ZFPCompressor().block_size == 4


class TestRegistry:
    def test_all_registered(self):
        assert {"sz2", "sz3", "zfp"} <= set(available_compressors())

    def test_get_compressor_with_options(self):
        comp = get_compressor("sz2", block_size=4)
        assert comp.block_size == 4

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownCompressorError):
            get_compressor("mgard")

    def test_roundtrip_verify_raises_on_violation(self):
        """verify=True must raise when the bound is (artificially) violated."""

        class Broken(SZ3Compressor):
            def _decompress_impl(self, compressed):
                out = super()._decompress_impl(compressed)
                out[0] += 10 * compressed.error_bound
                return out

        data = _make_field((64,), seed=15)
        with pytest.raises(ErrorBoundViolation):
            Broken().roundtrip(data, 1e-3, verify=True)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=60),
    eb_exp=st.integers(min_value=-4, max_value=-1),
)
def test_property_sz3_1d_error_bound(n, eb_exp):
    """SZ3 respects the error bound for arbitrary 1-D sizes."""
    rng = np.random.default_rng(n)
    data = np.cumsum(rng.standard_normal(n))  # random walk: correlated data
    eb = 10.0**eb_exp
    result = SZ3Compressor().roundtrip(data, eb)
    assert result.max_error <= eb * (1 + 1e-9)
