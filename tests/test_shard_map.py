"""``ShardMap``: placement determinism, serialization, rebalance planning.

The placement function is the consistency anchor of the whole shard layer —
router, rebalancer and operators all recompute it independently — so these
tests pin its observable contract: byte-stable hashing across instances and
round-trips, the consistent-hashing movement bound (a new shard only
*receives* entries), and minimal, deterministic rebalance plans.
"""

from __future__ import annotations

import json

import pytest

from repro.shard import (
    RebalanceMove,
    ShardMap,
    ShardSpec,
    entry_key,
    plan_rebalance,
)


def three_shards() -> ShardMap:
    return ShardMap(
        [
            ShardSpec("s0", "127.0.0.1:7101", store="shards/s0"),
            ShardSpec("s1", "127.0.0.1:7102", store="shards/s1"),
            ShardSpec("s2", "127.0.0.1:7103"),
        ]
    )


def corpus(n_fields: int = 4, n_steps: int = 32):
    return [
        (f"field{f}", step) for f in range(n_fields) for step in range(n_steps)
    ]


def test_entry_key_matches_store_catalog_keys():
    assert entry_key("density", 3) == "density/00003"
    assert entry_key("density", 12345) == "density/12345"


def test_placement_is_deterministic_across_instances():
    a, b = three_shards(), three_shards()
    for field, step in corpus():
        assert a.owner_name(field, step) == b.owner_name(field, step)


def test_placement_survives_json_round_trip(tmp_path):
    m = three_shards()
    again = ShardMap.from_dict(json.loads(json.dumps(m.to_dict())))
    assert again == m
    for field, step in corpus():
        assert again.owner_name(field, step) == m.owner_name(field, step)

    path = tmp_path / "topology.json"
    m.save(path)
    loaded = ShardMap.load(path)
    assert loaded == m
    assert loaded.spec("s0").store == "shards/s0"
    assert loaded.spec("s2").store is None


def test_placement_independent_of_shard_order_and_address():
    base = three_shards()
    shuffled = ShardMap(list(reversed(base.shards)))
    readdressed = ShardMap(
        [ShardSpec(s.name, f"10.0.0.9:{9000 + i}") for i, s in enumerate(base.shards)]
    )
    for field, step in corpus():
        assert shuffled.owner_name(field, step) == base.owner_name(field, step)
        # The *name* is the hash identity; moving a shard to a new address
        # must not move a single entry.
        assert readdressed.owner_name(field, step) == base.owner_name(field, step)


def test_every_shard_gets_a_reasonable_share():
    m = three_shards()
    assign = m.assign(corpus(8, 64))
    sizes = {name: len(keys) for name, keys in assign.items()}
    assert set(sizes) == {"s0", "s1", "s2"}
    total = sum(sizes.values())
    assert total == 8 * 64
    for name, size in sizes.items():
        # Virtual nodes keep the split near-uniform; a shard at <10% or >60%
        # of the corpus would mean the ring is broken, not merely unlucky.
        assert 0.10 * total < size < 0.60 * total, sizes


def test_adding_a_shard_only_moves_entries_to_it():
    old = three_shards()
    new = ShardMap([*old.shards, ShardSpec("s3", "127.0.0.1:7104")])
    entries = corpus()
    moves = plan_rebalance(old, new, entries)
    assert moves, "a new shard must take over some arc of the ring"
    assert all(m.dest == "s3" for m in moves)
    # Entries that did not move kept their owner (the minimality statement).
    moved = {m.key for m in moves}
    for field, step in entries:
        if entry_key(field, step) not in moved:
            assert old.owner_name(field, step) == new.owner_name(field, step)
    # Roughly 1/N of the corpus moves, not half the ring.
    assert len(moves) < 0.5 * len(entries)


def test_removing_a_shard_only_scatters_its_entries():
    old = three_shards()
    new = ShardMap([s for s in old.shards if s.name != "s1"])
    entries = corpus()
    moves = plan_rebalance(old, new, entries)
    assert {m.source for m in moves} == {"s1"}
    assert len(moves) == sum(
        1 for f, s in entries if old.owner_name(f, s) == "s1"
    )


def test_plan_is_deterministic_and_sorted():
    old = three_shards()
    new = ShardMap([*old.shards, ShardSpec("s3", "127.0.0.1:7104")])
    a = plan_rebalance(old, new, corpus())
    b = plan_rebalance(old, new, list(reversed(corpus())))
    assert a == b
    assert [m.key for m in a] == sorted(m.key for m in a)


def test_identical_maps_plan_no_moves():
    assert plan_rebalance(three_shards(), three_shards(), corpus()) == []


def test_rebalance_move_round_trip():
    move = RebalanceMove(field="density", step=7, source="s0", dest="s3")
    assert RebalanceMove.from_dict(move.to_dict()) == move
    assert move.key == "density/00007"
    with pytest.raises(ValueError, match="unknown RebalanceMove keys"):
        RebalanceMove.from_dict({**move.to_dict(), "extra": 1})


def test_strict_config_validation():
    with pytest.raises(ValueError, match="at least one shard"):
        ShardMap([])
    with pytest.raises(ValueError, match="duplicate shard names"):
        ShardMap([ShardSpec("s0", "a:1"), ShardSpec("s0", "a:2")])
    with pytest.raises(ValueError, match="virtual_nodes"):
        ShardMap([ShardSpec("s0", "a:1")], virtual_nodes=0)
    with pytest.raises(ValueError, match="unknown ShardMap keys"):
        ShardMap.from_dict({"shards": [], "surprise": 1})
    with pytest.raises(ValueError, match="not a shard map"):
        ShardMap.from_dict({"type": "pipeline"})
    with pytest.raises(ValueError, match="unknown ShardSpec keys"):
        ShardSpec.from_dict({"name": "s0", "address": "a:1", "port": 9})
    with pytest.raises(ValueError, match="non-empty name"):
        ShardSpec.from_dict({"name": "", "address": "a:1"})
    with pytest.raises(ValueError, match="needs an address"):
        ShardSpec.from_dict({"name": "s0"})
    with pytest.raises(KeyError, match="no shard named"):
        three_shards().spec("nope")


def test_load_rejects_garbage_file(tmp_path):
    bad = tmp_path / "topology.json"
    bad.write_text("{not json", "utf-8")
    with pytest.raises(ValueError, match="cannot read shard map"):
        ShardMap.load(bad)


# -- replication ---------------------------------------------------------------


def replicated(replicas: int = 2) -> ShardMap:
    return ShardMap([s for s in three_shards().shards], replicas=replicas)


def test_owners_are_distinct_and_lead_with_the_primary():
    m = replicated(2)
    for field, step in corpus():
        owners = m.owner_names(field, step)
        assert len(owners) == 2
        assert len(set(owners)) == 2, "replicas must live on distinct shards"
        assert owners[0] == m.owner_name(field, step), (
            "the primary (first ring successor) must not move when "
            "replication is enabled"
        )


def test_replication_does_not_move_primaries():
    base, extra = three_shards(), replicated(2)
    for field, step in corpus():
        assert extra.owner_name(field, step) == base.owner_name(field, step)


def test_replicas_survive_json_round_trip(tmp_path):
    m = replicated(2)
    again = ShardMap.from_dict(json.loads(json.dumps(m.to_dict())))
    assert again == m
    assert again.replicas == 2
    for field, step in corpus():
        assert again.owner_names(field, step) == m.owner_names(field, step)
    # Topologies written before replication default to one owner per entry.
    legacy = dict(m.to_dict())
    legacy.pop("replicas")
    assert ShardMap.from_dict(legacy).replicas == 1


def test_replica_validation():
    with pytest.raises(ValueError, match="replicas"):
        replicated(0)
    with pytest.raises(ValueError, match="exceeds shard count"):
        replicated(4)
    assert replicated(3).replicas == 3


def test_replica_sets_cover_every_owner_set():
    m = replicated(2)
    sets = m.replica_sets()
    assert all(len(group) == 2 for group in sets)
    for field, step in corpus():
        assert frozenset(m.owner_names(field, step)) in sets


def test_replica_plan_moves_only_what_ownership_changed():
    old = replicated(2)
    new = ShardMap([*old.shards, ShardSpec("s3", "127.0.0.1:7104")], replicas=2)
    entries = corpus()
    moves = plan_rebalance(old, new, entries)
    assert moves, "a new shard must take over some arc of the ring"
    # Every move lands on a shard that actually owns the key under the new
    # map, and untouched entries kept their whole replica set.
    moved = {m.key for m in moves}
    for field, step in entries:
        key = entry_key(field, step)
        new_owners = set(new.owner_names(field, step))
        if key in moved:
            assert all(
                m.dest in new_owners for m in moves if m.key == key
            )
        else:
            assert set(old.owner_names(field, step)) == new_owners
    # The movement bound still holds per replica: adding one shard to three
    # moves O(R/N) of the corpus, nowhere near half of it.
    assert len(moves) < 0.5 * 2 * len(entries)


def test_replica_change_alone_plans_copies_without_prunes():
    old, new = replicated(1), replicated(2)
    entries = corpus()
    moves = plan_rebalance(old, new, entries)
    # Raising R only *adds* owners: every entry whose set grew gets a copy
    # move whose dest is the new secondary, and nothing is lost anywhere.
    assert moves
    for move in moves:
        assert move.dest in new.owner_names(move.field, move.step)
        assert move.dest not in old.owner_names(move.field, move.step)
