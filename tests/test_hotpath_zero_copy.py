"""Behavioural tests for the zero-copy hot read path.

Covers the pieces the coalescing suite doesn't: the ``decode_into``
destination path (bit-for-bit vs the block-list path, and genuinely
temporary-free for the in-place codec), read-only shared-cache entries with
honest ``bytes_resident`` accounting, the zero-copy ndarray wire codec and
its ``copy=True`` escape hatch, scatter-gather frame writes being
byte-identical to ``pack_frame``, and the daemon's debounced store refresh.
"""

from __future__ import annotations

import io
import socket
import threading

import numpy as np
import pytest

from repro.array import BlockCache, open_array
from repro.serve.protocol import (
    decode_ndarray,
    encode_ndarray,
    pack_frame,
    read_frame,
    send_frame,
)
from repro.utils.rng import default_rng


@pytest.fixture(scope="module")
def container(tmp_path_factory, smooth_field_3d=None):
    from repro.core.mr_compressor import MultiResolutionCompressor
    from repro.store import Store

    root = tmp_path_factory.mktemp("hotpath") / "store"
    store = Store(root, MultiResolutionCompressor(unit_size=8))
    rng = default_rng("hotpath-data")
    store.append("field", 0, rng.standard_normal((32, 24, 16)), 0.05)
    return root / store.entry("field", 0).path


# -- decode_into ----------------------------------------------------------------


class TestDecodeInto:
    def test_cacheless_view_matches_cached_view(self, container):
        uncached = open_array(container, cache=None)
        uncached.cache = None  # open_array defaults a cache in; force direct path
        cached = open_array(container)
        assert cached.cache is not None
        full_a, full_b = uncached[...], cached[...]
        assert np.array_equal(full_a, full_b)
        for index in [
            (slice(3, 30), slice(None), slice(None, None, 2)),
            (0, Ellipsis),
            (slice(None), 7, slice(2, 15)),
            (-1, -1, -1),
        ]:
            assert np.array_equal(uncached[index], cached[index])

    def test_decompress_into_matches_decompress(self, container):
        from repro.compressors import get_compressor
        from repro.compressors.base import CompressedArray
        from repro.store.format import ContainerReader

        reader = ContainerReader(container)
        for blob in reader.fetch_entries(np.arange(min(4, reader.n_blocks))):
            compressed = CompressedArray.from_bytes(blob)
            codec = get_compressor(compressed.codec)
            reference = codec.decompress(compressed)
            # Full in-place decode, into a non-contiguous destination view.
            backing = np.full(tuple(2 * s for s in compressed.shape), -1.0)
            window = backing[tuple(slice(0, s) for s in compressed.shape)]
            codec.decompress_into(compressed, window)
            assert np.array_equal(window, reference)
            # Windowed decode pastes only the overlap.
            src = tuple(slice(1, s) for s in compressed.shape)
            partial = np.empty(reference[src].shape)
            codec.decompress_into(compressed, partial, src=src)
            assert np.array_equal(partial, reference[src])

    def test_engine_decode_blocks_into_parity(self, container):
        from repro.store.engine import CodecEngine
        from repro.store.format import ContainerReader

        reader = ContainerReader(container)
        payloads = reader.fetch_entries(np.arange(reader.n_blocks))
        for executor in ("serial", "thread", "process"):
            engine = CodecEngine("sz3", executor=executor, max_workers=2)
            blocks = engine.decode_blocks(payloads)
            outs = [np.empty_like(b) for b in blocks]
            engine.decode_blocks_into(payloads, outs)
            for a, b in zip(blocks, outs):
                assert np.array_equal(a, b)


# -- shared cache ---------------------------------------------------------------


class TestCacheZeroCopy:
    def test_entries_are_read_only(self, container):
        view = open_array(container)
        view[...]
        key = next(iter(view.cache._entries))
        block = view.cache.get(key)
        assert not block.flags.writeable
        with pytest.raises(ValueError):
            block[...] = 0.0

    def test_bytes_resident_tracks_buffers(self):
        cache = BlockCache(max_blocks=4)
        owned = np.zeros((8, 8))
        cache.put(("a",), owned)
        stats = cache.stats
        assert stats["bytes_resident"] == stats["nbytes"] == owned.nbytes
        # A view pins its whole base buffer; nbytes meters the logical size.
        base = np.zeros(1024)
        cache.put(("b",), base[:16])
        stats = cache.stats
        assert stats["nbytes"] == owned.nbytes + 16 * 8
        assert stats["bytes_resident"] == owned.nbytes + base.nbytes
        cache.clear()
        assert cache.stats["bytes_resident"] == 0

    def test_eviction_releases_resident_bytes(self):
        cache = BlockCache(max_blocks=2)
        for i in range(5):
            cache.put(i, np.zeros(32))
        stats = cache.stats
        assert stats["size"] == 2
        assert stats["bytes_resident"] == 2 * 32 * 8


# -- wire codec -----------------------------------------------------------------


class TestWireZeroCopy:
    def test_decode_ndarray_is_zero_copy_and_read_only(self):
        arr = np.arange(24.0).reshape(4, 6)
        meta, payload = encode_ndarray(arr)
        out = decode_ndarray(meta, payload)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0, 0] = 1.0
        # Same memory as the payload buffer: no copy happened.
        assert out.base is not None
        assert np.shares_memory(out, np.frombuffer(payload, dtype=np.float64))

    def test_decode_ndarray_copy_escape_hatch(self):
        arr = np.arange(6.0)
        meta, payload = encode_ndarray(arr)
        out = decode_ndarray(meta, payload, copy=True)
        assert out.flags.writeable
        out[0] = 99.0  # private buffer; the payload is untouched
        assert np.frombuffer(payload, dtype=np.float64)[0] == 0.0

    def test_encode_ndarray_shares_memory_for_contiguous_input(self):
        arr = np.arange(12.0).reshape(3, 4)
        _, payload = encode_ndarray(arr)
        assert np.shares_memory(np.frombuffer(payload, dtype=np.float64), arr)

    def test_read_frame_payload_single_buffer_roundtrip(self):
        blob = bytes(range(256)) * 64
        header, payload = read_frame(io.BytesIO(pack_frame({"op": "read"}, blob)))
        assert isinstance(payload, memoryview)
        assert payload == blob
        arr = decode_ndarray(
            {"dtype": "|u1", "shape": [len(blob)]}, payload
        )
        assert not arr.flags.writeable

    def test_send_frame_bytes_identical_to_pack_frame(self):
        header = {"op": "read", "shape": [4, 6], "dtype": "<f8"}
        _, payload = encode_ndarray(np.arange(24.0).reshape(4, 6))
        expected = pack_frame(header, payload)
        left, right = socket.socketpair()
        try:
            received = bytearray()
            done = threading.Event()

            def drain():
                while len(received) < len(expected):
                    chunk = right.recv(65536)
                    if not chunk:
                        break
                    received.extend(chunk)
                done.set()

            t = threading.Thread(target=drain)
            t.start()
            sent = send_frame(left, header, payload)
            assert sent == len(expected)
            assert done.wait(5.0)
            t.join(5.0)
            assert bytes(received) == expected
        finally:
            left.close()
            right.close()

    def test_send_frame_without_sendmsg_falls_back(self):
        class SendallOnly:
            def __init__(self):
                self.data = bytearray()

            def sendall(self, buf):
                self.data.extend(bytes(buf))

        header = {"op": "stats"}
        _, payload = encode_ndarray(np.arange(5.0))
        sink = SendallOnly()
        send_frame(sink, header, payload)
        assert bytes(sink.data) == pack_frame(header, payload)


# -- daemon refresh debounce ----------------------------------------------------


class TestRefreshTTL:
    def _count_refreshes(self, daemon, n_requests):
        from repro.serve import RemoteStore

        calls = []
        original = daemon.store.refresh

        def counting():
            calls.append(1)
            return original()

        daemon.store.refresh = counting
        try:
            with RemoteStore(daemon.address) as client:
                for _ in range(n_requests):
                    client.stats()
        finally:
            daemon.store.refresh = original
        return len(calls)

    def test_ttl_zero_refreshes_every_request(self, serve_store):
        from repro.serve import ReadDaemon

        with ReadDaemon(serve_store, refresh_ttl=0.0) as daemon:
            assert self._count_refreshes(daemon, 5) == 5

    def test_positive_ttl_debounces(self, serve_store):
        from repro.serve import ReadDaemon

        with ReadDaemon(serve_store, refresh_ttl=60.0) as daemon:
            # The TTL window opened at construction covers the whole burst:
            # at most one stat for any number of requests.
            assert self._count_refreshes(daemon, 10) <= 1

    def test_stale_catalog_still_visible_after_ttl(self, serve_store, tmp_path):
        import time

        from repro.serve import ReadDaemon, RemoteStore

        with ReadDaemon(serve_store, refresh_ttl=0.05) as daemon:
            with RemoteStore(daemon.address) as client:
                client.stats()  # consume the first refresh slot
                time.sleep(0.06)
                before = len(client.entries())
                assert before == len(serve_store)
