"""Unit tests for the multi-resolution compression engine and SZ3MR."""

import numpy as np
import pytest

from repro.analysis import psnr
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.core.sz3mr import SZ3MRCompressor, sz3mr_variants


def _max_owned_error(hierarchy, decompressed):
    worst = 0.0
    for orig, deco in zip(hierarchy.levels, decompressed.levels):
        if orig.mask.any():
            worst = max(worst, float(np.abs(orig.data - deco.data)[orig.mask].max()))
    return worst


class TestMultiResolutionCompressor:
    @pytest.mark.parametrize("arrangement", ["linear", "stack", "adjacency"])
    def test_error_bound_on_owned_cells(self, small_hierarchy, arrangement):
        mrc = MultiResolutionCompressor(
            compressor="sz3", arrangement=arrangement, padding=False, unit_size=8
        )
        eb = 0.01
        _, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
        assert _max_owned_error(small_hierarchy, deco) <= eb * (1 + 1e-9)

    @pytest.mark.parametrize("compressor", ["sz3", "sz2", "zfp"])
    def test_all_codecs_supported(self, small_hierarchy, compressor):
        mrc = MultiResolutionCompressor(compressor=compressor, unit_size=8)
        eb = 0.02
        comp, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
        assert comp.compression_ratio > 1.0
        assert _max_owned_error(small_hierarchy, deco) <= eb * (1 + 1e-9)

    def test_padding_respects_error_bound(self, small_hierarchy):
        mrc = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding=True, unit_size=8
        )
        eb = 0.005
        _, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
        assert _max_owned_error(small_hierarchy, deco) <= eb * (1 + 1e-9)

    def test_adaptive_eb_never_looser_than_requested(self, small_hierarchy):
        mrc = SZ3MRCompressor(unit_size=8)
        eb = 0.01
        _, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
        assert _max_owned_error(small_hierarchy, deco) <= eb * (1 + 1e-9)

    def test_auto_padding_rule(self):
        small_units = MultiResolutionCompressor(compressor="sz3", padding="auto", unit_size=4)
        big_units = MultiResolutionCompressor(compressor="sz3", padding="auto", unit_size=16)
        assert not small_units._padding_enabled(4)
        assert big_units._padding_enabled(16)

    def test_padding_only_for_linear_sz3(self):
        stack = MultiResolutionCompressor(compressor="sz3", arrangement="stack", padding=True)
        sz2 = MultiResolutionCompressor(compressor="sz2", padding=True)
        assert not stack._padding_enabled(16)
        assert not sz2._padding_enabled(16)

    def test_per_level_error_bounds(self, small_hierarchy):
        mrc = MultiResolutionCompressor(compressor="sz3", unit_size=8)
        comp = mrc.compress_hierarchy(small_hierarchy, [0.01, 0.05])
        assert comp.metadata["level_error_bounds"] == [0.01, 0.05]
        deco = mrc.decompress_hierarchy(comp, small_hierarchy)
        fine, coarse = small_hierarchy.levels
        fine_deco, coarse_deco = deco.levels
        assert np.abs(fine.data - fine_deco.data)[fine.mask].max() <= 0.01 * (1 + 1e-9)
        assert np.abs(coarse.data - coarse_deco.data)[coarse.mask].max() <= 0.05 * (1 + 1e-9)

    def test_wrong_number_of_level_bounds_raises(self, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        with pytest.raises(ValueError):
            mrc.compress_hierarchy(small_hierarchy, [0.01])

    def test_wrong_template_raises(self, small_hierarchy, three_level_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        comp = mrc.compress_hierarchy(small_hierarchy, 0.01)
        with pytest.raises(ValueError):
            mrc.decompress_hierarchy(comp, three_level_hierarchy)

    def test_compression_ratio_accounting(self, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        comp = mrc.compress_hierarchy(small_hierarchy, 0.05)
        assert comp.nbytes_original == sum(l.nbytes_original for l in comp.levels)
        assert comp.nbytes_compressed > 0
        assert comp.compression_ratio == pytest.approx(
            comp.nbytes_original / comp.nbytes_compressed
        )

    def test_three_level_hierarchy(self, three_level_hierarchy):
        mrc = SZ3MRCompressor(unit_size=8)
        eb = 0.02
        comp, deco = mrc.roundtrip_hierarchy(three_level_hierarchy, eb)
        assert len(comp.levels) == 3
        assert _max_owned_error(three_level_hierarchy, deco) <= eb * (1 + 1e-9)

    def test_prepare_encode_equals_compress(self, small_hierarchy):
        mrc = SZ3MRCompressor(unit_size=8)
        lvl = small_hierarchy.levels[0]
        prepared = mrc.prepare_level(lvl.data, lvl.mask, level_index=0)
        via_prepare = mrc.encode_prepared(prepared, 0.01)
        direct = mrc.compress_level(lvl.data, lvl.mask, 0.01, level_index=0)
        assert via_prepare.nbytes_compressed == direct.nbytes_compressed

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            MultiResolutionCompressor(compressor="mgard")
        with pytest.raises(ValueError):
            MultiResolutionCompressor(arrangement="diagonal")
        with pytest.raises(ValueError):
            MultiResolutionCompressor(padding="maybe")

    def test_describe_mentions_options(self):
        mrc = SZ3MRCompressor(unit_size=16)
        text = mrc.describe()
        assert "sz3" in text and "pad" in text and "adaptive-eb" in text


class TestSZ3MRVariants:
    def test_expected_variant_names(self):
        names = set(sz3mr_variants().keys())
        assert names == {"Baseline-SZ3", "AMRIC-SZ3", "TAC-SZ3", "Ours (pad)", "Ours (pad+eb)"}

    def test_variants_without_tac(self):
        assert "TAC-SZ3" not in sz3mr_variants(include_tac=False)

    def test_variant_configurations(self):
        variants = sz3mr_variants()
        assert variants["AMRIC-SZ3"].arrangement == "stack"
        assert variants["TAC-SZ3"].arrangement == "adjacency"
        assert variants["Baseline-SZ3"].padding is False
        assert variants["Ours (pad+eb)"].adaptive_eb is True

    def test_all_variants_roundtrip(self, small_hierarchy):
        eb = 0.05
        reference = small_hierarchy.to_uniform()
        for name, mrc in sz3mr_variants(unit_size=8).items():
            comp, deco = mrc.roundtrip_hierarchy(small_hierarchy, eb)
            assert comp.compression_ratio > 1.0, name
            assert psnr(reference, deco.to_uniform()) > 20.0, name

    def test_sz3mr_quality_not_worse_than_baseline_at_same_bound(self, small_hierarchy):
        """At the same user error bound SZ3MR's two optimizations (padding and
        tighter early-level bounds) can only improve the reconstruction; the
        compression-ratio trade-off they buy is evaluated in the benchmarks,
        not asserted here (it needs paper-scale unit blocks to pay off)."""
        reference = small_hierarchy.to_uniform()
        eb = 0.05
        baseline = MultiResolutionCompressor(
            compressor="sz3", arrangement="linear", padding=False, adaptive_eb=False, unit_size=8
        )
        ours = SZ3MRCompressor(unit_size=8)
        comp_base, deco_base = baseline.roundtrip_hierarchy(small_hierarchy, eb)
        comp_ours, deco_ours = ours.roundtrip_hierarchy(small_hierarchy, eb)
        assert psnr(reference, deco_ours.to_uniform()) >= psnr(reference, deco_base.to_uniform()) - 0.25
        # the overhead of padding + adaptive bounds stays within a sane factor
        assert comp_ours.compression_ratio >= 0.4 * comp_base.compression_ratio
