"""Parametrized v1 container round trips and hardened-reader error paths.

Covers every merge arrangement (linear / stack / adjacency) crossed with the
padded and unpadded preparation paths, which is the full matrix of level
encodings :mod:`repro.insitu.io` has to serialise, plus the corruption
handling added to the v1 readers (truncation, foreign files, version skew,
v2 containers opened with the v1 reader).
"""

import json
import struct

import numpy as np
import pytest

from repro.compressors.errors import DecompressionError
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.insitu.io import (
    read_compressed_array,
    read_compressed_hierarchy,
    write_compressed_hierarchy,
)
from repro.store import BlockLevel, write_container

EB = 0.05


@pytest.mark.parametrize("arrangement", ["linear", "stack", "adjacency"])
@pytest.mark.parametrize("padding", [True, False], ids=["padded", "unpadded"])
def test_hierarchy_io_roundtrip_all_arrangements(
    tmp_path, small_hierarchy, arrangement, padding
):
    """Write/read must be lossless for every arrangement x padding combination.

    Padding only engages on the linear+SZ3 path (the paper's rule); for the
    other arrangements the flag is accepted and ignored, so the parametrization
    still exercises both preparation code paths everywhere it exists.
    """
    mrc = MultiResolutionCompressor(
        compressor="sz3", arrangement=arrangement, padding=padding, unit_size=8
    )
    compressed = mrc.compress_hierarchy(small_hierarchy, EB)
    path = tmp_path / f"{arrangement}_{padding}.rpmh"
    nbytes = write_compressed_hierarchy(path, compressed)
    assert path.stat().st_size == nbytes

    restored = read_compressed_hierarchy(path)
    assert restored.compression_ratio == pytest.approx(
        compressed.compression_ratio, rel=1e-6
    )
    for lvl, restored_lvl in zip(compressed.levels, restored.levels):
        assert restored_lvl.arrangement.kind == arrangement
        assert (restored_lvl.pad_info is not None) == (lvl.pad_info is not None)

    decompressed = mrc.decompress_hierarchy(restored, small_hierarchy)
    for orig, new in zip(small_hierarchy.levels, decompressed.levels):
        assert np.abs(orig.data - new.data)[orig.mask].max() <= EB * (1 + 1e-9)


def test_padding_engages_only_on_linear(small_hierarchy):
    padded = MultiResolutionCompressor(arrangement="linear", padding=True, unit_size=8)
    stacked = MultiResolutionCompressor(arrangement="stack", padding=True, unit_size=8)
    comp_padded = padded.compress_hierarchy(small_hierarchy, EB)
    comp_stacked = stacked.compress_hierarchy(small_hierarchy, EB)
    assert any(lvl.pad_info is not None for lvl in comp_padded.levels)
    assert all(lvl.pad_info is None for lvl in comp_stacked.levels)


class TestHardenedReaders:
    @pytest.fixture()
    def v1_file(self, tmp_path, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        path = tmp_path / "good.rpmh"
        write_compressed_hierarchy(path, mrc.compress_hierarchy(small_hierarchy, EB))
        return path

    def test_truncated_file_names_path(self, tmp_path, v1_file):
        blob = v1_file.read_bytes()
        cut = tmp_path / "cut.rpmh"
        cut.write_bytes(blob[: int(len(blob) * 0.6)])
        with pytest.raises(DecompressionError, match=str(cut)):
            read_compressed_hierarchy(cut)

    def test_header_longer_than_file(self, tmp_path):
        path = tmp_path / "lying.rpmh"
        path.write_bytes(b"RPMH" + struct.pack("<I", 10**6) + b"{}")
        with pytest.raises(DecompressionError, match="truncated container header"):
            read_compressed_hierarchy(path)

    def test_garbage_header_json(self, tmp_path):
        body = b"this is not json at all"
        path = tmp_path / "garbage.rpmh"
        path.write_bytes(b"RPMH" + struct.pack("<I", len(body)) + body)
        with pytest.raises(DecompressionError, match="corrupt container header"):
            read_compressed_hierarchy(path)

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.rpmh"
        path.write_bytes(b"\x89PNG\r\n\x1a\n" + b"\x00" * 32)
        with pytest.raises(DecompressionError, match="bad magic"):
            read_compressed_hierarchy(path)

    def test_tiny_file(self, tmp_path):
        path = tmp_path / "tiny.rpmh"
        path.write_bytes(b"RP")
        with pytest.raises(DecompressionError, match="truncated"):
            read_compressed_hierarchy(path)

    def test_version_skew_rejected(self, tmp_path):
        body = json.dumps({"format_version": 7, "levels": []}).encode()
        path = tmp_path / "future.rpmh"
        path.write_bytes(b"RPMH" + struct.pack("<I", len(body)) + body)
        with pytest.raises(DecompressionError, match="format version 7"):
            read_compressed_hierarchy(path)

    def test_v2_container_redirects_to_store(self, tmp_path, smooth_field_3d):
        mrc = MultiResolutionCompressor(unit_size=8)
        block_set = mrc.prepare_unit_blocks(smooth_field_3d, mask=None)
        payloads = [p.to_bytes() for p in mrc.encode_unit_blocks(block_set, EB)]
        path = tmp_path / "v2.rps2"
        write_container(
            path,
            [
                BlockLevel(
                    level=0,
                    level_shape=block_set.level_shape,
                    unit_size=block_set.unit_size,
                    coords=block_set.coords,
                    payloads=payloads,
                )
            ],
            error_bound=EB,
        )
        with pytest.raises(DecompressionError, match="repro.store"):
            read_compressed_hierarchy(path)

    def test_v1_files_remain_readable(self, v1_file, small_hierarchy):
        mrc = MultiResolutionCompressor(unit_size=8)
        restored = read_compressed_hierarchy(v1_file)
        decompressed = mrc.decompress_hierarchy(restored, small_hierarchy)
        for orig, new in zip(small_hierarchy.levels, decompressed.levels):
            assert np.abs(orig.data - new.data)[orig.mask].max() <= EB * (1 + 1e-9)

    def test_missing_file_names_path(self, tmp_path):
        path = tmp_path / "absent.rpmh"
        with pytest.raises(DecompressionError, match=str(path)):
            read_compressed_hierarchy(path)

    def test_truncated_compressed_array(self, tmp_path):
        body = json.dumps({"codec": "sz3"}).encode()
        path = tmp_path / "cut.rpca"
        path.write_bytes(b"RPCA" + struct.pack("<I", len(body) + 50) + body)
        with pytest.raises(DecompressionError, match=str(path)):
            read_compressed_array(path)
