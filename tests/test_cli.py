"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import s3d_field


@pytest.fixture()
def field_file(tmp_path):
    field = s3d_field((24, 24, 24), seed="cli-test")
    path = tmp_path / "field.npy"
    np.save(path, field)
    return path, field


class TestCompressDecompress:
    @pytest.mark.parametrize("codec", ["sz3", "sz2", "zfp"])
    def test_roundtrip_respects_error_bound(self, tmp_path, field_file, codec, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        recon_path = tmp_path / "recon.npy"
        eb = 0.01

        assert main([
            "compress", str(path), str(out), "--codec", codec,
            "--error-bound", str(eb), "--relative",
        ]) == 0
        assert out.exists()
        assert "ratio" in capsys.readouterr().out

        assert main(["decompress", str(out), str(recon_path)]) == 0
        recon = np.load(recon_path)
        assert recon.shape == field.shape
        assert np.abs(recon - field).max() <= eb * (field.max() - field.min()) * (1 + 1e-9)

    def test_postprocess_plan_stored_and_applied(self, tmp_path, field_file, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        eb = 0.02
        main([
            "compress", str(path), str(out), "--codec", "zfp",
            "--error-bound", str(eb), "--relative", "--postprocess",
        ])
        raw_path = tmp_path / "raw.npy"
        post_path = tmp_path / "post.npy"
        main(["decompress", str(out), str(raw_path), "--no-postprocess"])
        main(["decompress", str(out), str(post_path)])
        raw = np.load(raw_path)
        post = np.load(post_path)
        capsys.readouterr()
        # the post-processed output is at least as close to the original
        assert np.mean((post - field) ** 2) <= np.mean((raw - field) ** 2) + 1e-12

    def test_sz2_block_size_option(self, tmp_path, field_file, capsys):
        path, _ = field_file
        out = tmp_path / "f.rpca"
        main(["compress", str(path), str(out), "--codec", "sz2", "--block-size", "4",
              "--error-bound", "0.01", "--relative"])
        capsys.readouterr()
        main(["info", str(out)])
        info = json.loads(capsys.readouterr().out)
        assert info["metadata"]["block_size"] == 4


class TestInfoAndEvaluate:
    def test_info_reports_ratio_and_shape(self, tmp_path, field_file, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        main(["compress", str(path), str(out), "--codec", "sz3",
              "--error-bound", "0.01", "--relative"])
        capsys.readouterr()
        assert main(["info", str(out)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["codec"] == "sz3"
        assert tuple(info["shape"]) == field.shape
        assert info["compression_ratio"] > 1.0

    def test_evaluate_prints_metrics(self, tmp_path, field_file, capsys):
        path, field = field_file
        noisy = tmp_path / "noisy.npy"
        np.save(noisy, field + 0.01 * field.std())
        assert main(["evaluate", str(path), str(noisy)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and "SSIM" in out and "max error" in out

    def test_evaluate_shape_mismatch_exits(self, tmp_path, field_file):
        path, _ = field_file
        other = tmp_path / "other.npy"
        np.save(other, np.zeros((4, 4)))
        with pytest.raises(SystemExit):
            main(["evaluate", str(path), str(other)])


class TestStoreCommands:
    @pytest.fixture()
    def populated_store(self, tmp_path, field_file):
        from repro.core.mr_compressor import MultiResolutionCompressor
        from repro.store import Store

        _, field = field_file
        root = tmp_path / "store"
        store = Store(root, MultiResolutionCompressor(unit_size=8))
        store.append("pressure", 2, field, 0.01)
        return root, field

    def test_store_ls(self, populated_store, capsys):
        root, _ = populated_store
        assert main(["store", "ls", str(root)]) == 0
        out = capsys.readouterr().out
        assert "pressure" in out and "1 entries" in out

    def test_store_get_decodes_level(self, tmp_path, populated_store, capsys):
        root, field = populated_store
        out_path = tmp_path / "level0.npy"
        assert main(["store", "get", str(root), "pressure", "2", str(out_path)]) == 0
        recon = np.load(out_path)
        assert recon.shape == field.shape
        assert np.abs(recon - field).max() <= 0.01 * (1 + 1e-9)

    def test_store_roi_touches_only_intersecting_blocks(self, tmp_path, populated_store, capsys):
        root, field = populated_store
        out_path = tmp_path / "roi.npy"
        assert main([
            "store", "roi", str(root), "pressure", "2", str(out_path),
            "--bbox", "0:8,0:8,0:8",
        ]) == 0
        out = capsys.readouterr().out
        # 24^3 at unit 8 is 27 blocks; the bbox covers exactly one.
        assert "decoded 1/27 blocks" in out
        roi = np.load(out_path)
        assert roi.shape == (8, 8, 8)
        assert np.abs(roi - field[:8, :8, :8]).max() <= 0.01 * (1 + 1e-9)

    def test_store_read_numpy_style_index(self, tmp_path, populated_store, capsys):
        root, field = populated_store
        out_path = tmp_path / "read.npy"
        assert main([
            "store", "read", str(root), "pressure", "2", str(out_path),
            "--index", "10:20,:,::2",
        ]) == 0
        out = capsys.readouterr().out
        assert "decoded" in out and "blocks" in out
        data = np.load(out_path)
        assert data.shape == (10, 24, 12)
        assert np.abs(data - field[10:20, :, ::2]).max() <= 0.01 * (1 + 1e-9)

    def test_store_read_negative_and_ellipsis(self, tmp_path, populated_store):
        root, field = populated_store
        out_path = tmp_path / "plane.npy"
        # A leading '-' needs the --index=... spelling so argparse does not
        # mistake the value for a flag.
        assert main([
            "store", "read", str(root), "pressure", "2", str(out_path),
            "--index=-1,...",
        ]) == 0
        data = np.load(out_path)
        assert data.shape == (24, 24)
        assert np.abs(data - field[-1]).max() <= 0.01 * (1 + 1e-9)

    def test_store_read_remote_matches_local(
        self, tmp_path, serve_daemon, serve_store, capsys
    ):
        remote_path = tmp_path / "remote.npy"
        local_path = tmp_path / "local.npy"
        assert main([
            "store", "read", "ignored-root", "density", "0", str(remote_path),
            "--index", "10:20,:,::2", "--remote", serve_daemon.address,
        ]) == 0
        out = capsys.readouterr().out
        assert f"via {serve_daemon.address}" in out and "daemon decoded" in out
        assert main([
            "store", "read", str(serve_store.root), "density", "0", str(local_path),
            "--index", "10:20,:,::2",
        ]) == 0
        assert np.array_equal(np.load(remote_path), np.load(local_path))

    def test_store_read_remote_propagates_daemon_errors(self, serve_daemon, tmp_path):
        with pytest.raises(SystemExit, match="store has no entry nope/00000"):
            main([
                "store", "read", "ignored-root", "nope", "0",
                str(tmp_path / "o.npy"), "--index", "0",
                "--remote", serve_daemon.address,
            ])

    def test_store_read_remote_connection_refused_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot connect to daemon"):
            main([
                "store", "read", "ignored-root", "f", "0", str(tmp_path / "o.npy"),
                "--index", "0", "--remote", "127.0.0.1:1",
            ])

    def test_serve_rejects_bad_address(self, populated_store):
        root, _ = populated_store
        with pytest.raises(SystemExit, match="bad daemon address"):
            main(["serve", str(root), "--addr", "nonsense"])

    def test_serve_subprocess_sigterm_exits_cleanly(self, populated_store):
        # The contract CI's smoke job relies on: a real `repro serve` process
        # stops promptly with exit code 0 on SIGTERM, reporting its counters.
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        root, _ = populated_store
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(root),
             "--addr", "127.0.0.1:0", "--seconds", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving" in banner
            address = banner.split(" at ")[1].split(" ")[0]
            from repro.serve import RemoteStore

            with RemoteStore(address) as client:
                assert "pressure" in client.fields()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "daemon stopped" in out

    def test_store_read_bad_index_exits(self, populated_store, tmp_path):
        root, _ = populated_store
        for bad in ("1:2:3:4", "a:b", "spam"):
            with pytest.raises(SystemExit, match="bad index"):
                main(["store", "read", str(root), "pressure", "2",
                      str(tmp_path / "o.npy"), "--index", bad])

    def test_store_read_empty_selection_exits(self, populated_store, tmp_path):
        root, _ = populated_store
        with pytest.raises(SystemExit, match="empty after clamping"):
            main(["store", "read", str(root), "pressure", "2",
                  str(tmp_path / "o.npy"), "--index", "5:5"])

    def test_store_missing_entry_exits(self, populated_store, tmp_path):
        root, _ = populated_store
        with pytest.raises(SystemExit):
            main(["store", "get", str(root), "density", "0", str(tmp_path / "o.npy")])

    def test_store_bad_bbox_exits(self, populated_store, tmp_path):
        root, _ = populated_store
        with pytest.raises(SystemExit):
            main(["store", "roi", str(root), "pressure", "2", str(tmp_path / "o.npy"),
                  "--bbox", "0-8,0-8"])

    def test_store_not_a_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "ls", str(tmp_path / "missing")])

    def test_store_ls_rejects_plain_directory_without_mutating_it(self, tmp_path):
        plain = tmp_path / "not_a_store"
        plain.mkdir()
        (plain / "somefile.txt").write_text("hello")
        with pytest.raises(SystemExit, match="manifest"):
            main(["store", "ls", str(plain)])
        # A read-only query must not leave a manifest behind.
        assert sorted(p.name for p in plain.iterdir()) == ["somefile.txt"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "a.npy", "b.rpca", "--codec", "mgard",
                                       "--error-bound", "0.1"])

    def test_wrong_ndim_input_exits(self, tmp_path):
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros((2, 2, 2, 2)))
        with pytest.raises(SystemExit):
            main(["compress", str(bad), str(tmp_path / "o.rpca"), "--error-bound", "0.1"])
