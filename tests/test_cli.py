"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import s3d_field


@pytest.fixture()
def field_file(tmp_path):
    field = s3d_field((24, 24, 24), seed="cli-test")
    path = tmp_path / "field.npy"
    np.save(path, field)
    return path, field


class TestCompressDecompress:
    @pytest.mark.parametrize("codec", ["sz3", "sz2", "zfp"])
    def test_roundtrip_respects_error_bound(self, tmp_path, field_file, codec, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        recon_path = tmp_path / "recon.npy"
        eb = 0.01

        assert main([
            "compress", str(path), str(out), "--codec", codec,
            "--error-bound", str(eb), "--relative",
        ]) == 0
        assert out.exists()
        assert "ratio" in capsys.readouterr().out

        assert main(["decompress", str(out), str(recon_path)]) == 0
        recon = np.load(recon_path)
        assert recon.shape == field.shape
        assert np.abs(recon - field).max() <= eb * (field.max() - field.min()) * (1 + 1e-9)

    def test_postprocess_plan_stored_and_applied(self, tmp_path, field_file, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        eb = 0.02
        main([
            "compress", str(path), str(out), "--codec", "zfp",
            "--error-bound", str(eb), "--relative", "--postprocess",
        ])
        raw_path = tmp_path / "raw.npy"
        post_path = tmp_path / "post.npy"
        main(["decompress", str(out), str(raw_path), "--no-postprocess"])
        main(["decompress", str(out), str(post_path)])
        raw = np.load(raw_path)
        post = np.load(post_path)
        capsys.readouterr()
        # the post-processed output is at least as close to the original
        assert np.mean((post - field) ** 2) <= np.mean((raw - field) ** 2) + 1e-12

    def test_sz2_block_size_option(self, tmp_path, field_file, capsys):
        path, _ = field_file
        out = tmp_path / "f.rpca"
        main(["compress", str(path), str(out), "--codec", "sz2", "--block-size", "4",
              "--error-bound", "0.01", "--relative"])
        capsys.readouterr()
        main(["info", str(out)])
        info = json.loads(capsys.readouterr().out)
        assert info["metadata"]["block_size"] == 4


class TestInfoAndEvaluate:
    def test_info_reports_ratio_and_shape(self, tmp_path, field_file, capsys):
        path, field = field_file
        out = tmp_path / "field.rpca"
        main(["compress", str(path), str(out), "--codec", "sz3",
              "--error-bound", "0.01", "--relative"])
        capsys.readouterr()
        assert main(["info", str(out)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["codec"] == "sz3"
        assert tuple(info["shape"]) == field.shape
        assert info["compression_ratio"] > 1.0

    def test_evaluate_prints_metrics(self, tmp_path, field_file, capsys):
        path, field = field_file
        noisy = tmp_path / "noisy.npy"
        np.save(noisy, field + 0.01 * field.std())
        assert main(["evaluate", str(path), str(noisy)]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out and "SSIM" in out and "max error" in out

    def test_evaluate_shape_mismatch_exits(self, tmp_path, field_file):
        path, _ = field_file
        other = tmp_path / "other.npy"
        np.save(other, np.zeros((4, 4)))
        with pytest.raises(SystemExit):
            main(["evaluate", str(path), str(other)])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "a.npy", "b.rpca", "--codec", "mgard",
                                       "--error-bound", "0.1"])

    def test_wrong_ndim_input_exits(self, tmp_path):
        bad = tmp_path / "bad.npy"
        np.save(bad, np.zeros((2, 2, 2, 2)))
        with pytest.raises(SystemExit):
            main(["compress", str(bad), str(tmp_path / "o.rpca"), "--error-bound", "0.1"])
