"""``Store.adopt`` / ``Store.drop``: the primitives live rebalancing leans on.

Rebalancing moves containers between shard stores with adopt (copy, validate,
catalog) then drop (uncatalog, unlink); these tests pin the edge cases that
make that sequence safe against collisions, torn files and concurrent
readers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import Store
from repro.store.format import ContainerReader


@pytest.fixture()
def source_store(tmp_path, smooth_field_2d):
    from repro.core.mr_compressor import MultiResolutionCompressor

    store = Store(tmp_path / "src", MultiResolutionCompressor(unit_size=8))
    store.append("density", 0, smooth_field_2d, 0.05)
    store.append("density", 1, smooth_field_2d * 2.0, 0.05)
    return store


def container_path(store: Store, field: str, step: int):
    return store.root / store.entry(field, step).path


def test_adopt_collision_requires_overwrite(tmp_path, source_store):
    dest = Store(tmp_path / "dst")
    src = container_path(source_store, "density", 0)
    dest.adopt("density", 0, src)
    with pytest.raises(ValueError, match="overwrite=True"):
        dest.adopt("density", 0, src)
    # overwrite=True replaces cleanly.
    other = container_path(source_store, "density", 1)
    entry = dest.adopt("density", 0, other, overwrite=True)
    assert np.array_equal(
        np.asarray(dest.array("density", 0)[...]),
        np.asarray(source_store.array("density", 1)[...]),
    )
    assert entry.n_blocks == source_store.entry("density", 1).n_blocks


def test_adopt_truncated_container_is_rejected_and_not_cataloged(tmp_path, source_store):
    src = container_path(source_store, "density", 0)
    truncated = tmp_path / "torn.rps2"
    truncated.write_bytes(src.read_bytes()[: src.stat().st_size // 2])
    dest = Store(tmp_path / "dst")
    with pytest.raises(Exception):  # noqa: B017 - any parse failure, never a catalog row
        dest.adopt("density", 0, truncated)
    assert len(dest) == 0
    # Nothing landed in the store tree: no half-copied target, no tmp litter.
    leftovers = [p for p in dest.root.rglob("*") if p.name != "manifest.json"]
    assert leftovers == []


def test_adopt_garbage_file_is_rejected(tmp_path):
    junk = tmp_path / "junk.rps2"
    junk.write_bytes(b"this is not a container at all")
    dest = Store(tmp_path / "dst")
    with pytest.raises(Exception):  # noqa: B017
        dest.adopt("junk", 0, junk)
    assert len(dest) == 0


def test_adopt_revalidates_the_copy_not_just_the_source(tmp_path, source_store, monkeypatch):
    """A short write during the copy must not be cataloged either."""
    import shutil as _shutil

    import repro.store.catalog as catalog_mod

    src = container_path(source_store, "density", 0)

    def short_copy(a, b, *args, **kwargs):
        _shutil.copyfile(a, b)
        with open(b, "r+b") as fh:
            fh.truncate(src.stat().st_size // 2)

    monkeypatch.setattr(catalog_mod.shutil, "copyfile", short_copy)
    dest = Store(tmp_path / "dst")
    with pytest.raises(Exception):  # noqa: B017
        dest.adopt("density", 0, src)
    assert len(dest) == 0
    leftovers = [p for p in dest.root.rglob("*.tmp")]
    assert leftovers == []


def test_adopt_while_reader_holds_source_mmap(tmp_path, source_store):
    """Adopt (and even dropping the source) never disturbs an open reader."""
    src = container_path(source_store, "density", 0)
    reference = np.asarray(source_store.array("density", 0)[...])
    reader = ContainerReader(src)
    # One decode opens the payload mmap; the reader now pins the bytes.
    reader.decode_entries([0])
    assert reader.payload_source == "mmap"
    try:
        dest = Store(tmp_path / "dst")
        dest.adopt("density", 0, src)
        # The rebalance sequence then drops the source (unlinks the file);
        # on POSIX the mmap keeps the old bytes alive until the reader closes.
        source_store.drop("density", 0)
        assert not src.exists()
        blocks = reader.decode_entries(np.arange(reader.n_blocks))
        assert len(blocks) == reader.n_blocks
        assert np.array_equal(np.asarray(dest.array("density", 0)[...]), reference)
    finally:
        reader.close()


def test_adopt_in_root_containers_are_cataloged_in_place(tmp_path, source_store):
    dest = Store(tmp_path / "dst")
    target = dest.root / "density" / "step00000.rps2"
    target.parent.mkdir(parents=True)
    import shutil

    shutil.copyfile(container_path(source_store, "density", 0), target)
    entry = dest.adopt("density", 0, target)
    assert entry.path == "density/step00000.rps2"
    # No second copy was made.
    assert [p.name for p in (dest.root / "density").iterdir()] == ["step00000.rps2"]


def test_drop_removes_entry_and_file(tmp_path, source_store):
    dest = Store(tmp_path / "dst")
    dest.adopt("density", 0, container_path(source_store, "density", 0))
    dest.adopt("density", 1, container_path(source_store, "density", 1))
    dropped = dest.drop("density", 0)
    assert dropped.key == "density/00000"
    assert len(dest) == 1
    assert not (dest.root / dropped.path).exists()
    # The manifest rewrite is visible to a fresh process immediately.
    assert [e.key for e in Store(dest.root).entries()] == ["density/00001"]
    with pytest.raises(KeyError, match="store has no entry density/00000"):
        dest.drop("density", 0)


def test_drop_keep_file_only_uncatalogs(tmp_path, source_store):
    dest = Store(tmp_path / "dst")
    dest.adopt("density", 0, container_path(source_store, "density", 0))
    dropped = dest.drop("density", 0, delete_file=False)
    assert len(dest) == 0
    assert (dest.root / dropped.path).exists()


def test_drop_prunes_emptied_field_directory(tmp_path, source_store):
    dest = Store(tmp_path / "dst")
    dest.adopt("density", 0, container_path(source_store, "density", 0))
    dest.drop("density", 0)
    assert not (dest.root / "density").exists()
