#!/usr/bin/env python
"""Adaptive-data compression of a WarpX-like uniform field via ROI extraction.

WarpX does not fully support AMR, so the paper converts its uniform grids to
adaptive (two-level) data with range-based ROI extraction before compressing.
This example reproduces that path end to end and sweeps the error bound to
produce a small rate-distortion table comparing the original SZ3 baseline and
SZ3MR (the Fig. 17-left scenario).

Run with:  python examples/warpx_adaptive_roi.py
"""

from __future__ import annotations

from repro.analysis import psnr, ssim
from repro.api import CodecSpec, ErrorBound
from repro.core.roi import extract_roi
from repro.datasets import warpx_ez_field


def main() -> None:
    field = warpx_ez_field(shape=(32, 32, 256), seed="warpx-example")

    # Uniform -> adaptive: keep the 50% most important blocks at full resolution.
    roi = extract_roi(field, roi_fraction=0.5, block_size=8)
    print(f"ROI extraction: fine level density {roi.hierarchy.levels[0].density:.0%}, "
          f"storage reduction {roi.storage_reduction:.2f}x before compression")

    variants = {
        "Baseline-SZ3": CodecSpec(kind="sz3", padding=False).build(),
        "SZ3MR (pad+eb)": CodecSpec.sz3mr().build(),
    }

    print(f"\n{'eb (rel)':>10} {'variant':>16} {'CR':>8} {'PSNR':>8} {'SSIM':>8}")
    for fraction in (0.005, 0.01, 0.02, 0.04):
        eb = ErrorBound.rel(fraction)
        for name, compressor in variants.items():
            compressed, decompressed = compressor.roundtrip_hierarchy(roi.hierarchy, eb)
            reconstruction = decompressed.to_uniform()
            print(
                f"{fraction:>10.3f} {name:>16} "
                f"{compressed.compression_ratio:>8.1f} "
                f"{psnr(field, reconstruction):>8.2f} "
                f"{ssim(field, reconstruction):>8.4f}"
            )


if __name__ == "__main__":
    main()
