#!/usr/bin/env python
"""Lazy NumPy-style reads from a block-indexed compressed store.

The example simulates a short in-situ run declared through the
:class:`repro.Pipeline` builder with a store sink (block-level v2 containers
+ JSON catalog), then plays the post-hoc analyst with the ``repro.array``
view API: *open returns a view, indexing triggers I/O*.  Slicing a stored
timestep decodes only the unit blocks the selection intersects — the rest of
the timestep stays compressed on disk — and the shared block cache serves
revisited blocks without decoding them again.

Run with:  python examples/store_random_access.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.amr.simulation import CollapsingDensitySimulation


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. In-situ: every step is appended to the store as it is produced,
        #    declared as a repro.api pipeline with a store sink.
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=7)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        store = repro.open_store(Path(tmp) / "run", codec)
        error_bound = 0.1
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(error_bound))
            .sink_store(store)
            .run(sim, n_steps=3)
        )

        print("catalog after the run:")
        print(store.summary())

        # 2. Post-hoc: `store[field, step]` is a lazy view — no payload has
        #    been touched yet.  NumPy-style indexing compiles straight into
        #    block queries.
        field = reports[-1].field_name
        step = reports[-1].step
        arr = store[field, step]
        print(f"\nopened {field} step {step}: {arr!r}")

        # A halo-core neighbourhood around the first occupied fine block.
        unit = arr.source.unit_size(0)
        first = arr.source.intersecting(0)[1][0]
        sl = tuple(
            slice(max(0, int(c) * unit - 2), min(n, (int(c) + 1) * unit + 2))
            for c, n in zip(first, arr.shape)
        )
        roi = arr[sl]
        stats = arr.stats
        print(f"\nroi {sl} of {field} step {step}:")
        print(f"  shape               : {roi.shape}")
        print(f"  blocks decoded      : {stats['blocks_decoded']} of {arr.n_blocks} in level 0")
        print(f"  payload bytes read  : {stats['payload_bytes_read']}")

        # 3. Revisiting the region hits the store's block cache: the
        #    cumulative decode count does not move, only the hit counter.
        again = arr[sl]
        stats = arr.stats
        print(f"  re-read decoded     : {stats['blocks_decoded']} blocks total "
              f"(cache hits {stats['cache_hits']})")
        assert np.array_equal(again, roi)

        # 4. The decoded region honours the error bound wherever level 0 owns
        #    the cells (other cells belong to coarser levels and read as 0).
        snapshot_level0 = sim.snapshot().data.levels[0]
        owned = snapshot_level0.mask[sl]
        if owned.any():
            err = np.abs(roi - snapshot_level0.data[sl])[owned].max()
            print(f"  max error (owned)   : {err:.4g} (bound {error_bound})")

        # 5. Other resolution levels are sibling views; strided and negative
        #    indexing work like NumPy and still decode only touched blocks.
        coarse = arr.level(1)
        corner = coarse[-4:, ::2, 0]
        print(f"  coarse level shape  : {coarse.shape} (corner sample {corner.shape})")


if __name__ == "__main__":
    main()
