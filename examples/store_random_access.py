#!/usr/bin/env python
"""Random-access reads from a block-indexed compressed store.

The example simulates a short in-situ run declared through the
:class:`repro.Pipeline` builder with a store sink (block-level v2 containers
+ JSON catalog), then plays the post-hoc analyst: list the catalog, decode
one small region of interest from the latest step, and show that only the
unit blocks intersecting the query were decompressed — the rest of the
timestep stays compressed on disk.

Run with:  python examples/store_random_access.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.amr.simulation import CollapsingDensitySimulation


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. In-situ: every step is appended to the store as it is produced,
        #    declared as a repro.api pipeline with a store sink.
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=7)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        store = repro.open_store(Path(tmp) / "run", codec)
        error_bound = 0.1
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(error_bound))
            .sink_store(store)
            .run(sim, n_steps=3)
        )

        print("catalog after the run:")
        print(store.summary())

        # 2. Post-hoc: open the latest step and query a small neighbourhood
        #    (a halo core, say) from the finest level.  The block index tells
        #    us where the refined region is without decoding anything.
        field = reports[-1].field_name
        step = reports[-1].step
        reader = store.get(field, step)
        info = reader.level_info(0)
        first_occupied = reader.index.coords[reader.index.select(0, info.ndim)[0]]
        bbox = tuple(
            (max(0, int(c) * info.unit_size - 2), min(n, (int(c) + 1) * info.unit_size + 2))
            for c, n in zip(first_occupied, info.level_shape)
        )
        roi = reader.read_roi(bbox, level=0)

        total = reader.level_info(0).n_blocks
        decoded = reader.stats["blocks_decoded"]
        print(f"\nroi {bbox} of {field} step {step}:")
        print(f"  shape               : {roi.shape}")
        print(f"  blocks decoded      : {decoded} of {total} in level 0")
        print(f"  payload bytes read  : {reader.stats['payload_bytes_read']}")

        # 3. The decoded region honours the error bound wherever level 0 owns
        #    the cells (other cells belong to coarser levels and read as 0).
        snapshot_level0 = sim.snapshot().data.levels[0]
        sl = tuple(slice(lo, hi) for lo, hi in bbox)
        owned = snapshot_level0.mask[sl]
        if owned.any():
            err = np.abs(roi - snapshot_level0.data[sl])[owned].max()
            print(f"  max error (owned)   : {err:.4g} (bound {error_bound})")

        # 4. Whole levels are still one call away when an analysis needs them.
        coarse = reader.read_level(1)
        print(f"  coarse level shape  : {coarse.shape}")


if __name__ == "__main__":
    main()
