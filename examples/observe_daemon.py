#!/usr/bin/env python
"""Watching the read path work: metrics scrape + request traces.

A short in-situ run fills a block store, a :class:`repro.serve.ReadDaemon`
serves it, and a few remote reads exercise the path.  Then the observability
surface built in ``repro.obs`` shows what happened:

* the **metrics registry** — every subsystem (cache, codec engine, container
  readers, daemon, client) reports counters/gauges/histograms into one
  process-wide snapshot, rendered here in Prometheus text format exactly as
  ``repro stats ADDR --prom`` would scrape it;
* **request tracing** — with the tracer on, each remote read produces one
  trace whose id travels inside the wire header, so the client-side span tree
  includes the daemon's fetch/decode/paste/send work;
* the **access log** — the daemon logs one structured line per request
  (JSON here), with ``--slow-ms``-style flagging of slow requests.

Run with:  python examples/observe_daemon.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.amr.simulation import CollapsingDensitySimulation
from repro.obs import TRACER, configure_logging, format_trace, render_prometheus
from repro.serve import ReadDaemon


def main() -> None:
    # Structured logging to stderr: -v equivalent, one JSON object per line.
    configure_logging(verbosity=1, json_lines=True, stream=sys.stderr)
    TRACER.enable()

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Produce a store (same pipeline as examples/serve_shared_cache).
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=23)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        store = repro.open_store(Path(tmp) / "run", codec)
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(0.1))
            .sink_store(store)
            .run(sim, n_steps=2)
        )
        field, step = reports[-1].field_name, reports[-1].step

        # 2. Serve and read: one cold read (fetch + decode + paste), one warm
        #    (cache hits only), one strided window.  slow_ms=0 flags every
        #    request so the example shows the slow-request log line too.
        with ReadDaemon(store, slow_ms=0.0) as daemon:
            with repro.connect(daemon.address) as remote:
                arr = remote[field, step]
                arr[...]                      # cold: decodes every block
                arr[...]                      # warm: served from the cache
                arr[4:20, ::2, :]             # strided window
                stats = remote.stats()
                families = stats["metrics"]

        # 3. The scrape, exactly as `repro stats ADDR --prom` renders it.
        print("=" * 72)
        print("Prometheus exposition (what a scraper would collect):")
        print("=" * 72)
        print(render_prometheus(families), end="")

    # 4. The slowest trace: the cold read, spanning both sides of the wire.
    #    The daemon records its post-sendmsg span a beat after the client
    #    returns, so give the worker thread a moment.
    time.sleep(0.1)
    slowest = max(
        TRACER.traces().values(),
        key=lambda spans: max((s["duration"] for s in spans), default=0.0),
    )
    print("=" * 72)
    print("Slowest request trace (client + daemon spans, one trace id):")
    print("=" * 72)
    print(format_trace(slowest))

    # 5. Headline numbers pulled from the scrape taken while the daemon was
    #    alive (its collectors unregister at shutdown).
    snap = {f["name"]: f for f in families}
    hits = snap["repro_cache_hits_total"]["samples"]
    decoded = snap["repro_read_blocks_total"]["samples"]
    print("=" * 72)
    print("cache hits by cache:", {tuple(s["labels"].items()): s["value"] for s in hits})
    print("read blocks by outcome:", {s["labels"]["outcome"]: s["value"] for s in decoded})

    TRACER.disable()


if __name__ == "__main__":
    main()
