#!/usr/bin/env python
"""Uncertainty visualization of compression error on isosurfaces (Fig. 14 scenario).

Compresses a Hurricane-like field aggressively with ZFP, models the sampled
compression error as an isovalue-conditioned normal distribution, and uses
probabilistic marching cubes to quantify how much of the isosurface that the
compression pruned is recovered by the uncertainty overlay.

Run with:  python examples/uncertainty_isosurface.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ErrorBound
from repro.compressors import ZFPCompressor
from repro.core.uncertainty import CompressionUncertaintyModel
from repro.datasets import hurricane_field
from repro.vis import cell_crossings, crossing_probability, extract_isosurface_points


def main() -> None:
    field = hurricane_field(shape=(64, 64, 16), seed="uncertainty-example")

    compressor = ZFPCompressor()
    # Aggressive compression, like the paper's CR=240.
    result = compressor.roundtrip(field, ErrorBound.rel(0.08))
    error_bound = result.compressed.error_bound
    decompressed = result.decompressed
    print(f"compression ratio          : {result.compression_ratio:.1f}x")

    isovalue = float(np.percentile(field, 90))
    original_cells = int(cell_crossings(field, isovalue).sum())
    decompressed_cells = int(cell_crossings(decompressed, isovalue).sum())
    print(f"isovalue                   : {isovalue:.3f} (90th percentile)")
    print(f"isosurface cells, original : {original_cells}")
    print(f"isosurface cells, decomp.  : {decompressed_cells}")

    # Model the compression error from the sampled blocks (reused from the
    # post-processing stage in the full workflow) and run probabilistic
    # marching cubes on the decompressed data.
    model = CompressionUncertaintyModel.from_sampling(field, compressor, error_bound)
    sigma = model.isovalue_conditioned_std(isovalue)
    print(f"isovalue-conditioned sigma : {sigma:.4f}")

    probability = crossing_probability(decompressed, sigma, isovalue)
    recovery = model.feature_recovery(field, decompressed, isovalue, probability_threshold=0.05)
    print(f"cells pruned by compression: {recovery.missing_cells}")
    print(f"recovered by uncertainty   : {recovery.recovered_cells} "
          f"({recovery.recovery_rate:.0%})")
    print(f"max crossing probability   : {probability.max():.2f}")

    # The vertex point cloud is what a renderer would triangulate; exporting it
    # (e.g. to .xyz) is enough to reproduce the visual comparison offline.
    points = extract_isosurface_points(decompressed, isovalue)
    print(f"isosurface vertices (deco.): {len(points)}")


if __name__ == "__main__":
    main()
