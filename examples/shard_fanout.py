#!/usr/bin/env python
"""One client, N stores: consistent-hash sharding behind a router.

A short in-situ run fills a store; a :class:`repro.shard.ShardMap` splits
its entries across three shard stores, each served by its own
:class:`repro.serve.ReadDaemon`, and a :class:`repro.shard.RouterDaemon`
speaks the ordinary wire protocol in front of them.  The client cannot
tell: ``repro.connect()`` at the router sees the merged catalog and every
read is bit-for-bit a local read.  Mid-demo a fourth shard joins and a live
rebalance (copy → switch → prune) migrates its share of the entries while
the same client connection keeps reading.

Run with:  python examples/shard_fanout.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.amr.simulation import CollapsingDensitySimulation
from repro.serve import ReadDaemon
from repro.shard import (
    RouterDaemon,
    ShardMap,
    ShardSpec,
    execute_plan,
    plan_for_stores,
    split_store,
)

SHARDS = ("s0", "s1", "s2")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. Produce a store (same pipeline as examples/serve_shared_cache).
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=11)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        single = repro.open_store(root / "run", codec)
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(0.1))
            .sink_store(single)
            .run(sim, n_steps=6)
        )
        field = reports[-1].field_name
        steps = sorted(e.step for e in single.entries())

        # 2. Split it across three shard stores.  Placement hashes only
        #    (field, step), so the same topology file always produces the
        #    same layout; `repro shard split topology.json RUN_DIR` is this
        #    call as a CLI.
        stores = {name: repro.open_store(root / name) for name in SHARDS}
        placement = ShardMap(
            [ShardSpec(name, "0:0", store=str(root / name)) for name in SHARDS]
        )
        placed = split_store(single, placement, stores=stores)
        for name in SHARDS:
            print(f"  shard {name}: {len(placed[name])} entries {placed[name]}")

        # 3. One daemon per shard, one router in front.  The router's map
        #    carries the live daemon addresses; `repro shard serve
        #    topology.json` is the CLI spelling.
        daemons = {name: ReadDaemon(stores[name]) for name in SHARDS}
        shard_map = ShardMap(
            [
                ShardSpec(name, daemons[name].start(), store=str(root / name))
                for name in SHARDS
            ]
        )
        router = RouterDaemon(shard_map)
        router.start()
        try:
            with repro.connect(router.address) as client:
                # 4. The client can't tell it from a single daemon: full
                #    catalog, bit-for-bit reads.
                assert len(client) == len(single)
                print(
                    f"router at {router.address} merges {len(client)} entries "
                    f"from {len(SHARDS)} shards"
                )
                for step in steps:
                    got = np.asarray(client[field, step][8:24, :, ::2])
                    want = np.asarray(single[field, step][8:24, :, ::2])
                    assert np.array_equal(got, want), step
                print(f"  {len(single)} routed reads, all bit-for-bit vs local")

                # 5. A fourth shard joins; the live rebalance migrates its
                #    share while this same connection keeps reading.
                stores["s3"] = repro.open_store(root / "s3")
                daemons["s3"] = ReadDaemon(stores["s3"])
                new_map = ShardMap(
                    list(shard_map.shards)
                    + [ShardSpec("s3", daemons["s3"].start(), store=str(root / "s3"))]
                )
                plan = plan_for_stores(shard_map, new_map, stores=stores)
                execute_plan(plan, shard_map, new_map, stores=stores, router=router)
                moves = ", ".join(f"{m.key}:{m.source}->{m.dest}" for m in plan)
                print(f"  rebalanced {len(plan)} entries live ({moves})")
                assert len(plan) >= 1  # the joiner really took over entries

                for step in steps:
                    got = np.asarray(client[field, step][..., 16])
                    want = np.asarray(single[field, step][..., 16])
                    assert np.array_equal(got, want), step
                print("  post-rebalance reads still bit-for-bit, same connection")

                # 6. Merged observability: per-shard counters and labeled
                #    metric families through one scrape point
                #    (`repro stats ROUTER_ADDR --prom`).
                stats = client.stats()
                per_shard = {n: s["reads"] for n, s in sorted(stats["shards"].items())}
                assert stats["reads"] == sum(per_shard.values())
                print(
                    f"  merged stats: {stats['reads']} shard reads {per_shard}, "
                    f"router relayed {stats['router']['relay_bytes']} payload bytes"
                )
                labels = {
                    sample["labels"].get("shard")
                    for family in stats["metrics"]
                    for sample in family["samples"]
                }
                assert {"router", "s0", "s1", "s2", "s3"} <= labels
        finally:
            router.stop()
            for daemon in daemons.values():
                daemon.stop()
        print("router and shard daemons stopped cleanly")


if __name__ == "__main__":
    main()
