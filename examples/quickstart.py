#!/usr/bin/env python
"""Quickstart: compress a uniform scientific field with the full workflow.

The example generates a small synthetic Nyx-like cosmology density field,
runs the end-to-end workflow of the paper (ROI extraction -> multi-resolution
conversion -> SZ3MR compression -> error-bounded Bezier post-processing) and
prints the resulting compression ratio and quality metrics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.workflow import MultiResolutionWorkflow
from repro.datasets import nyx_density_field


def main() -> None:
    # 1. A uniform field (stand-in for one field of a simulation snapshot).
    field = nyx_density_field(shape=(64, 64, 64), seed="quickstart")
    value_range = float(field.max() - field.min())

    # 2. Configure the workflow: SZ3MR (padding + adaptive error bounds),
    #    50% ROI at full resolution, Bezier post-processing on.
    workflow = MultiResolutionWorkflow(
        compressor="sz3",
        roi_fraction=0.5,
        roi_block_size=8,
        unit_size=16,
        postprocess=True,
        uncertainty=True,
    )

    # 3. Compress under an absolute error bound (1% of the value range here).
    error_bound = 0.01 * value_range
    result = workflow.compress_uniform(field, error_bound)

    # 4. Inspect the outcome.
    print(f"grid                : {field.shape}")
    print(f"error bound         : {error_bound:.4g} (1% of value range)")
    print(f"ROI storage saving  : {result.roi.storage_reduction:.2f}x before compression")
    print(f"compression ratio   : {result.compression_ratio:.1f}x")
    print(f"PSNR  (decompressed): {result.psnr:.2f} dB")
    print(f"PSNR  (post-proc.)  : {result.psnr_processed:.2f} dB")
    print(f"SSIM  (decompressed): {result.ssim:.4f}")
    print(f"SSIM  (post-proc.)  : {result.ssim_processed:.4f}")
    print(f"sampled error std   : {result.uncertainty.error_std():.4g}")

    # 5. The reconstructed field is a plain NumPy array ready for analysis.
    reconstruction = result.best_field
    print(f"reconstruction mean : {reconstruction.mean():.4f} (original {field.mean():.4f})")


if __name__ == "__main__":
    main()
