#!/usr/bin/env python
"""Quickstart: compress a uniform scientific field through the repro.api facade.

The example generates a small synthetic Nyx-like cosmology density field,
declares the paper's end-to-end workflow (ROI extraction -> multi-resolution
conversion -> SZ3MR compression -> error-bounded Bezier post-processing) as a
typed :class:`repro.WorkflowConfig`, runs it, and prints the resulting
compression ratio and quality metrics.  The same config serialises to JSON
and replays from the command line: ``repro run quickstart_config.json``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import json

import repro
from repro.datasets import nyx_density_field


def main() -> None:
    # 1. A uniform field (stand-in for one field of a simulation snapshot).
    field = nyx_density_field(shape=(64, 64, 64), seed="quickstart")

    # 2. Declare the run: SZ3MR (padding + adaptive error bounds), 50% ROI at
    #    full resolution, Bezier post-processing on, 1%-of-value-range bound.
    config = repro.WorkflowConfig(
        codec=repro.CodecSpec.sz3mr(unit_size=16),
        error_bound=repro.ErrorBound.rel(0.01),
        roi_fraction=0.5,
        roi_block_size=8,
        postprocess=True,
        uncertainty=True,
    )

    # 3. Run the workflow.  The ErrorBound spec is resolved against the data.
    result = repro.run_workflow(field, config)

    # 4. Inspect the outcome.
    print(f"grid                : {field.shape}")
    print(f"error bound         : {result.error_bound:.4g} ({config.error_bound.describe()})")
    print(f"ROI storage saving  : {result.roi.storage_reduction:.2f}x before compression")
    print(f"compression ratio   : {result.compression_ratio:.1f}x")
    print(f"PSNR  (decompressed): {result.psnr:.2f} dB")
    print(f"PSNR  (post-proc.)  : {result.psnr_processed:.2f} dB")
    print(f"SSIM  (decompressed): {result.ssim:.4f}")
    print(f"SSIM  (post-proc.)  : {result.ssim_processed:.4f}")
    print(f"sampled error std   : {result.uncertainty.error_std():.4g}")

    # 5. The reconstructed field is a plain NumPy array ready for analysis.
    reconstruction = result.best_field
    print(f"reconstruction mean : {reconstruction.mean():.4f} (original {field.mean():.4f})")

    # 6. The whole run is declarative: this JSON replays it bit-for-bit via
    #    `repro run config.json --input field.npy`.
    print(f"replayable config   : {json.dumps(config.to_dict(), sort_keys=True)[:72]}...")


if __name__ == "__main__":
    main()
