#!/usr/bin/env python
"""Anything that speaks HTTP can read the cluster: the gateway end to end.

A short in-situ run fills a store, a shard map splits it across three
:class:`repro.serve.ReadDaemon` shards behind a
:class:`repro.shard.RouterDaemon`, and a :class:`repro.gateway.GatewayDaemon`
mounts on the router — one HTTP origin in front of the whole cluster.  Then
three kinds of client hit it:

* raw ``urllib`` (standing in for curl / a browser / a dashboard) walks
  ``/health``, ``/catalog`` and ``/stats?format=prom``;
* :func:`repro.open_http` reads arrays lazily through
  :class:`repro.gateway.HTTPArray` — the same surface as ``repro.connect()``,
  bit-for-bit the same bytes;
* a deliberate mistake shows the typed error envelope: the daemon's
  ``KeyError`` crosses HTTP with its message intact.

Run with:  python examples/http_gateway.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

import repro
from repro.gateway import GatewayDaemon
from repro.serve import ReadDaemon
from repro.shard import RouterDaemon, ShardMap, ShardSpec, split_store

SHARDS = ("s0", "s1", "s2")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. Produce and shard a store (same pipeline as shard_fanout.py).
        from repro.amr.simulation import CollapsingDensitySimulation

        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=11)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        single = repro.open_store(root / "run", codec)
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(0.1))
            .sink_store(single)
            .run(sim, n_steps=4)
        )
        field = reports[-1].field_name
        stores = {name: repro.open_store(root / name) for name in SHARDS}
        placement = ShardMap(
            [ShardSpec(name, "0:0", store=str(root / name)) for name in SHARDS]
        )
        split_store(single, placement, stores=stores)

        # 2. Daemons up: three shards, one router, one gateway on top.
        daemons = {name: ReadDaemon(stores[name]) for name in SHARDS}
        shard_map = ShardMap(
            [
                ShardSpec(name, daemons[name].start(), store=str(root / name))
                for name in SHARDS
            ]
        )
        with RouterDaemon(shard_map) as router, GatewayDaemon(
            router.address, pool_size=4
        ) as gateway:
            gateway.start()
            base = f"http://{gateway.address}"
            print(f"gateway for {len(SHARDS)} shards at {base}/")

            # 3. Plain HTTP — what curl or a dashboard would see.
            health = json.load(urllib.request.urlopen(f"{base}/health"))
            print(f"/health: {health['n_entries']} entries, fields {health['fields']}")
            catalog = json.load(urllib.request.urlopen(f"{base}/catalog"))
            print(f"/catalog: {len(catalog['entries'])} rows")

            # 4. The lazy array surface, now over HTTP.  Bit-for-bit parity
            #    with the local store is the gateway fuzz tier's contract.
            remote = repro.open_http(gateway.address)
            step = max(e.step for e in single.entries())
            via_http = remote[field, step]
            local = single.array(field, step)
            plane = via_http[:, :, 16]
            assert np.array_equal(plane, np.asarray(local)[:, :, 16])
            roi = via_http.read_roi([(0, 16), (8, 24), (0, 32)])
            assert np.array_equal(roi, local.read_roi([(0, 16), (8, 24), (0, 32)]))
            print(
                f"read {field}/{step}: plane {plane.shape}, roi {roi.shape}, "
                f"{via_http.stats['blocks_decoded']} blocks decoded — "
                "bit-for-bit vs the local store"
            )

            # 5. Errors keep their types across the HTTP hop.
            try:
                remote.array("no-such-field", 0)
            except KeyError as exc:
                print(f"typed error over HTTP: KeyError({exc})")

            # 6. One scrape serves gateway *and* relayed shard metrics.
            prom = urllib.request.urlopen(f"{base}/stats?format=prom").read().decode()
            families = sorted(
                line.split()[2]
                for line in prom.splitlines()
                if line.startswith("# TYPE repro_gateway_")
            )
            print(f"/stats?format=prom: {len(prom.splitlines())} lines, "
                  f"gateway families {families[:3]}...")
            stats = json.load(urllib.request.urlopen(f"{base}/stats"))
            per_shard = {k: v["reads"] for k, v in stats["shards"].items()}
            print(f"shard-labeled reads via /stats: {per_shard}")
            remote.close()
        for daemon in daemons.values():
            daemon.stop()
        print("clean shutdown: gateway, router and shards all stopped")


if __name__ == "__main__":
    main()
