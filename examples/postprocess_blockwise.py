#!/usr/bin/env python
"""Error-bounded Bezier post-processing of block-wise compressors (SZ2 / ZFP).

Reproduces the §III-B scenario on a synthetic S3D combustion field: compress
with ZFP and SZ2, then apply the sampling-based adaptive post-processing and
compare PSNR/SSIM before and after, including the naive alternatives the
paper rules out (image filters, unclamped Bezier, fixed a = 1).

The reconstruction is consumed through the lazy read API:
``repro.decompress`` returns a :class:`repro.array.CompressedArray` view that
decodes on first access, and the vis/analysis helpers accept it directly.

Run with:  python examples/postprocess_blockwise.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import psnr, ssim
from repro.api import ErrorBound
from repro.compressors import SZ2Compressor, ZFPCompressor
from repro.core.postprocess import PostProcessor, bezier_boundary_smooth
from repro.datasets import s3d_field
from repro.filters import gaussian_blur, median_smooth
from repro.vis import extract_slice


def main() -> None:
    field = s3d_field(shape=(64, 64, 64), seed="postprocess-example")

    for name, compressor, kind in (
        ("ZFP", ZFPCompressor(), "zfp"),
        ("SZ2", SZ2Compressor(block_size=4), "sz2"),
    ):
        compressed = compressor.compress(field, ErrorBound.rel(0.02))
        error_bound = compressed.error_bound
        ratio = compressed.compression_ratio
        view = repro.decompress(compressed)  # lazy: nothing decoded yet
        mid_slice = extract_slice(view, axis=2, position=0.5)  # triggers decode
        assert mid_slice.shape == field.shape[:2]
        decompressed = np.asarray(view)  # served from memory after first access

        postprocessor = PostProcessor(kind)
        plan = postprocessor.plan(field, compressor, error_bound)
        processed = postprocessor.apply(decompressed, plan)

        # Alternatives the paper compares against (Table I / Fig. 12).
        blurred = gaussian_blur(decompressed, sigma=1.0)
        median = median_smooth(decompressed, size=3)
        fixed_a = bezier_boundary_smooth(
            decompressed, block_size=plan.block_size, error_bound=error_bound, intensity=1.0
        )

        print(f"\n=== {name}, CR = {ratio:.1f}, eb = 2% of range ===")
        print(f"  chosen intensities a = {plan.intensities} "
              f"(sample fraction {plan.sample_fraction:.2%})")
        rows = [
            ("decompressed", decompressed),
            ("gaussian blur", blurred),
            ("median filter", median),
            ("bezier, a=1", fixed_a),
            ("ours (dynamic a)", processed),
        ]
        for label, data in rows:
            print(f"  {label:<18} PSNR = {psnr(field, data):7.2f} dB   "
                  f"SSIM = {ssim(field, data):.4f}")


if __name__ == "__main__":
    main()
