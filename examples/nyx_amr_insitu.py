#!/usr/bin/env python
"""In-situ compression of an AMR cosmology simulation (Nyx-like scenario).

Drives the toy collapsing-density AMR simulation for several timesteps
through a declarative :class:`repro.Pipeline` (source -> compress -> v1
container sink), comparing the paper's SZ3MR configuration against the AMRIC
baseline on compression ratio, quality, and output-time breakdown (the
Table IV / Fig. 15 scenario at laptop scale).

Run with:  python examples/nyx_amr_insitu.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.amr.simulation import CollapsingDensitySimulation
from repro.insitu import InSituPipeline, read_compressed_hierarchy

N_STEPS = 4

VARIANTS = {
    "sz3mr": repro.CodecSpec.sz3mr(),
    "amric": repro.CodecSpec(kind="sz3", arrangement="stack"),
}


def run_pipeline(name: str, codec: "repro.CodecSpec", output_dir: Path) -> None:
    simulation = CollapsingDensitySimulation(
        shape=(64, 64, 64), block_size=8, fractions=[0.18, 0.82], seed="nyx-insitu-example"
    )
    # The rel bound tracks each snapshot's value range as the collapse deepens.
    reports = (
        repro.Pipeline(codec, repro.ErrorBound.rel(0.01))
        .sink_dir(output_dir / name)
        .run(simulation, N_STEPS)
    )

    print(f"\n=== {name} ({codec.build().describe()}) ===")
    for report in reports:
        print(
            f"  step {report.step}: CR={report.compression_ratio:6.1f}  "
            f"PSNR={report.psnr:6.2f} dB  "
            f"pre={report.preprocess_time * 1e3:6.1f} ms  "
            f"comp+write={report.compress_write_time * 1e3:6.1f} ms  "
            f"-> {report.output_path.name}"
        )
    totals = InSituPipeline.aggregate_timings(reports)
    print(
        f"  totals: pre-process {totals['pre-process']:.3f} s, "
        f"compress+write {totals['compress+write']:.3f} s, total {totals['total']:.3f} s"
    )

    # Demonstrate that the on-disk containers are self-contained.
    last = read_compressed_hierarchy(reports[-1].output_path)
    print(f"  re-read last container: {last.compression_ratio:.1f}x over {len(last.levels)} levels")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        output_dir = Path(tmp)
        for name, codec in VARIANTS.items():
            run_pipeline(name, codec, output_dir)


if __name__ == "__main__":
    main()
