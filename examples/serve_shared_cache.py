#!/usr/bin/env python
"""N clients, one warm cache: the read daemon in one process.

A short in-situ run fills a block store; a :class:`repro.serve.ReadDaemon`
then serves it over a local socket while several client threads — each with
its own connection, the way separate analysis processes would connect — read
*overlapping* windows of the same timestep.  The daemon's accounting shows
the point of the architecture: after the first pass over a region, no client
ever pays a decode again, and every result is bit-for-bit identical to a
local read.

Run with:  python examples/serve_shared_cache.py
"""

from __future__ import annotations

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

import repro
from repro.amr.simulation import CollapsingDensitySimulation
from repro.serve import ReadDaemon

N_CLIENTS = 4
READS_PER_CLIENT = 3


def client_task(addr: str, field: str, step: int, client_id: int):
    """One analysis client: own connection, overlapping strided windows."""
    with repro.connect(addr) as remote:
        arr = remote[field, step]
        lo = (client_id * 3) % 8
        window = (slice(lo, lo + 24), slice(None), slice(None, None, 2))
        results = [np.asarray(arr[window]) for _ in range(READS_PER_CLIENT)]
        return client_id, window, results, dict(arr.stats)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. Produce a store (same pipeline as examples/store_random_access).
        sim = CollapsingDensitySimulation(shape=(32, 32, 32), block_size=8, seed=11)
        codec = repro.CodecSpec.sz3mr(unit_size=8)
        store = repro.open_store(Path(tmp) / "run", codec)
        reports = (
            repro.Pipeline(codec, repro.ErrorBound.abs(0.1))
            .sink_store(store)
            .run(sim, n_steps=3)
        )
        field, step = reports[-1].field_name, reports[-1].step

        # 2. Serve it.  The daemon shares the store's block cache and codec
        #    engine; `repro serve RUN_DIR --addr ...` is this line as a CLI.
        with ReadDaemon(store) as daemon:
            addr = daemon.address
            print(f"daemon serving {store.root} at {addr}")

            # 3. Warm-up: one client pays the decode cost for the region.
            with repro.connect(addr) as remote:
                warm = remote[field, step]
                warm[0:28, :, ::2]
                print(
                    f"warm-up read: daemon decoded {warm.stats['blocks_decoded']} "
                    f"of {warm.stats['blocks_touched']} touched blocks"
                )

            cold_stats = daemon.stats()

            # 4. N clients, separate connections, overlapping windows.
            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                futures = [
                    pool.submit(client_task, addr, field, step, i)
                    for i in range(N_CLIENTS)
                ]
                outcomes = [f.result() for f in futures]

            warm_stats = daemon.stats()
            new_decodes = warm_stats["blocks_decoded"] - cold_stats["blocks_decoded"]
            total_reads = warm_stats["reads"] - cold_stats["reads"]
            print(
                f"{N_CLIENTS} clients x {READS_PER_CLIENT} overlapping reads "
                f"({total_reads} requests): {new_decodes} new decodes, "
                f"{warm_stats['cache']['hits']} lifetime cache hits"
            )
            assert total_reads == N_CLIENTS * READS_PER_CLIENT
            # Every block the clients touched was already warm: the daemon
            # decoded each touched block at most once, during warm-up.
            assert new_decodes == 0, "warm reads must not decode"

            # 5. Bit-for-bit equality with local reads, for every client.
            local = store[field, step]
            for client_id, window, results, stats in outcomes:
                expected = np.asarray(local[window])
                for got in results:
                    assert np.array_equal(got, expected)
                print(
                    f"  client {client_id}: window {window[0].start}:"
                    f"{window[0].stop} ok, cache hits {stats['cache_hits']}"
                )
        print("daemon stopped cleanly")


if __name__ == "__main__":
    main()
