#!/usr/bin/env bash
# One verification entry point for builders and CI: byte-compile the package,
# then run the tier-1 test suite.  Extra arguments are passed to pytest
# (e.g. `scripts/check.sh -m "not slow"` to skip benchmark-adjacent tests).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python -m compileall -q src
python -m pytest -x -q "$@"
