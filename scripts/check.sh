#!/usr/bin/env bash
# One verification entry point for builders and CI: byte-compile the package,
# lint it with the project rules, type-check the annotated packages (when
# mypy is available), then run the tier-1 test suite.  Extra arguments are
# passed to pytest (e.g. `scripts/check.sh -m "not slow"` to skip
# benchmark-adjacent tests).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python -m compileall -q src

# Project-aware lint: zero non-baseline findings or the build fails.
python -m repro.cli lint src/ --baseline lint-baseline.json

# mypy ships via requirements-dev.txt; skip quietly where it is not installed
# (the container image pins its own toolchain).
if python -c "import mypy" >/dev/null 2>&1; then
  python -m mypy --check-untyped-defs src/repro/obs src/repro/shard
else
  echo "check.sh: mypy not installed; skipping type check"
fi

python -m pytest -x -q "$@"
