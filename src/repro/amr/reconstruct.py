"""Restriction / prolongation operators and hierarchy flattening.

These are the standard AMR transfer operators: *restriction* averages fine
cells onto a coarser grid, *prolongation* injects coarse values back onto a
finer grid.  :func:`flatten_hierarchy` composes them to rebuild a uniform
finest-resolution field from a multi-resolution hierarchy — the operation the
paper performs before computing visualization/quality metrics on
multi-resolution data.
"""

from __future__ import annotations

import numpy as np

from repro.utils.blocks import downsample_mean, upsample_nearest, upsample_trilinear

__all__ = ["restrict", "prolong", "flatten_hierarchy", "level_footprint"]


def restrict(data: np.ndarray, factor: int = 2) -> np.ndarray:
    """Average ``factor``-sized cells to produce a coarser representation."""
    if factor == 1:
        return np.asarray(data, dtype=np.float64).copy()
    return downsample_mean(np.asarray(data, dtype=np.float64), factor)


def prolong(
    data: np.ndarray, factor: int = 2, order: str = "nearest", out_shape=None
) -> np.ndarray:
    """Up-sample a coarse array onto a finer grid.

    ``order`` is ``"nearest"`` (piecewise-constant injection) or ``"linear"``
    (separable linear interpolation).
    """
    data = np.asarray(data, dtype=np.float64)
    if factor == 1:
        out = data.copy()
    elif order == "nearest":
        out = upsample_nearest(data, factor)
    elif order == "linear":
        out = upsample_trilinear(data, factor, out_shape=out_shape)
    else:
        raise ValueError("order must be 'nearest' or 'linear'")
    if out_shape is not None:
        slices = tuple(slice(0, int(s)) for s in out_shape)
        out = out[slices]
        pads = [(0, int(s) - o) for s, o in zip(out_shape, out.shape)]
        if any(p[1] for p in pads):
            out = np.pad(out, pads, mode="edge")
    return out


def level_footprint(hierarchy, level_index: int) -> np.ndarray:
    """Boolean mask, at finest resolution, of cells owned by ``level_index``."""
    lvl = hierarchy.levels[level_index]
    factor = hierarchy.refinement_ratio**lvl.level
    mask = lvl.mask
    if factor > 1:
        mask = upsample_nearest(mask.astype(np.uint8), factor).astype(bool)
    return mask


def flatten_hierarchy(hierarchy, order: str = "nearest") -> np.ndarray:
    """Reconstruct the finest-resolution field from every level of a hierarchy.

    Coarse levels are prolonged to the finest resolution and then overwritten
    by finer levels wherever the finer level owns the cells, so the result
    honours the ownership masks exactly.
    """
    finest_shape = hierarchy.finest_shape
    out = np.zeros(finest_shape, dtype=np.float64)
    # Paint coarse to fine so finer data wins where owned.
    for lvl in reversed(hierarchy.levels):
        factor = hierarchy.refinement_ratio**lvl.level
        up = prolong(lvl.data, factor, order=order, out_shape=finest_shape)
        footprint = level_footprint(hierarchy, lvl.level)
        out[footprint] = up[footprint]
    return out
