"""Toy time-stepping simulations for the in-situ experiments.

The paper evaluates in-situ compression inside two real codes: the Nyx AMR
cosmology simulation and the WarpX electromagnetic (uniform grid) simulation.
Neither is available offline, so this module provides small stand-ins that
produce a stream of per-timestep snapshots with the same structural features:

* :class:`CollapsingDensitySimulation` — a density field whose contrast grows
  over time (a proxy for gravitational collapse), re-gridded into a 2-level
  AMR hierarchy each step with the paper's Nyx-T1 densities (18 % fine /
  82 % coarse by default).
* :class:`TravelingPulseSimulation` — a WarpX-like oscillating pulse
  travelling along the long axis of a uniform grid; the in-situ pipeline
  converts it to adaptive data via ROI extraction.

Both expose ``run(n_steps)`` yielding :class:`SimulationSnapshot` objects so
the in-situ pipeline can be written against a single interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.amr.grid import AMRHierarchy
from repro.amr.refinement import ValueRangeCriterion, build_hierarchy_from_uniform
from repro.utils.rng import default_rng

__all__ = [
    "SimulationSnapshot",
    "CollapsingDensitySimulation",
    "TravelingPulseSimulation",
]


@dataclass
class SimulationSnapshot:
    """One timestep of a simulation as handed to the in-situ pipeline."""

    step: int
    time: float
    field_name: str
    #: Uniform field for uniform-grid codes, or an AMR hierarchy for AMR codes.
    data: Union[np.ndarray, AMRHierarchy]

    @property
    def is_amr(self) -> bool:
        return isinstance(self.data, AMRHierarchy)


class CollapsingDensitySimulation:
    """Nyx-like AMR simulation: density contrast deepens over time.

    The initial condition is a smoothed log-normal random field; each step the
    field is raised to a power slightly above one (sharpening over-densities,
    the qualitative effect of gravitational collapse), renormalised to
    constant mean and lightly diffused.  Every step the field is re-gridded
    into an AMR hierarchy with the requested per-level fractions.
    """

    def __init__(
        self,
        shape: Tuple[int, int, int] = (64, 64, 64),
        n_levels: int = 2,
        block_size: int = 8,
        fractions: Optional[Sequence[float]] = None,
        collapse_rate: float = 0.08,
        diffusion_sigma: float = 0.4,
        seed: Union[int, str, None] = "nyx-insitu",
        field_name: str = "baryon_density",
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.n_levels = int(n_levels)
        self.block_size = int(block_size)
        self.fractions = list(fractions) if fractions is not None else [0.18, 0.82][: self.n_levels]
        if len(self.fractions) != self.n_levels:
            # Fall back to an even split when a custom level count is used.
            self.fractions = [1.0 / self.n_levels] * self.n_levels
        total = sum(self.fractions)
        self.fractions = [f / total for f in self.fractions]
        self.collapse_rate = float(collapse_rate)
        self.diffusion_sigma = float(diffusion_sigma)
        self.field_name = field_name
        self._rng = default_rng(seed)
        self._field = self._initial_field()
        self._step = 0

    def _initial_field(self) -> np.ndarray:
        noise = self._rng.standard_normal(self.shape)
        smooth = gaussian_filter(noise, sigma=max(2.0, min(self.shape) / 16.0))
        smooth = (smooth - smooth.mean()) / (smooth.std() + 1e-12)
        density = np.exp(1.2 * smooth)
        return density / density.mean()

    @property
    def current_field(self) -> np.ndarray:
        return self._field.copy()

    def advance(self) -> np.ndarray:
        """Advance one step and return the new uniform density field."""
        field = self._field
        # Sharpen over-densities; keep values positive and mean-normalised.
        field = np.power(field, 1.0 + self.collapse_rate)
        if self.diffusion_sigma > 0:
            field = gaussian_filter(field, sigma=self.diffusion_sigma)
        field = np.clip(field, 1e-12, None)
        field = field / field.mean()
        self._field = field
        self._step += 1
        return field.copy()

    def snapshot(self) -> SimulationSnapshot:
        """Current state re-gridded into an AMR hierarchy."""
        hierarchy = build_hierarchy_from_uniform(
            self._field,
            n_levels=self.n_levels,
            block_size=self.block_size,
            fractions=self.fractions,
            criterion=ValueRangeCriterion(),
            metadata={"simulation": "collapsing_density", "step": self._step},
        )
        return SimulationSnapshot(
            step=self._step,
            time=float(self._step),
            field_name=self.field_name,
            data=hierarchy,
        )

    def run(self, n_steps: int) -> Iterator[SimulationSnapshot]:
        """Yield a snapshot after each of ``n_steps`` advances."""
        for _ in range(int(n_steps)):
            self.advance()
            yield self.snapshot()


class TravelingPulseSimulation:
    """WarpX-like uniform-grid simulation of a travelling oscillating pulse.

    The field mimics the longitudinal electric field ``Ez`` of a laser
    wake-field stage: a Gaussian-envelope pulse oscillating along the long
    axis, followed by a lower-amplitude wake, moving forward every step.
    """

    def __init__(
        self,
        shape: Tuple[int, int, int] = (32, 32, 256),
        pulse_width: float = 0.06,
        wavelength: float = 0.04,
        wake_wavelength: float = 0.12,
        speed: float = 0.01,
        noise_level: float = 0.01,
        seed: Union[int, str, None] = "warpx-insitu",
        field_name: str = "Ez",
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.pulse_width = float(pulse_width)
        self.wavelength = float(wavelength)
        self.wake_wavelength = float(wake_wavelength)
        self.speed = float(speed)
        self.noise_level = float(noise_level)
        self.field_name = field_name
        self._rng = default_rng(seed)
        self._step = 0
        self._pulse_position = 0.3  # normalised position along the long axis

    def _field_at(self, position: float) -> np.ndarray:
        nx, ny, nz = self.shape
        x = np.linspace(-0.5, 0.5, nx)[:, None, None]
        y = np.linspace(-0.5, 0.5, ny)[None, :, None]
        z = np.linspace(0.0, 1.0, nz)[None, None, :]
        transverse = np.exp(-(x**2 + y**2) / (2 * 0.12**2))
        envelope = np.exp(-((z - position) ** 2) / (2 * self.pulse_width**2))
        carrier = np.cos(2 * np.pi * (z - position) / self.wavelength)
        pulse = envelope * carrier
        behind = np.clip(position - z, 0.0, None)
        wake = (
            0.35
            * np.exp(-behind / 0.25)
            * np.sin(2 * np.pi * behind / self.wake_wavelength)
            * (behind > 0)
        )
        field = transverse * (pulse + wake)
        if self.noise_level > 0:
            field = field + self.noise_level * self._rng.standard_normal(self.shape)
        return field

    @property
    def current_field(self) -> np.ndarray:
        return self._field_at(self._pulse_position)

    def advance(self) -> np.ndarray:
        self._pulse_position = min(0.95, self._pulse_position + self.speed)
        self._step += 1
        return self.current_field

    def snapshot(self) -> SimulationSnapshot:
        return SimulationSnapshot(
            step=self._step,
            time=float(self._step),
            field_name=self.field_name,
            data=self.current_field,
        )

    def run(self, n_steps: int) -> Iterator[SimulationSnapshot]:
        for _ in range(int(n_steps)):
            self.advance()
            yield self.snapshot()
