"""Refinement criteria and uniform-to-hierarchy construction.

AMR applications refine blocks "based on specific criteria, such as when the
average value of a block exceeds predefined thresholds" (§II-B); the paper's
ROI extraction uses the *value range* of each block and keeps the top-x%
blocks at full resolution (§III).  Both are expressed here as
:class:`RefinementCriterion` strategies that score blocks; blocks are then
assigned to levels either by score thresholds or by target fractions, and a
full :class:`~repro.amr.grid.AMRHierarchy` is assembled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.amr.grid import AMRHierarchy, AMRLevel
from repro.amr.reconstruct import restrict
from repro.utils.blocks import (
    block_reduce_mean,
    block_reduce_range,
    block_view,
    pad_to_multiple,
    upsample_nearest,
)
from repro.utils.validation import ensure_array, ensure_power_of_two

__all__ = [
    "RefinementCriterion",
    "ValueRangeCriterion",
    "MeanValueCriterion",
    "GradientCriterion",
    "assign_block_levels",
    "build_hierarchy_from_uniform",
]


class RefinementCriterion(ABC):
    """Scores each block of a uniform field; higher scores refine first."""

    @abstractmethod
    def block_scores(self, data: np.ndarray, block_size: int) -> np.ndarray:
        """Return one score per block (shape = blocks-per-axis grid)."""


class ValueRangeCriterion(RefinementCriterion):
    """Paper default: importance of a block is its value range (max - min)."""

    def block_scores(self, data: np.ndarray, block_size: int) -> np.ndarray:
        return block_reduce_range(data, block_size)


class MeanValueCriterion(RefinementCriterion):
    """Refine blocks whose mean value is large (AMR-style over-density criterion)."""

    def block_scores(self, data: np.ndarray, block_size: int) -> np.ndarray:
        return block_reduce_mean(data, block_size)


class GradientCriterion(RefinementCriterion):
    """Refine blocks containing steep gradients (finite-difference magnitude)."""

    def block_scores(self, data: np.ndarray, block_size: int) -> np.ndarray:
        grads = np.gradient(np.asarray(data, dtype=np.float64))
        magnitude = np.sqrt(sum(g**2 for g in grads))
        return block_reduce_mean(magnitude, block_size)


def assign_block_levels(
    scores: np.ndarray,
    fractions: Sequence[float],
) -> np.ndarray:
    """Assign every block to a refinement level from its importance score.

    ``fractions`` lists, fine to coarse, the fraction of blocks each level
    should own; they must sum to 1 (the last entry may be given as the
    remainder).  The top ``fractions[0]`` scoring blocks go to level 0
    (finest), the next ``fractions[1]`` to level 1, and so on — this is the
    paper's "top x percent of the blocks as the ROIs" rule generalised to any
    number of levels.
    """
    scores = np.asarray(scores, dtype=np.float64)
    fractions = [float(f) for f in fractions]
    if any(f < 0 for f in fractions):
        raise ValueError("fractions must be non-negative")
    total = sum(fractions)
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"level fractions must sum to 1, got {total}")

    flat = scores.ravel()
    n = flat.size
    order = np.argsort(flat, kind="stable")[::-1]  # descending importance
    levels = np.empty(n, dtype=np.int64)
    start = 0
    for level, frac in enumerate(fractions):
        if level == len(fractions) - 1:
            count = n - start
        else:
            count = int(round(frac * n))
            count = min(count, n - start)
        levels[order[start : start + count]] = level
        start += count
    return levels.reshape(scores.shape)


def build_hierarchy_from_uniform(
    data: np.ndarray,
    n_levels: int = 2,
    block_size: int = 8,
    fractions: Optional[Sequence[float]] = None,
    criterion: Optional[RefinementCriterion] = None,
    refinement_ratio: int = 2,
    metadata: Optional[dict] = None,
) -> AMRHierarchy:
    """Convert a uniform field into an ``n_levels`` multi-resolution hierarchy.

    Parameters
    ----------
    data:
        Uniform finest-resolution field; every axis must be divisible by
        ``block_size``, and ``block_size`` must be divisible by
        ``refinement_ratio**(n_levels-1)`` so each block lives entirely on one
        level.
    fractions:
        Fraction of blocks owned by each level, fine to coarse.  Defaults to
        an even split (e.g. the paper's 50 %/50 % WarpX configuration for two
        levels).
    criterion:
        Block scoring strategy; the paper's range thresholding by default.
    """
    data = ensure_array(data, ndim=(2, 3), name="data")
    n_levels = int(n_levels)
    if n_levels < 1:
        raise ValueError("n_levels must be >= 1")
    block_size = ensure_power_of_two(block_size, "block_size", minimum=2)
    min_block = refinement_ratio ** (n_levels - 1)
    if block_size % min_block:
        raise ValueError(
            f"block_size {block_size} must be divisible by refinement_ratio^(n_levels-1) = {min_block}"
        )
    for s in data.shape:
        if s % block_size:
            raise ValueError(
                f"every axis of data {data.shape} must be divisible by block_size {block_size}"
            )
    if fractions is None:
        fractions = [1.0 / n_levels] * n_levels
    if len(fractions) != n_levels:
        raise ValueError("need one fraction per level")
    criterion = criterion or ValueRangeCriterion()

    scores = criterion.block_scores(data, block_size)
    block_levels = assign_block_levels(scores, fractions)

    levels: List[AMRLevel] = []
    for level in range(n_levels):
        factor = refinement_ratio**level
        level_data = restrict(data, factor)
        # Ownership mask at this level's resolution: each block footprint is
        # block_size/factor cells per axis.
        owned_blocks = (block_levels == level).astype(np.uint8)
        cells_per_block = block_size // factor
        mask = upsample_nearest(owned_blocks, cells_per_block).astype(bool)
        if mask.shape != level_data.shape:
            raise RuntimeError(
                f"internal error: mask shape {mask.shape} != data shape {level_data.shape}"
            )
        levels.append(AMRLevel(level=level, data=level_data, mask=mask))

    meta = dict(metadata or {})
    meta.setdefault("block_size", block_size)
    meta.setdefault("fractions", list(float(f) for f in fractions))
    meta.setdefault("criterion", type(criterion).__name__)
    return AMRHierarchy(levels, refinement_ratio=refinement_ratio, metadata=meta)
