"""Multi-resolution hierarchy data structures.

A :class:`AMRHierarchy` is a list of :class:`AMRLevel` objects ordered fine to
coarse (level index 0 is the finest), matching how the paper's Table III lists
its datasets.  Each level stores a full-domain array at that level's
resolution together with a boolean mask of the cells *owned* by the level; the
masks of all levels partition the domain (every finest-resolution cell is
owned by exactly one level), which is the invariant the property-based tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["AMRLevel", "AMRHierarchy"]


@dataclass
class AMRLevel:
    """One resolution level of a multi-resolution dataset.

    Attributes
    ----------
    level:
        Refinement level index; ``0`` is the finest level, larger indices are
        coarser by a factor ``refinement_ratio`` per axis per level.
    data:
        Full-domain array at this level's resolution.  Only cells where
        ``mask`` is ``True`` are owned by (and meaningful at) this level, but
        keeping the full array makes restriction/prolongation trivial.
    mask:
        Boolean ownership mask, same shape as ``data``.
    """

    level: int
    data: np.ndarray
    mask: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.mask = np.asarray(self.mask, dtype=bool)
        if self.data.shape != self.mask.shape:
            raise ValueError(
                f"data shape {self.data.shape} != mask shape {self.mask.shape}"
            )
        if self.level < 0:
            raise ValueError("level index must be non-negative")

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def density(self) -> float:
        """Fraction of the domain owned by this level (Table III's 'density')."""
        return float(self.mask.mean())

    @property
    def n_owned(self) -> int:
        """Number of cells owned by this level."""
        return int(self.mask.sum())

    def owned_values(self) -> np.ndarray:
        """Values of the owned cells (1-D array)."""
        return self.data[self.mask]


class AMRHierarchy:
    """A multi-resolution dataset: levels ordered fine to coarse.

    Parameters
    ----------
    levels:
        :class:`AMRLevel` instances ordered from finest (index 0) to coarsest.
    refinement_ratio:
        Per-axis resolution ratio between consecutive levels (2 in every
        application the paper studies).
    metadata:
        Free-form provenance (dataset name, timestep, field name ...).
    """

    def __init__(
        self,
        levels: Sequence[AMRLevel],
        refinement_ratio: int = 2,
        metadata: Dict | None = None,
    ) -> None:
        if not levels:
            raise ValueError("a hierarchy needs at least one level")
        self.levels: List[AMRLevel] = list(levels)
        self.refinement_ratio = int(refinement_ratio)
        if self.refinement_ratio < 2:
            raise ValueError("refinement_ratio must be at least 2")
        self.metadata: Dict = dict(metadata or {})
        self._validate_shapes()

    # -- construction helpers -------------------------------------------------
    def _validate_shapes(self) -> None:
        finest = self.levels[0].shape
        r = self.refinement_ratio
        for idx, lvl in enumerate(self.levels):
            if lvl.level != idx:
                raise ValueError("levels must be ordered fine to coarse with level == index")
            expected = tuple(s // (r**lvl.level) for s in finest)
            if lvl.shape != expected:
                raise ValueError(
                    f"level {lvl.level} has shape {lvl.shape}, expected {expected} "
                    f"(finest {finest} / ratio {r}^{lvl.level})"
                )
        for s in finest:
            if s % (r ** (len(self.levels) - 1)):
                raise ValueError(
                    f"finest shape {finest} is not divisible by "
                    f"{r ** (len(self.levels) - 1)} (needed for {len(self.levels)} levels)"
                )

    # -- basic properties ------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def finest_shape(self) -> Tuple[int, ...]:
        return self.levels[0].shape

    @property
    def ndim(self) -> int:
        return self.levels[0].data.ndim

    def level_densities(self) -> List[float]:
        """Domain fraction owned by each level, fine to coarse."""
        return [lvl.density for lvl in self.levels]

    def total_stored_points(self) -> int:
        """Number of cell values a multi-resolution storage scheme keeps."""
        return int(sum(lvl.n_owned for lvl in self.levels))

    def uniform_points(self) -> int:
        """Number of cells a uniform-resolution representation would store."""
        return int(np.prod(self.finest_shape))

    def storage_reduction(self) -> float:
        """Uniform point count divided by multi-resolution point count."""
        stored = self.total_stored_points()
        return self.uniform_points() / max(1, stored)

    # -- invariants -------------------------------------------------------------
    def coverage_map(self) -> np.ndarray:
        """How many levels claim each finest-resolution cell (should be exactly 1)."""
        from repro.utils.blocks import upsample_nearest

        r = self.refinement_ratio
        total = np.zeros(self.finest_shape, dtype=np.int64)
        for lvl in self.levels:
            factor = r**lvl.level
            up = lvl.mask.astype(np.int64)
            if factor > 1:
                up = upsample_nearest(up, factor)
            total += up
        return total

    def is_valid_partition(self) -> bool:
        """True when the level masks partition the domain exactly."""
        return bool((self.coverage_map() == 1).all())

    # -- conversions -----------------------------------------------------------
    def to_uniform(self, order: str = "nearest") -> np.ndarray:
        """Reconstruct a finest-resolution array from all levels.

        ``order`` selects the prolongation used for coarse cells:
        ``"nearest"`` (piecewise constant, what a visualisation of raw AMR
        data shows) or ``"linear"`` (smoother reconstruction).
        """
        from repro.amr.reconstruct import flatten_hierarchy

        return flatten_hierarchy(self, order=order)

    def copy_with_data(self, new_level_data: Sequence[np.ndarray]) -> "AMRHierarchy":
        """Clone the hierarchy with replaced per-level data (same masks).

        Used to rebuild a hierarchy from decompressed level payloads.
        """
        if len(new_level_data) != self.n_levels:
            raise ValueError("need one data array per level")
        levels = []
        for lvl, data in zip(self.levels, new_level_data):
            data = np.asarray(data, dtype=np.float64)
            if data.shape != lvl.shape:
                raise ValueError(
                    f"level {lvl.level} replacement has shape {data.shape}, expected {lvl.shape}"
                )
            levels.append(AMRLevel(level=lvl.level, data=data, mask=lvl.mask.copy()))
        return AMRHierarchy(levels, refinement_ratio=self.refinement_ratio, metadata=dict(self.metadata))

    def summary(self) -> str:
        """One line per level in the style of the paper's Table III."""
        rows = []
        for lvl in self.levels:
            shape = "x".join(str(s) for s in lvl.shape)
            rows.append(f"level {lvl.level}: ({shape}, {100 * lvl.density:.0f}%)")
        return "; ".join(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AMRHierarchy({self.summary()})"
