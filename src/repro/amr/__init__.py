"""AMR (adaptive mesh refinement) data model and toy simulations.

The paper's workflow consumes *multi-resolution* data: either native AMR
output (Nyx, IAMR/Rayleigh-Taylor) or "adaptive" data derived from uniform
grids via ROI extraction (WarpX, Hurricane).  This subpackage provides the
hierarchy data structure shared by both, refinement criteria, restriction /
prolongation operators, and small time-stepping simulations used for the
in-situ experiments.
"""

from repro.amr.grid import AMRHierarchy, AMRLevel
from repro.amr.refinement import (
    GradientCriterion,
    MeanValueCriterion,
    RefinementCriterion,
    ValueRangeCriterion,
    assign_block_levels,
    build_hierarchy_from_uniform,
)
from repro.amr.reconstruct import flatten_hierarchy, prolong, restrict
from repro.amr.simulation import (
    CollapsingDensitySimulation,
    SimulationSnapshot,
    TravelingPulseSimulation,
)

__all__ = [
    "AMRHierarchy",
    "AMRLevel",
    "RefinementCriterion",
    "ValueRangeCriterion",
    "MeanValueCriterion",
    "GradientCriterion",
    "assign_block_levels",
    "build_hierarchy_from_uniform",
    "flatten_hierarchy",
    "restrict",
    "prolong",
    "CollapsingDensitySimulation",
    "TravelingPulseSimulation",
    "SimulationSnapshot",
]
