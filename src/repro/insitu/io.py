"""Compressed-container file I/O (format v1).

A minimal self-describing on-disk format for compressed arrays and compressed
multi-resolution hierarchies, standing in for the HDF5 / AMReX plotfile
output of the real applications.  The format is a JSON header (level
structure, arrangement bookkeeping) followed by the concatenated
:class:`~repro.compressors.base.CompressedArray` blobs, so files remain
readable without any state from the writing process.

This v1 format compresses each level into one merged payload and can only be
decompressed whole; the block-level v2 format with random access lives in
:mod:`repro.store`.  Both readers validate magic and format version and
raise :class:`~repro.compressors.errors.DecompressionError` naming the
offending path on truncated or foreign files; v1 containers stay readable
alongside v2.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.compressors.base import CompressedArray
from repro.compressors.errors import DecompressionError
from repro.core.mr_compressor import CompressedHierarchy, CompressedLevel
from repro.core.padding import PadInfo
from repro.core.partition import Arrangement

__all__ = [
    "write_compressed_array",
    "read_compressed_array",
    "write_compressed_hierarchy",
    "read_compressed_hierarchy",
]

_HIER_MAGIC = b"RPMH"  # "RePro Multi-resolution Hierarchy"
_STORE_MAGIC = b"RPS2"  # v2 block container (repro.store) — detected for clear errors
_HIER_FORMAT_VERSION = 1


def write_compressed_array(path: Union[str, Path], compressed: CompressedArray) -> int:
    """Write one compressed array to ``path``; returns the number of bytes written."""
    blob = compressed.to_bytes()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return len(blob)


def read_compressed_array(path: Union[str, Path]) -> CompressedArray:
    """Read a compressed array written by :func:`write_compressed_array`."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise DecompressionError(f"{path}: cannot read compressed array ({exc})") from exc
    try:
        return CompressedArray.from_bytes(blob)
    except DecompressionError as exc:
        raise DecompressionError(f"{path}: {exc}") from exc
    except (struct.error, json.JSONDecodeError, UnicodeDecodeError, KeyError, IndexError) as exc:
        raise DecompressionError(
            f"{path}: truncated or corrupt compressed-array container ({exc!r})"
        ) from exc


def _level_header(level: CompressedLevel) -> dict:
    return {
        "level": level.level,
        "level_shape": list(level.level_shape),
        "unit_size": level.unit_size,
        "nbytes_original": level.nbytes_original,
        "coords_size": len(level.coords_payload),
        "payload_sizes": [len(p.to_bytes()) for p in level.payloads],
        "arrangement": asdict(level.arrangement),
        "pad_info": None
        if level.pad_info is None
        else {
            "axes": list(level.pad_info.axes),
            "original_shape": list(level.pad_info.original_shape),
            "mode": level.pad_info.mode,
        },
    }


def write_compressed_hierarchy(path: Union[str, Path], compressed: CompressedHierarchy) -> int:
    """Write a compressed hierarchy to ``path``; returns the bytes written."""
    header = {
        "format_version": _HIER_FORMAT_VERSION,
        "error_bound": compressed.error_bound,
        "metadata": compressed.metadata,
        "levels": [_level_header(lvl) for lvl in compressed.levels],
    }
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [_HIER_MAGIC, struct.pack("<I", len(header_blob)), header_blob]
    for lvl in compressed.levels:
        parts.append(lvl.coords_payload)
        for payload in lvl.payloads:
            parts.append(payload.to_bytes())
    blob = b"".join(parts)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return len(blob)


def _check_hierarchy_head(path: Path, blob: bytes) -> dict:
    """Validate magic/version and return the parsed v1 header."""
    if len(blob) < 8:
        raise DecompressionError(
            f"{path}: truncated container ({len(blob)} bytes, need at least 8)"
        )
    magic = blob[:4]
    if magic == _STORE_MAGIC:
        raise DecompressionError(
            f"{path}: this is a v2 block-store container; open it with "
            "repro.store.ContainerReader (or `repro store`) instead"
        )
    if magic != _HIER_MAGIC:
        raise DecompressionError(
            f"{path}: not a compressed-hierarchy file (bad magic {magic!r})"
        )
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if 8 + header_len > len(blob):
        raise DecompressionError(
            f"{path}: truncated container header (claims {header_len} bytes, "
            f"file holds {len(blob) - 8})"
        )
    try:
        header = json.loads(blob[8 : 8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecompressionError(f"{path}: corrupt container header ({exc})") from exc
    version = int(header.get("format_version", _HIER_FORMAT_VERSION))
    if version != _HIER_FORMAT_VERSION:
        raise DecompressionError(
            f"{path}: unsupported hierarchy-container format version {version} "
            f"(this reader supports {_HIER_FORMAT_VERSION})"
        )
    return header


def read_compressed_hierarchy(path: Union[str, Path]) -> CompressedHierarchy:
    """Read a compressed hierarchy written by :func:`write_compressed_hierarchy`.

    Raises :class:`DecompressionError` naming ``path`` when the file is
    truncated, foreign, or a v2 block-store container.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise DecompressionError(f"{path}: cannot read container ({exc})") from exc
    header = _check_hierarchy_head(path, blob)
    (header_len,) = struct.unpack_from("<I", blob, 4)
    offset = 8 + header_len

    try:
        levels = []
        for lvl_header in header["levels"]:
            coords_size = int(lvl_header["coords_size"])
            coords_payload = blob[offset : offset + coords_size]
            if len(coords_payload) < coords_size:
                raise DecompressionError(
                    f"{path}: truncated coords payload for level {lvl_header.get('level')}"
                )
            offset += coords_size
            payloads = []
            for size in lvl_header["payload_sizes"]:
                size = int(size)
                if offset + size > len(blob):
                    raise DecompressionError(
                        f"{path}: truncated block payload for level {lvl_header.get('level')}"
                    )
                payloads.append(CompressedArray.from_bytes(blob[offset : offset + size]))
                offset += size
            arr = lvl_header["arrangement"]
            arrangement = Arrangement(
                kind=arr["kind"],
                unit_size=int(arr["unit_size"]),
                ndim=int(arr["ndim"]),
                n_blocks=int(arr["n_blocks"]),
                layout=tuple(arr.get("layout", ())),
                segments=tuple(arr.get("segments", ())),
            )
            pad = lvl_header["pad_info"]
            pad_info = (
                None
                if pad is None
                else PadInfo(
                    axes=tuple(int(a) for a in pad["axes"]),
                    original_shape=tuple(int(s) for s in pad["original_shape"]),
                    mode=pad["mode"],
                )
            )
            levels.append(
                CompressedLevel(
                    level=int(lvl_header["level"]),
                    payloads=payloads,
                    arrangement=arrangement,
                    pad_info=pad_info,
                    coords_payload=coords_payload,
                    level_shape=tuple(int(s) for s in lvl_header["level_shape"]),
                    unit_size=int(lvl_header["unit_size"]),
                    nbytes_original=int(lvl_header["nbytes_original"]),
                )
            )
        if offset != len(blob):
            raise DecompressionError(f"{path}: trailing bytes after the last level payload")
        return CompressedHierarchy(
            levels=levels,
            error_bound=float(header["error_bound"]),
            metadata=header.get("metadata", {}),
        )
    except DecompressionError:
        raise
    except (struct.error, json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError) as exc:
        raise DecompressionError(
            f"{path}: truncated or corrupt hierarchy container ({exc!r})"
        ) from exc
