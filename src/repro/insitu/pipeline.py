"""In-situ compression pipeline.

Drives a simulation (an object yielding
:class:`~repro.amr.simulation.SimulationSnapshot` from ``run(n_steps)``)
through the multi-resolution compression workflow, writing one compressed
container per timestep and recording the same timing phases the paper's
Table IV reports:

* **pre-process** — ROI extraction (uniform input only), unit-block
  extraction, arrangement and padding ("collecting data to the compression
  buffer");
* **compress & write** — error-bounded encoding plus writing the container to
  the file system.

Quality metrics (CR, PSNR) are collected per step so the in-situ
rate-distortion experiments (Fig. 15, Fig. 17-left) reuse the same driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.amr.simulation import SimulationSnapshot
from repro.api.error_bound import ErrorBound
from repro.analysis.metrics import psnr as psnr_metric
from repro.core.mr_compressor import CompressedHierarchy, MultiResolutionCompressor
from repro.core.roi import extract_roi
from repro.insitu.io import write_compressed_hierarchy
from repro.insitu.scheduler import parallel_map
from repro.utils.timer import Timer, TimingBreakdown

__all__ = ["InSituPipeline", "StepReport"]


@dataclass
class StepReport:
    """Per-timestep outcome of the in-situ pipeline.

    ``compressed`` holds the in-memory v1 hierarchy when the step went
    through the whole-level path; store-backed steps keep only the on-disk
    container (``output_path``) and leave it ``None``.
    """

    step: int
    field_name: str
    compression_ratio: float
    psnr: Optional[float]
    timings: TimingBreakdown
    output_path: Optional[Path]
    compressed: Optional[CompressedHierarchy] = field(repr=False, default=None)

    @property
    def preprocess_time(self) -> float:
        return self.timings.phases.get("pre-process", 0.0)

    @property
    def compress_write_time(self) -> float:
        return self.timings.phases.get("compress+write", 0.0)

    @property
    def total_time(self) -> float:
        return self.timings.total()


class InSituPipeline:
    """Run a simulation through compression + output, step by step."""

    def __init__(
        self,
        compressor: MultiResolutionCompressor,
        output_dir: Optional[Union[str, Path]] = None,
        roi_fraction: float = 0.5,
        roi_block_size: int = 8,
        compute_quality: bool = True,
        max_workers: int = 1,
        store=None,
    ) -> None:
        """``store`` (a :class:`repro.store.Store`) switches the output path
        from one v1 whole-level container per step (``output_dir``) to
        appending block-indexed v2 containers to the store catalog; quality
        metrics are then computed by reading the container back, so the
        reported PSNR is what an analysis consumer will actually see."""
        self.compressor = compressor
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.roi_fraction = float(roi_fraction)
        self.roi_block_size = int(roi_block_size)
        self.compute_quality = bool(compute_quality)
        self.max_workers = int(max_workers)
        self.store = store
        if store is not None:
            # Store-backed steps are encoded by the store's compressor/engine;
            # a silently different codec would make the reported quality
            # describe something the user never configured.
            ours = (compressor.codec_spec(), compressor.unit_size)
            theirs = (store.compressor.codec_spec(), store.compressor.unit_size)
            if ours != theirs:
                raise ValueError(
                    "pipeline and store compressors disagree "
                    f"({compressor.describe()} unit {compressor.unit_size} vs "
                    f"{store.compressor.describe()} unit {store.compressor.unit_size}); "
                    "construct the Store with the same compressor"
                )

    @classmethod
    def from_config(cls, config, store=None) -> "InSituPipeline":
        """Build a pipeline from a :class:`repro.api.PipelineConfig`.

        ``store`` overrides the config's sink with an already-open
        :class:`repro.store.Store`.  Config materialisation lives in one
        place — :class:`repro.api.Pipeline` — and is reused here.
        """
        from repro.api.pipeline import Pipeline

        builder = Pipeline.from_config(config)
        if store is not None:
            builder.sink_store(store)
        return builder.build()

    def _resolve_bound(
        self,
        snapshot: SimulationSnapshot,
        error_bound: Union[float, ErrorBound, Mapping],
    ) -> float:
        """Resolve the bound spec against this snapshot's data."""
        if not isinstance(error_bound, (ErrorBound, Mapping)):
            return float(error_bound)
        if snapshot.is_amr:
            return MultiResolutionCompressor.resolve_hierarchy_bound(
                snapshot.data, error_bound
            )
        return float(ErrorBound.coerce(error_bound).resolve(np.asarray(snapshot.data)))

    # -- single snapshot ---------------------------------------------------------
    def process_snapshot(
        self,
        snapshot: SimulationSnapshot,
        error_bound: Union[float, ErrorBound, Mapping],
    ) -> StepReport:
        """Compress one snapshot and (optionally) write it to disk.

        ``error_bound`` accepts an :class:`~repro.api.error_bound.ErrorBound`
        spec, resolved per snapshot (so e.g. ``ErrorBound.rel`` tracks each
        timestep's value range); a bare float is an absolute bound.
        """
        error_bound = self._resolve_bound(snapshot, error_bound)
        timings = TimingBreakdown()

        # Pre-process: build the hierarchy (uniform input) and prepare levels.
        with timings.phase("pre-process"):
            if snapshot.is_amr:
                hierarchy: AMRHierarchy = snapshot.data
            else:
                hierarchy = extract_roi(
                    np.asarray(snapshot.data, dtype=np.float64),
                    roi_fraction=self.roi_fraction,
                    block_size=self.roi_block_size,
                ).hierarchy
            # The store path blocks the levels itself (per-block payloads), so
            # merged-level preparation is only needed for the v1 container.
            prepared = (
                []
                if self.store is not None
                else [
                    self.compressor.prepare_level(lvl.data, lvl.mask, level_index=lvl.level)
                    for lvl in hierarchy.levels
                ]
            )

        # Compress and write.
        with timings.phase("compress+write"):
            if self.store is not None:
                entry = self.store.append(
                    snapshot.field_name,
                    snapshot.step,
                    hierarchy,
                    error_bound,
                    overwrite=True,
                )
                compressed = None
                compression_ratio = entry.compression_ratio
                output_path = self.store.root / entry.path
            else:
                levels = parallel_map(
                    lambda p: self.compressor.encode_prepared(p, error_bound),
                    prepared,
                    max_workers=self.max_workers,
                )
                compressed = CompressedHierarchy(
                    levels=levels,
                    error_bound=float(error_bound),
                    metadata={
                        "step": snapshot.step,
                        "field": snapshot.field_name,
                        "compressor": self.compressor.describe(),
                    },
                )
                compression_ratio = compressed.compression_ratio
                output_path = None
                if self.output_dir is not None:
                    output_path = self.output_dir / f"{snapshot.field_name}_step{snapshot.step:05d}.rpmh"
                    write_compressed_hierarchy(output_path, compressed)

        quality = None
        if self.compute_quality:
            if compressed is not None:
                decompressed = self.compressor.decompress_hierarchy(compressed, hierarchy)
            else:
                reader = self.store.get(snapshot.field_name, snapshot.step)
                decompressed = hierarchy.copy_with_data(
                    [reader.as_array(lvl.level)[...] for lvl in hierarchy.levels]
                )
            reference = (
                hierarchy.to_uniform()
                if snapshot.is_amr
                else np.asarray(snapshot.data, dtype=np.float64)
            )
            quality = psnr_metric(reference, decompressed.to_uniform())

        return StepReport(
            step=snapshot.step,
            field_name=snapshot.field_name,
            compression_ratio=compression_ratio,
            psnr=quality,
            timings=timings,
            output_path=output_path,
            compressed=compressed,
        )

    # -- full runs ------------------------------------------------------------------
    def run(
        self,
        simulation,
        n_steps: int,
        error_bound: Union[float, ErrorBound, Mapping],
    ) -> List[StepReport]:
        """Advance the simulation ``n_steps`` and process every snapshot."""
        reports = []
        for snapshot in simulation.run(n_steps):
            reports.append(self.process_snapshot(snapshot, error_bound))
        return reports

    @staticmethod
    def aggregate_timings(reports: List[StepReport]) -> Dict[str, float]:
        """Sum the phase timings over a run (the numbers Table IV reports)."""
        total = TimingBreakdown()
        for report in reports:
            total = total.merge(report.timings)
        out = total.as_dict()
        out["total"] = total.total()
        return out
