"""In-situ compression pipeline.

Drives a simulation (an object yielding
:class:`~repro.amr.simulation.SimulationSnapshot` from ``run(n_steps)``)
through the multi-resolution compression workflow, writing one compressed
container per timestep and recording the same timing phases the paper's
Table IV reports:

* **pre-process** — ROI extraction (uniform input only), unit-block
  extraction, arrangement and padding ("collecting data to the compression
  buffer");
* **compress & write** — error-bounded encoding plus writing the container to
  the file system.

Quality metrics (CR, PSNR) are collected per step so the in-situ
rate-distortion experiments (Fig. 15, Fig. 17-left) reuse the same driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.amr.simulation import SimulationSnapshot
from repro.analysis.metrics import psnr as psnr_metric
from repro.core.mr_compressor import CompressedHierarchy, MultiResolutionCompressor
from repro.core.roi import extract_roi
from repro.insitu.io import write_compressed_hierarchy
from repro.insitu.scheduler import parallel_map
from repro.utils.timer import Timer, TimingBreakdown

__all__ = ["InSituPipeline", "StepReport"]


@dataclass
class StepReport:
    """Per-timestep outcome of the in-situ pipeline."""

    step: int
    field_name: str
    compression_ratio: float
    psnr: Optional[float]
    timings: TimingBreakdown
    output_path: Optional[Path]
    compressed: CompressedHierarchy = field(repr=False, default=None)

    @property
    def preprocess_time(self) -> float:
        return self.timings.phases.get("pre-process", 0.0)

    @property
    def compress_write_time(self) -> float:
        return self.timings.phases.get("compress+write", 0.0)

    @property
    def total_time(self) -> float:
        return self.timings.total()


class InSituPipeline:
    """Run a simulation through compression + output, step by step."""

    def __init__(
        self,
        compressor: MultiResolutionCompressor,
        output_dir: Optional[Union[str, Path]] = None,
        roi_fraction: float = 0.5,
        roi_block_size: int = 8,
        compute_quality: bool = True,
        max_workers: int = 1,
    ) -> None:
        self.compressor = compressor
        self.output_dir = Path(output_dir) if output_dir is not None else None
        self.roi_fraction = float(roi_fraction)
        self.roi_block_size = int(roi_block_size)
        self.compute_quality = bool(compute_quality)
        self.max_workers = int(max_workers)

    # -- single snapshot ---------------------------------------------------------
    def process_snapshot(self, snapshot: SimulationSnapshot, error_bound: float) -> StepReport:
        """Compress one snapshot and (optionally) write it to disk."""
        timings = TimingBreakdown()

        # Pre-process: build the hierarchy (uniform input) and prepare levels.
        with timings.phase("pre-process"):
            if snapshot.is_amr:
                hierarchy: AMRHierarchy = snapshot.data
            else:
                hierarchy = extract_roi(
                    np.asarray(snapshot.data, dtype=np.float64),
                    roi_fraction=self.roi_fraction,
                    block_size=self.roi_block_size,
                ).hierarchy
            prepared = [
                self.compressor.prepare_level(lvl.data, lvl.mask, level_index=lvl.level)
                for lvl in hierarchy.levels
            ]

        # Compress and write.
        with timings.phase("compress+write"):
            levels = parallel_map(
                lambda p: self.compressor.encode_prepared(p, error_bound),
                prepared,
                max_workers=self.max_workers,
            )
            compressed = CompressedHierarchy(
                levels=levels,
                error_bound=float(error_bound),
                metadata={
                    "step": snapshot.step,
                    "field": snapshot.field_name,
                    "compressor": self.compressor.describe(),
                },
            )
            output_path = None
            if self.output_dir is not None:
                output_path = self.output_dir / f"{snapshot.field_name}_step{snapshot.step:05d}.rpmh"
                write_compressed_hierarchy(output_path, compressed)

        quality = None
        if self.compute_quality:
            decompressed = self.compressor.decompress_hierarchy(compressed, hierarchy)
            reference = (
                hierarchy.to_uniform()
                if snapshot.is_amr
                else np.asarray(snapshot.data, dtype=np.float64)
            )
            quality = psnr_metric(reference, decompressed.to_uniform())

        return StepReport(
            step=snapshot.step,
            field_name=snapshot.field_name,
            compression_ratio=compressed.compression_ratio,
            psnr=quality,
            timings=timings,
            output_path=output_path,
            compressed=compressed,
        )

    # -- full runs ------------------------------------------------------------------
    def run(self, simulation, n_steps: int, error_bound: float) -> List[StepReport]:
        """Advance the simulation ``n_steps`` and process every snapshot."""
        reports = []
        for snapshot in simulation.run(n_steps):
            reports.append(self.process_snapshot(snapshot, error_bound))
        return reports

    @staticmethod
    def aggregate_timings(reports: List[StepReport]) -> Dict[str, float]:
        """Sum the phase timings over a run (the numbers Table IV reports)."""
        total = TimingBreakdown()
        for report in reports:
            total = total.merge(report.timings)
        out = total.as_dict()
        out["total"] = total.total()
        return out
