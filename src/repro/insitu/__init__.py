"""In-situ compression pipeline: simulation -> compress -> write, with timing.

The paper integrates its workflow into Nyx and WarpX and reports the output
time split into pre-processing (collecting data into the compression buffer)
and compression + writing (Table IV), plus the post-processing overhead
breakdown (Table IX).  This subpackage provides the offline equivalents: a
compressed-container file format, a thread-pool scheduler standing in for the
OpenMP acceleration, and :class:`~repro.insitu.pipeline.InSituPipeline`
driving a toy simulation through the workflow while recording the same timing
phases.
"""

from repro.insitu.io import (
    read_compressed_hierarchy,
    read_compressed_array,
    write_compressed_hierarchy,
    write_compressed_array,
)
from repro.insitu.pipeline import InSituPipeline, StepReport
from repro.insitu.scheduler import parallel_map

__all__ = [
    "InSituPipeline",
    "StepReport",
    "parallel_map",
    "write_compressed_array",
    "read_compressed_array",
    "write_compressed_hierarchy",
    "read_compressed_hierarchy",
]
