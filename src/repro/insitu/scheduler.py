"""Thread-pool scheduling helpers (the offline stand-in for OpenMP).

The paper accelerates post-processing and the block-wise compressors with
OpenMP; in Python the equivalent for NumPy-heavy work (which releases the GIL
inside vectorised kernels) is a thread pool.  ``parallel_map`` keeps the
submission order of results and degrades gracefully to a serial loop for one
worker, so the serial-vs-parallel rows of Table IX can be produced with the
same code path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """Number of workers to use by default (all available cores)."""
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    max_workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving order.

    ``max_workers=1`` (or a single item) runs serially with zero thread
    overhead; otherwise a :class:`concurrent.futures.ThreadPoolExecutor` is
    used.  Exceptions raised by ``fn`` propagate to the caller.
    """
    items = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
