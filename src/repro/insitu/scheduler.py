"""Scheduling helpers (the offline stand-in for OpenMP / MPI ranks).

The paper accelerates post-processing and the block-wise compressors with
OpenMP; in Python the equivalent for NumPy-heavy work (which releases the GIL
inside vectorised kernels) is a thread pool, and for pure-Python encode loops
(Huffman coding, per-block bookkeeping) a process pool.  ``parallel_map``
keeps the submission order of results and degrades gracefully to a serial
loop for one worker, so the serial-vs-parallel rows of Table IX can be
produced with the same code path.

Executor backends
-----------------
``executor="thread"``
    :class:`concurrent.futures.ThreadPoolExecutor`; best when ``fn`` spends
    its time inside NumPy / zlib (both release the GIL).
``executor="process"``
    :class:`concurrent.futures.ProcessPoolExecutor`; ``fn`` and every item
    must be picklable (module-level functions, plain data).  This is the
    backend the :mod:`repro.store` codec engine uses for CPU-bound
    per-block encoding.
``executor="serial"``
    Plain loop, zero pool overhead; also chosen automatically for one worker
    or one item.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "EXECUTORS"]

EXECUTORS = ("serial", "thread", "process")


def default_workers() -> int:
    """Number of workers to use by default (all available cores)."""
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    max_workers: Optional[int] = None,
    executor: str = "thread",
    chunksize: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every item, preserving order.

    ``max_workers=1`` (or a single item, or ``executor="serial"``) runs
    serially with zero pool overhead; otherwise the requested executor
    backend is used.  Exceptions raised by ``fn`` propagate to the caller.

    Parameters
    ----------
    fn:
        Callable applied to each item.  With ``executor="process"`` it must
        be picklable (a module-level function, not a lambda or closure).
    items:
        Work items; consumed into a list so results keep submission order.
    max_workers:
        Pool size; defaults to :func:`default_workers`.
    executor:
        ``"serial"``, ``"thread"`` (default) or ``"process"``.
    chunksize:
        Items handed to a process worker per task (process backend only);
        larger chunks amortise pickling overhead for many small items.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    items = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if executor == "serial" or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if executor == "process":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize or 1))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
