"""Composable source → roi/filter → compress → sink pipeline builder.

:class:`Pipeline` is the one programmable surface over the two historical
drivers: the offline :class:`~repro.core.workflow.MultiResolutionWorkflow`
and the streaming :class:`~repro.insitu.pipeline.InSituPipeline` become thin
adapters underneath it.  A pipeline is assembled from chainable stages::

    from repro.api import CodecSpec, ErrorBound, Pipeline

    reports = (
        Pipeline(CodecSpec.sz3mr(), ErrorBound.rel(0.01))
        .roi(fraction=0.5, block_size=8)
        .filter(lambda f: np.clip(f, 0, None))
        .sink_store("run_dir")          # or .sink_dir(...) for v1 containers
        .run(simulation, n_steps=4)
    )

Sources may be a plain array, an :class:`~repro.amr.grid.AMRHierarchy`, an
iterable of :class:`~repro.amr.simulation.SimulationSnapshot`, or any object
with ``run(n_steps)`` yielding snapshots (a simulation).  Every run returns
the same per-step :class:`~repro.insitu.pipeline.StepReport` list, whatever
the sink.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.api.config import CodecSpec, PipelineConfig
from repro.api.error_bound import ErrorBound

__all__ = ["Pipeline"]

#: A per-field transform applied before ROI extraction / compression.
FieldFilter = Callable[[np.ndarray], np.ndarray]


class Pipeline:
    """Builder for declarative compression pipelines (see module docstring)."""

    def __init__(
        self,
        codec: Optional[Union[CodecSpec, Mapping]] = None,
        error_bound: Optional[Union[float, ErrorBound, Mapping]] = None,
    ) -> None:
        if isinstance(codec, Mapping):
            codec = CodecSpec.from_dict(codec)
        self._codec: CodecSpec = codec or CodecSpec()
        self._error_bound: ErrorBound = (
            ErrorBound.coerce(error_bound) if error_bound is not None else ErrorBound.rel(0.01)
        )
        self._roi_fraction = 0.5
        self._roi_block_size = 8
        self._filters: List[FieldFilter] = []
        self._sink: Optional[tuple] = None  # ("dir", Path) | ("store", Store-or-path)
        self._compute_quality = True
        self._max_workers = 1

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_config(cls, config: PipelineConfig) -> "Pipeline":
        """Materialise a :class:`repro.api.PipelineConfig` into a builder."""
        pipe = cls(config.codec, config.error_bound)
        pipe._roi_fraction = float(config.roi_fraction)
        pipe._roi_block_size = int(config.roi_block_size)
        pipe._compute_quality = bool(config.compute_quality)
        pipe._max_workers = int(config.max_workers)
        pipe._default_source = config.source
        pipe._default_steps = int(config.n_steps)
        if config.sink is not None:
            kind, path = config.sink["kind"], config.sink["path"]
            pipe._sink = (kind, Path(path))
        return pipe

    def to_config(
        self, n_steps: int = 1, source: Optional[Mapping[str, Any]] = None
    ) -> PipelineConfig:
        """Capture the builder back into a serializable config.

        Callable filters cannot be serialised and are rejected — declare them
        in code on the replaying side instead.
        """
        if self._filters:
            raise ValueError("pipelines with callable filters are not serializable")
        sink = None
        if self._sink is not None:
            kind, target = self._sink
            path = getattr(target, "root", target)
            sink = {"kind": kind, "path": str(path)}
        return PipelineConfig(
            codec=self._codec,
            error_bound=self._error_bound,
            roi_fraction=self._roi_fraction,
            roi_block_size=self._roi_block_size,
            compute_quality=self._compute_quality,
            max_workers=self._max_workers,
            n_steps=int(n_steps),
            source=dict(source) if source is not None else None,
            sink=sink,
        )

    # -- chainable stages -----------------------------------------------------
    def compress(
        self,
        codec: Optional[Union[CodecSpec, Mapping]] = None,
        error_bound: Optional[Union[float, ErrorBound, Mapping]] = None,
    ) -> "Pipeline":
        """Override the codec and/or error bound of the compression stage."""
        if codec is not None:
            self._codec = CodecSpec.from_dict(codec) if isinstance(codec, Mapping) else codec
        if error_bound is not None:
            self._error_bound = ErrorBound.coerce(error_bound)
        return self

    def roi(self, fraction: float = 0.5, block_size: int = 8) -> "Pipeline":
        """Configure uniform→adaptive ROI extraction for uniform sources."""
        self._roi_fraction = float(fraction)
        self._roi_block_size = int(block_size)
        return self

    def filter(self, fn: FieldFilter) -> "Pipeline":
        """Apply ``fn`` to every field (each level of AMR data) before compression."""
        self._filters.append(fn)
        return self

    def sink_dir(self, path: Union[str, Path]) -> "Pipeline":
        """Write one v1 whole-level container (``.rpmh``) per step into ``path``."""
        self._sink = ("dir", Path(path))
        return self

    def sink_store(self, store: Union[str, Path, Any]) -> "Pipeline":
        """Append block-indexed v2 containers to a :class:`repro.store.Store`.

        Accepts an open store or a directory path (opened, and created on
        first append, with this pipeline's codec).
        """
        self._sink = ("store", store)
        return self

    def quality(self, compute: bool = True) -> "Pipeline":
        """Toggle per-step PSNR computation (off = faster in-situ loop)."""
        self._compute_quality = bool(compute)
        return self

    def workers(self, max_workers: int) -> "Pipeline":
        """Set the worker count for per-level parallel encoding."""
        self._max_workers = int(max_workers)
        return self

    # -- execution ------------------------------------------------------------
    def build(self):
        """Construct the underlying :class:`InSituPipeline` engine."""
        from repro.insitu.pipeline import InSituPipeline
        from repro.store import Store

        compressor = self._codec.build()
        store = None
        output_dir = None
        if self._sink is not None:
            kind, target = self._sink
            if kind == "store":
                store = target if isinstance(target, Store) else Store(target, compressor)
            else:
                output_dir = Path(target)
        return InSituPipeline(
            compressor,
            output_dir=output_dir,
            roi_fraction=self._roi_fraction,
            roi_block_size=self._roi_block_size,
            compute_quality=self._compute_quality,
            max_workers=self._max_workers,
            store=store,
        )

    def run(
        self,
        source: Optional[Any] = None,
        n_steps: Optional[int] = None,
        error_bound: Optional[Union[float, ErrorBound, Mapping]] = None,
    ) -> List["StepReport"]:
        """Drive ``source`` through the pipeline; returns one report per step.

        Without arguments, the source and step count captured by
        :meth:`from_config` are used.  ``error_bound`` overrides the
        configured bound for this run only.
        """
        bound = (
            ErrorBound.coerce(error_bound) if error_bound is not None else self._error_bound
        )
        if source is None:
            source = getattr(self, "_default_source", None)
            if source is None:
                raise ValueError("pipeline has no source; pass one to run()")
        if n_steps is None:
            n_steps = getattr(self, "_default_steps", 1)

        engine = self.build()
        reports = []
        for snapshot in self._snapshots(source, int(n_steps)):
            reports.append(engine.process_snapshot(snapshot, bound))
        return reports

    # -- source normalisation -------------------------------------------------
    def _snapshots(self, source: Any, n_steps: int) -> Iterable:
        from repro.amr.grid import AMRHierarchy
        from repro.amr.simulation import SimulationSnapshot

        if isinstance(source, Mapping):
            source = _source_from_spec(source)

        if isinstance(source, (np.ndarray, AMRHierarchy)):
            snapshots: Iterable = [
                SimulationSnapshot(step=0, time=0.0, field_name="field", data=source)
            ]
        elif hasattr(source, "run"):
            snapshots = source.run(n_steps)
        else:
            snapshots = source  # an iterable of SimulationSnapshot

        for snapshot in snapshots:
            yield self._apply_filters(snapshot)

    def _apply_filters(self, snapshot):
        if not self._filters:
            return snapshot
        from dataclasses import replace

        from repro.amr.grid import AMRHierarchy

        data = snapshot.data
        if isinstance(data, AMRHierarchy):
            levels = [lvl.data for lvl in data.levels]
            for fn in self._filters:
                levels = [fn(level) for level in levels]
            data = data.copy_with_data(levels)
        else:
            data = np.asarray(data, dtype=np.float64)
            for fn in self._filters:
                data = fn(data)
        return replace(snapshot, data=data)


def _source_from_spec(spec: Mapping[str, Any]):
    """Build a snapshot source from its declarative ``PipelineConfig.source``."""
    kind = spec.get("kind")
    if kind == "npy":
        from repro.api.facade import load_npy_field

        if "path" not in spec:
            raise ValueError("source section of kind 'npy' needs a 'path'")
        return load_npy_field(spec["path"])
    if kind == "simulation":
        from repro.amr.simulation import CollapsingDensitySimulation, TravelingPulseSimulation

        simulations = {"collapse": CollapsingDensitySimulation, "pulse": TravelingPulseSimulation}
        name = spec.get("name", "collapse")
        try:
            factory = simulations[name]
        except KeyError:
            raise ValueError(
                f"unknown simulation {name!r}; expected one of {sorted(simulations)}"
            ) from None
        kwargs = {k: v for k, v in spec.items() if k not in ("kind", "name")}
        if "shape" in kwargs:
            kwargs["shape"] = tuple(kwargs["shape"])
        return factory(**kwargs)
    raise ValueError(f"unknown source kind {spec.get('kind')!r}; expected 'npy' or 'simulation'")
