"""``ErrorBound`` — one spec type for every error-bound convention.

The paper (like the SZ/ZFP ecosystem it builds on) quotes error bounds in
four interchangeable conventions: absolute, value-range relative, point-wise
relative and a target PSNR.  The repo historically passed ``error_bound:
float, relative: bool`` pairs through every layer, which silently conflates
the first two and cannot express the rest.  :class:`ErrorBound` is the single
serializable spec that all entry points accept; each layer resolves it
against the data it is about to compress with :meth:`ErrorBound.resolve`.

This module deliberately depends on nothing but NumPy so it can be imported
from :mod:`repro.compressors.base` without cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["ErrorBound", "ERROR_BOUND_MODES"]

#: Supported bound conventions, in the order the paper introduces them.
ERROR_BOUND_MODES = ("abs", "rel", "ptw_rel", "psnr")

#: Uniform-quantizer error model: a reconstruction whose point-wise error is
#: uniform on [-e, e] has MSE = e^2 / 3; inverting the PSNR definition
#: (20 log10(range) - 10 log10(MSE)) under that model maps a PSNR target to
#: an absolute bound.  sqrt(3) is that model's constant.
_PSNR_MODEL_FACTOR = float(np.sqrt(3.0))


@dataclass(frozen=True)
class ErrorBound:
    """A declarative error-bound specification.

    Attributes
    ----------
    mode:
        One of ``"abs"`` (absolute point-wise bound), ``"rel"`` (fraction of
        the data's value range), ``"ptw_rel"`` (fraction of the data's peak
        magnitude — the uniform-bound surrogate for point-wise relative
        compression) or ``"psnr"`` (target PSNR in dB, converted through a
        uniform-error model).
    value:
        The bound itself: an absolute error, a fraction, or a dB target.
    """

    mode: str
    value: float

    def __post_init__(self) -> None:
        if self.mode not in ERROR_BOUND_MODES:
            raise ValueError(
                f"unknown error-bound mode {self.mode!r}; expected one of {ERROR_BOUND_MODES}"
            )
        object.__setattr__(self, "value", float(self.value))
        if not np.isfinite(self.value) or self.value <= 0:
            raise ValueError(f"error-bound value must be finite and positive, got {self.value}")

    # -- constructors --------------------------------------------------------
    @classmethod
    def abs(cls, value: float) -> "ErrorBound":
        """Absolute point-wise bound (what the codecs consume natively)."""
        return cls("abs", value)

    @classmethod
    def rel(cls, value: float) -> "ErrorBound":
        """Value-range-relative bound: ``value * (max - min)`` of the data."""
        return cls("rel", value)

    @classmethod
    def ptw_rel(cls, value: float) -> "ErrorBound":
        """Point-wise-relative bound, resolved as ``value * max(|data|)``."""
        return cls("ptw_rel", value)

    @classmethod
    def psnr(cls, value: float) -> "ErrorBound":
        """Target PSNR in dB; higher targets resolve to tighter bounds."""
        return cls("psnr", value)

    @classmethod
    def coerce(
        cls,
        bound: Union["ErrorBound", Mapping[str, Any], float],
        *,
        relative: bool = False,
        warn_legacy: bool = False,
    ) -> "ErrorBound":
        """Normalise any accepted bound form into an :class:`ErrorBound`.

        Floats become ``abs`` (or ``rel`` when ``relative=True``, the legacy
        keyword convention); mappings go through :meth:`from_dict`;
        ``ErrorBound`` instances pass through unchanged (``relative`` must
        then be left at its default).  ``warn_legacy=True`` emits the
        :class:`DeprecationWarning` for the retired ``relative=`` keyword.
        """
        if isinstance(bound, ErrorBound):
            if relative:
                raise ValueError("relative= cannot be combined with an ErrorBound spec")
            return bound
        if isinstance(bound, Mapping):
            if relative:
                raise ValueError("relative= cannot be combined with an ErrorBound dict")
            return cls.from_dict(bound)
        if warn_legacy:
            warnings.warn(
                "the relative= keyword is deprecated; pass "
                "repro.api.ErrorBound.rel(...) / ErrorBound.abs(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return cls.rel(bound) if relative else cls.abs(bound)

    # -- resolution ----------------------------------------------------------
    @property
    def needs_statistics(self) -> bool:
        """Whether resolving this spec requires scanning the data at all."""
        return self.mode != "abs"

    def resolve(self, data: np.ndarray) -> float:
        """Convert the spec to the absolute bound for ``data``.

        Degenerate data (zero value range / all-zero field) falls back to
        treating ``value`` as absolute so the bound stays strictly positive.
        """
        if self.mode == "abs":
            return self.value
        arr = np.asarray(data)
        if self.mode == "ptw_rel":
            peak = float(np.abs(arr).max()) if arr.size else 0.0
            value_range = 0.0  # unused by this mode
        else:
            peak = 0.0
            value_range = float(arr.max() - arr.min()) if arr.size else 0.0
        return self.resolve_range(value_range, peak)

    def resolve_range(self, value_range: float, peak: float) -> float:
        """Like :meth:`resolve`, from precomputed statistics.

        Used when the data spans several arrays (a multi-resolution
        hierarchy) whose global range/peak the caller aggregates once.
        ``value_range`` is ignored by ``abs``/``ptw_rel`` and ``peak`` by the
        other modes.
        """
        if self.mode == "abs":
            return self.value
        if self.mode == "rel":
            return self.value * value_range if value_range > 0 else self.value
        if self.mode == "ptw_rel":
            return self.value * peak if peak > 0 else self.value
        if value_range <= 0:
            return np.finfo(np.float64).tiny
        return value_range * (10.0 ** (-self.value / 20.0)) * _PSNR_MODEL_FACTOR

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverted by :meth:`from_dict`)."""
        return {"mode": self.mode, "value": self.value}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorBound":
        """Rebuild a spec from :meth:`to_dict` output."""
        unknown = set(data) - {"mode", "value"}
        if unknown:
            raise ValueError(f"unknown ErrorBound keys: {sorted(unknown)}")
        try:
            return cls(str(data["mode"]), float(data["value"]))
        except KeyError as exc:
            raise ValueError(f"ErrorBound dict is missing key {exc.args[0]!r}") from exc

    def describe(self) -> str:
        """Short human-readable form, e.g. ``rel:0.01`` or ``psnr:60dB``."""
        if self.mode == "psnr":
            return f"psnr:{self.value:g}dB"
        return f"{self.mode}:{self.value:g}"
