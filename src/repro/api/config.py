"""Typed, JSON-round-trippable run configurations.

Three config dataclasses make every run declarative:

* :class:`CodecSpec` — how data is blocked, arranged and encoded (the full
  constructor surface of
  :class:`~repro.core.mr_compressor.MultiResolutionCompressor`);
* :class:`WorkflowConfig` — one offline Fig. 3 workflow run
  (:class:`~repro.core.workflow.MultiResolutionWorkflow`);
* :class:`PipelineConfig` — one in-situ run
  (:class:`~repro.insitu.pipeline.InSituPipeline` / :class:`repro.api.Pipeline`),
  including its source and sink.

All three satisfy ``from_dict(to_dict(c)) == c`` and serialise to plain JSON,
which is what ``repro run <config.json>`` executes and what benchmarks dump
next to their numbers so results stay replayable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.error_bound import ErrorBound

__all__ = [
    "CodecSpec",
    "WorkflowConfig",
    "PipelineConfig",
    "config_from_dict",
    "load_config",
]

_CODEC_KINDS = ("sz3", "sz2", "zfp")


def _check_unknown(cls_name: str, data: Mapping[str, Any], allowed) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(f"unknown {cls_name} keys: {sorted(unknown)}")


@dataclass
class CodecSpec:
    """Declarative description of a multi-resolution codec.

    ``build()`` materialises the spec into a
    :class:`~repro.core.mr_compressor.MultiResolutionCompressor`;
    ``from_compressor`` inverts it, capturing a live compressor's resolved
    configuration (what the benchmark helpers dump for replay).
    """

    kind: str = "sz3"
    arrangement: str = "linear"
    padding: Union[bool, str] = "auto"
    padding_mode: str = "linear"
    pad_threshold: Optional[int] = None
    adaptive_eb: bool = False
    alpha: Optional[float] = None
    beta: Optional[float] = None
    unit_size: int = 16
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _CODEC_KINDS:
            raise ValueError(f"codec kind must be one of {_CODEC_KINDS}, got {self.kind!r}")

    @classmethod
    def sz3mr(cls, unit_size: int = 16) -> "CodecSpec":
        """The paper's SZ3MR configuration (padding + adaptive error bounds)."""
        return cls(kind="sz3", padding="auto", adaptive_eb=True, unit_size=unit_size)

    def build(self):
        """Instantiate the configured :class:`MultiResolutionCompressor`."""
        from repro.core.mr_compressor import MultiResolutionCompressor

        kwargs: Dict[str, Any] = dict(
            compressor=self.kind,
            arrangement=self.arrangement,
            padding=self.padding,
            padding_mode=self.padding_mode,
            adaptive_eb=self.adaptive_eb,
            unit_size=self.unit_size,
            compressor_options=dict(self.options),
        )
        if self.pad_threshold is not None:
            kwargs["pad_threshold"] = self.pad_threshold
        if self.alpha is not None:
            kwargs["alpha"] = self.alpha
        if self.beta is not None:
            kwargs["beta"] = self.beta
        return MultiResolutionCompressor(**kwargs)

    def build_codec(self):
        """Instantiate the bare single-array codec (no blocking layer)."""
        from repro.compressors import get_compressor

        return get_compressor(self.kind, **dict(self.options))

    @classmethod
    def from_compressor(cls, compressor) -> "CodecSpec":
        """Capture a live :class:`MultiResolutionCompressor` as a spec."""
        return cls(
            kind=compressor.compressor_kind,
            arrangement=compressor.arrangement,
            padding=compressor.padding,
            padding_mode=compressor.padding_mode,
            pad_threshold=compressor.pad_threshold,
            adaptive_eb=compressor.adaptive_eb,
            alpha=compressor.alpha,
            beta=compressor.beta,
            unit_size=compressor.unit_size,
            options=dict(compressor.compressor_options),
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CodecSpec":
        _check_unknown("CodecSpec", data, (f.name for f in fields(cls)))
        return cls(**{k: (dict(v) if k == "options" else v) for k, v in data.items()})


@dataclass
class WorkflowConfig:
    """One offline run of the paper's Fig. 3 workflow on one field.

    ``input`` optionally names the data to run on (so a config file is fully
    self-contained): ``{"kind": "npy", "path": ...}`` or ``{"kind":
    "dataset", "name": ..., "shape": [...], "seed": ...}`` for the synthetic
    registry.

    The default codec is the paper's SZ3MR — the same default the
    :class:`MultiResolutionWorkflow` constructor has always used.
    """

    codec: CodecSpec = field(default_factory=CodecSpec.sz3mr)
    error_bound: ErrorBound = field(default_factory=lambda: ErrorBound.rel(0.01))
    roi_fraction: float = 0.5
    roi_block_size: int = 8
    postprocess: bool = True
    postprocess_strategy: str = "sgd"
    uncertainty: bool = False
    input: Optional[Dict[str, Any]] = None

    def build(self):
        """Instantiate the configured :class:`MultiResolutionWorkflow`."""
        from repro.core.workflow import MultiResolutionWorkflow

        return MultiResolutionWorkflow(
            compressor=self.codec.build(),
            roi_fraction=self.roi_fraction,
            roi_block_size=self.roi_block_size,
            unit_size=self.codec.unit_size,
            postprocess=self.postprocess,
            postprocess_strategy=self.postprocess_strategy,
            uncertainty=self.uncertainty,
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "type": "workflow",
            "codec": self.codec.to_dict(),
            "error_bound": self.error_bound.to_dict(),
            "roi_fraction": self.roi_fraction,
            "roi_block_size": self.roi_block_size,
            "postprocess": self.postprocess,
            "postprocess_strategy": self.postprocess_strategy,
            "uncertainty": self.uncertainty,
        }
        if self.input is not None:
            out["input"] = dict(self.input)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkflowConfig":
        data = dict(data)
        kind = data.pop("type", "workflow")
        if kind != "workflow":
            raise ValueError(f"not a workflow config (type={kind!r})")
        _check_unknown("WorkflowConfig", data, (f.name for f in fields(cls)))
        if "codec" in data:
            data["codec"] = CodecSpec.from_dict(data["codec"])
        if "error_bound" in data:
            data["error_bound"] = ErrorBound.from_dict(data["error_bound"])
        return cls(**data)


@dataclass
class PipelineConfig:
    """One in-situ run: a snapshot source through compression into a sink.

    ``source`` describes the snapshot stream, e.g. ``{"kind": "simulation",
    "name": "collapse" | "pulse", "shape": [...], "seed": ..., ...}``;
    ``sink`` is ``{"kind": "store" | "dir", "path": ...}`` or ``None`` for
    in-memory results only.
    """

    codec: CodecSpec = field(default_factory=CodecSpec)
    error_bound: ErrorBound = field(default_factory=lambda: ErrorBound.rel(0.01))
    roi_fraction: float = 0.5
    roi_block_size: int = 8
    compute_quality: bool = True
    max_workers: int = 1
    n_steps: int = 1
    source: Optional[Dict[str, Any]] = None
    sink: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.sink is not None:
            if self.sink.get("kind") not in ("store", "dir"):
                raise ValueError(f"sink kind must be 'store' or 'dir', got {self.sink!r}")
            if not self.sink.get("path"):
                raise ValueError(f"sink needs a 'path', got {self.sink!r}")

    def build(self):
        """Instantiate the configured :class:`repro.api.Pipeline` builder."""
        from repro.api.pipeline import Pipeline

        return Pipeline.from_config(self)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "type": "pipeline",
            "codec": self.codec.to_dict(),
            "error_bound": self.error_bound.to_dict(),
            "roi_fraction": self.roi_fraction,
            "roi_block_size": self.roi_block_size,
            "compute_quality": self.compute_quality,
            "max_workers": self.max_workers,
            "n_steps": self.n_steps,
        }
        if self.source is not None:
            out["source"] = dict(self.source)
        if self.sink is not None:
            out["sink"] = dict(self.sink)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineConfig":
        data = dict(data)
        kind = data.pop("type", "pipeline")
        if kind != "pipeline":
            raise ValueError(f"not a pipeline config (type={kind!r})")
        _check_unknown("PipelineConfig", data, (f.name for f in fields(cls)))
        if "codec" in data:
            data["codec"] = CodecSpec.from_dict(data["codec"])
        if "error_bound" in data:
            data["error_bound"] = ErrorBound.from_dict(data["error_bound"])
        return cls(**data)


def config_from_dict(data: Mapping[str, Any]) -> Union[WorkflowConfig, PipelineConfig]:
    """Dispatch a config dict to the right type via its ``type`` key."""
    kind = data.get("type", "workflow")
    if kind == "workflow":
        return WorkflowConfig.from_dict(data)
    if kind == "pipeline":
        return PipelineConfig.from_dict(data)
    raise ValueError(f"unknown config type {kind!r}; expected 'workflow' or 'pipeline'")


def load_config(path: Union[str, Path]) -> Union[WorkflowConfig, PipelineConfig]:
    """Read and validate a JSON config file (what ``repro run`` consumes)."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text("utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: config must be a JSON object")
    return config_from_dict(raw)
