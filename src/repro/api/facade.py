"""The five-line surface: compress / decompress / open_store / open_array / run_workflow.

These free functions are what most users need; they are re-exported at the
package root so the quickstart is::

    import repro

    result = repro.run_workflow(field, repro.WorkflowConfig(
        codec=repro.CodecSpec.sz3mr(), error_bound=repro.ErrorBound.rel(0.01)))

:func:`run_config` additionally executes a serialized
:class:`~repro.api.config.WorkflowConfig` / :class:`PipelineConfig` and
returns a JSON-ready summary — the exact engine behind ``repro run``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.api.config import PipelineConfig, WorkflowConfig, config_from_dict, load_config
from repro.api.error_bound import ErrorBound

__all__ = [
    "compress",
    "decompress",
    "open_store",
    "open_array",
    "connect",
    "run_workflow",
    "run_config",
]


def load_npy_field(path: Union[str, Path]) -> np.ndarray:
    """Load and validate a 1-3D ``.npy`` field (shared by CLI and configs).

    Raises :class:`ValueError` with a one-line diagnostic on missing files,
    unreadable content or unsupported dimensionality.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(f"input file {path} does not exist")
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read {path} as .npy: {exc}") from exc
    if data.ndim not in (1, 2, 3):
        raise ValueError(f"{path} must hold a 1-3 dimensional array, got {data.ndim}D")
    return np.asarray(data, dtype=np.float64)


def compress(
    data: np.ndarray,
    error_bound: Union[float, ErrorBound, Mapping],
    codec: str = "sz3",
    **options: Any,
):
    """Compress one array with a bare codec; returns a ``CompressedArray``.

    The single-array counterpart of :func:`run_workflow`: no blocking, ROI
    or post-processing — just the error-bounded codec, with ``error_bound``
    accepted in any :class:`ErrorBound` convention.
    """
    from repro.compressors import get_compressor

    return get_compressor(codec, **options).compress(data, ErrorBound.coerce(error_bound))


def decompress(source):
    """Lazy view over a reconstruction (a compressed payload, its bytes, or a path).

    Returns a :class:`repro.array.CompressedArray` view: nothing is decoded
    until the view is indexed (``view[...]``, ``view[10:20, :, ::2]``) or
    coerced with ``numpy.asarray``, after which the reconstruction is served
    from memory.  A ``.rps2`` block container path opens as a true
    block-granular view (only intersecting blocks decode); a single-payload
    ``.rpca`` source decodes whole on first access.
    """
    from repro.array import as_lazy_array, open_array
    from repro.compressors.base import CompressedArray
    from repro.compressors.errors import DecompressionError
    from repro.insitu.io import read_compressed_array

    if isinstance(source, (str, Path)):
        try:
            return open_array(source)
        except DecompressionError:
            source = read_compressed_array(source)
    elif isinstance(source, (bytes, bytearray)):
        source = CompressedArray.from_bytes(bytes(source))
    return as_lazy_array(source)


def open_store(
    root: Union[str, Path],
    codec: Optional[Union["CodecSpec", Mapping]] = None,
    engine=None,
):
    """Open (or create) a :class:`repro.store.Store` directory.

    ``codec`` is a :class:`~repro.api.config.CodecSpec` (or its dict form)
    describing how appended snapshots are blocked and encoded; omitted, the
    store's default SZ3 configuration is used.
    """
    from repro.api.config import CodecSpec
    from repro.store import Store

    compressor = None
    if codec is not None:
        spec = CodecSpec.from_dict(codec) if isinstance(codec, Mapping) else codec
        compressor = spec.build()
    return Store(root, compressor, engine=engine)


def open_array(
    path: Union[str, Path],
    level: int = 0,
    fill_value: float = 0.0,
    engine=None,
):
    """Open one ``.rps2`` block container as a lazy NumPy-style view.

    Two small reads (header + index); indexing the returned
    :class:`repro.array.CompressedArray` decodes only intersecting blocks.
    For whole stores use ``open_store(root)[field, step]`` instead.
    """
    from repro.array import open_array as _open_array

    return _open_array(path, level=level, fill_value=fill_value, engine=engine)


def connect(addr, timeout: float = 30.0, retries: int = 0, backoff: float = 0.05):
    """Connect to a read daemon (``repro serve``) at ``"host:port"``.

    Returns a :class:`repro.serve.RemoteStore` whose surface mirrors the
    read side of a local store: ``remote[field, step]`` is a lazy
    :class:`~repro.serve.RemoteArray` view, indexing round-trips through the
    daemon's shared block cache, and errors keep their local types.  The
    address may equally be a shard router (``repro shard serve``) — the
    wire surface is identical.  ``retries``/``backoff`` add bounded
    exponential-backoff retry on connection refusal, for clients racing a
    daemon that is still starting.
    """
    from repro.serve import RemoteStore

    return RemoteStore(addr, timeout=timeout, retries=retries, backoff=backoff)


def open_http(addr, timeout: float = 30.0):
    """Connect to an HTTP gateway (``repro gateway``) at ``"host:port"``.

    Returns a :class:`repro.gateway.HTTPStore` — the same lazy remote-array
    surface as :func:`connect`, over plain HTTP/1.1, so it works through
    anything that forwards HTTP.  ``store[field, step]`` is a lazy
    :class:`~repro.gateway.HTTPArray`; indexing moves raw ndarray bytes with
    the geometry in response headers, and error envelopes re-raise with
    their original types and messages.
    """
    from repro.gateway import HTTPStore

    return HTTPStore(addr, timeout=timeout)


def run_workflow(
    data,
    config: Optional[Union[WorkflowConfig, Mapping]] = None,
    **overrides: Any,
):
    """Run the full Fig. 3 workflow on ``data`` under a typed config.

    ``data`` is a uniform array (ROI extraction applies) or an
    :class:`~repro.amr.grid.AMRHierarchy` (compressed as-is).  ``config``
    defaults to :class:`WorkflowConfig`'s defaults; keyword overrides patch
    individual fields (e.g. ``error_bound=ErrorBound.psnr(60)``).
    """
    from dataclasses import replace

    from repro.amr.grid import AMRHierarchy

    if config is None:
        config = WorkflowConfig()
    elif isinstance(config, Mapping):
        config = WorkflowConfig.from_dict(config)
    if overrides:
        if "error_bound" in overrides:
            overrides["error_bound"] = ErrorBound.coerce(overrides["error_bound"])
        config = replace(config, **overrides)

    workflow = config.build()
    if isinstance(data, AMRHierarchy):
        return workflow.compress_hierarchy(data, config.error_bound)
    return workflow.compress_uniform(np.asarray(data, dtype=np.float64), config.error_bound)


# -- config execution (the `repro run` engine) --------------------------------


def _load_workflow_input(config: WorkflowConfig, input_path: Optional[Path]):
    if input_path is not None:
        return load_npy_field(input_path)
    spec = config.input
    if spec is None:
        raise ValueError("config has no input; add an 'input' section or pass --input")
    kind = spec.get("kind")
    if kind == "npy":
        if "path" not in spec:
            raise ValueError("input section of kind 'npy' needs a 'path'")
        return load_npy_field(spec["path"])
    if kind == "dataset":
        from repro.datasets import get_dataset

        if "name" not in spec:
            raise ValueError("input section of kind 'dataset' needs a 'name'")
        kwargs: Dict[str, Any] = {}
        if "size" in spec:
            kwargs["size"] = spec["size"]
        if "shape" in spec:
            kwargs["shape"] = tuple(spec["shape"])
        if "seed" in spec:
            kwargs["seed"] = spec["seed"]
        return get_dataset(spec["name"], **kwargs).field
    raise ValueError(f"unknown input kind {kind!r}; expected 'npy' or 'dataset'")


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


def run_config(
    config: Union[str, Path, Mapping, WorkflowConfig, PipelineConfig],
    input_path: Optional[Union[str, Path]] = None,
    save_reconstruction: Optional[Union[str, Path]] = None,
) -> Tuple[Dict[str, Any], Any]:
    """Execute a serialized run config; returns ``(summary, result)``.

    ``summary`` is JSON-ready (what ``repro run`` prints); ``result`` is the
    underlying :class:`WorkflowResult` or list of step reports for further
    Python-side analysis.
    """
    if isinstance(config, (str, Path)):
        config = load_config(config)
    elif isinstance(config, Mapping):
        config = config_from_dict(config)

    if isinstance(config, WorkflowConfig):
        data = _load_workflow_input(config, Path(input_path) if input_path else None)
        result = run_workflow(data, config)
        if save_reconstruction is not None:
            np.save(save_reconstruction, result.best_field)
        summary = {
            "type": "workflow",
            "codec": result.compressed.metadata.get("compressor", config.codec.kind),
            "error_bound": result.error_bound,
            "error_bound_spec": config.error_bound.to_dict(),
            "compression_ratio": float(result.compression_ratio),
            "psnr": _round(result.psnr),
            "ssim": _round(result.ssim),
            "psnr_processed": _round(result.psnr_processed),
            "ssim_processed": _round(result.ssim_processed),
        }
        return summary, result

    if isinstance(config, PipelineConfig):
        from repro.api.pipeline import Pipeline
        from repro.insitu.pipeline import InSituPipeline

        if input_path is not None or save_reconstruction is not None:
            raise ValueError(
                "--input/--save-reconstruction apply to workflow configs only; "
                "pipeline configs declare their source and sink themselves"
            )
        reports = Pipeline.from_config(config).run()
        summary = {
            "type": "pipeline",
            "codec": config.codec.kind,
            "error_bound_spec": config.error_bound.to_dict(),
            "steps": [
                {
                    "step": r.step,
                    "field": r.field_name,
                    "compression_ratio": float(r.compression_ratio),
                    "psnr": _round(r.psnr),
                }
                for r in reports
            ],
            "timings": InSituPipeline.aggregate_timings(reports),
        }
        return summary, reports

    raise TypeError(f"unsupported config object {type(config).__name__}")
