"""``repro.api`` — the typed, config-driven public API (v1).

One facade over the three historical entry surfaces (the
:class:`~repro.core.workflow.MultiResolutionWorkflow`, the
:class:`~repro.insitu.pipeline.InSituPipeline` and the store CLI):

* :class:`ErrorBound` — one spec for every bound convention (``abs``,
  ``rel``, ``ptw_rel``, ``psnr``), accepted by every compression entry
  point and resolved against the data it is applied to;
* :class:`CodecSpec` / :class:`WorkflowConfig` / :class:`PipelineConfig` —
  typed, JSON-round-trippable configs that make runs declarative and
  replayable (``repro run config.json``);
* :class:`Pipeline` — a composable source → roi/filter → compress → sink
  builder whose sinks are v1 container directories or
  :class:`repro.store.Store` directories;
* :func:`compress` / :func:`decompress` / :func:`open_store` /
  :func:`open_array` / :func:`run_workflow` / :func:`run_config` — the
  five-line quickstart surface, re-exported at the package root
  (``import repro``).  The read side is lazy throughout: ``open_store(...)
  [field, step]``, ``open_array(path)`` and ``decompress(...)`` all return
  :class:`repro.array.CompressedArray` views whose indexing decodes only the
  blocks it touches.

Everything here is serializable by construction: a daemonized or sharded
deployment (ROADMAP) can ship these configs as request payloads unchanged.

Only :mod:`repro.api.error_bound` is imported eagerly — it is dependency
free and is pulled into :mod:`repro.compressors.base`, so the rest of this
package loads lazily (PEP 562) to keep that import acyclic.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

from repro.api.error_bound import ERROR_BOUND_MODES, ErrorBound

__all__ = [
    "ErrorBound",
    "ERROR_BOUND_MODES",
    "CodecSpec",
    "WorkflowConfig",
    "PipelineConfig",
    "config_from_dict",
    "load_config",
    "Pipeline",
    "compress",
    "decompress",
    "open_store",
    "open_array",
    "connect",
    "open_http",
    "run_workflow",
    "run_config",
]

#: name -> defining submodule, resolved on first attribute access.
_LAZY_EXPORTS = {
    "CodecSpec": "repro.api.config",
    "WorkflowConfig": "repro.api.config",
    "PipelineConfig": "repro.api.config",
    "config_from_dict": "repro.api.config",
    "load_config": "repro.api.config",
    "Pipeline": "repro.api.pipeline",
    "compress": "repro.api.facade",
    "decompress": "repro.api.facade",
    "open_store": "repro.api.facade",
    "open_array": "repro.api.facade",
    "connect": "repro.api.facade",
    "open_http": "repro.api.facade",
    "run_workflow": "repro.api.facade",
    "run_config": "repro.api.facade",
}

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.api.config import (  # noqa: F401
        CodecSpec,
        PipelineConfig,
        WorkflowConfig,
        config_from_dict,
        load_config,
    )
    from repro.api.facade import (  # noqa: F401
        compress,
        connect,
        decompress,
        open_array,
        open_http,
        open_store,
        run_config,
        run_workflow,
    )
    from repro.api.pipeline import Pipeline  # noqa: F401


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
