"""``HTTPStore`` / ``HTTPArray``: the remote-store surface over plain HTTP.

The gateway's counterpart to :class:`~repro.serve.client.RemoteStore`: same
lazy contract (geometry from one describe, payload bytes only on reads), same
typed exceptions (error envelopes re-raise through
:func:`~repro.serve.protocol.raise_remote_error`, exactly like the socket
client), but speaking HTTP/1.1 via :mod:`http.client` — so it needs nothing
but a URL, and anything else that speaks HTTP (curl, a browser, a dashboard)
can share the origin::

    store = repro.gateway.open_http("127.0.0.1:8080")
    arr = store["density", 10]      # one GET /fields/density?step=10
    plane = arr[:, :, 16]           # one GET /read/density/10?index=...

Index expressions travel as the JSON wire form
(:func:`~repro.serve.protocol.index_to_wire`), so unsupported index kinds
raise client-side with the same ``TypeError`` the local and socket views
produce, and the fuzz tier can assert gateway ≡ router ≡ NumPy down to error
messages.  Array payloads arrive as ``application/octet-stream`` framed by
``X-Repro-Dtype`` / ``X-Repro-Shape`` response headers — zero JSON overhead
on the hot path.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import quote, urlencode

import numpy as np

from repro.serve.daemon import parse_address
from repro.serve.protocol import ProtocolError, index_to_wire, raise_remote_error

__all__ = ["HTTPStore", "HTTPArray", "open_http"]


def open_http(address: str, timeout: float = 30.0) -> "HTTPStore":
    """Open an :class:`HTTPStore` on a gateway at ``host:port``."""
    return HTTPStore(address, timeout=timeout)


class HTTPStore:
    """One keep-alive HTTP connection to a gateway, exchange-serialized.

    Mirrors :class:`~repro.serve.client.RemoteStore`: a lock pins the
    connection to one request at a time (``http.client`` cannot interleave),
    and a request that dies mid-stream reconnects once before surfacing the
    failure — the gateway end of a keep-alive pair may close an idle
    connection at any time.
    """

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        host, port = parse_address(address)
        self.address = f"{host}:{port}"
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._conn: Optional[HTTPConnection] = None  # repro: guarded-by(_lock)
        self._closed = False  # repro: guarded-by(_lock)

    # -- transport -------------------------------------------------------------
    def _request(self, path: str, query: Optional[Dict[str, str]] = None):
        # repro: holds(_lock)
        target = quote(path)
        if query:
            target += "?" + urlencode(query)
        if self._conn is None:
            host, port = parse_address(self.address)
            self._conn = HTTPConnection(host, port, timeout=self.timeout)
        self._conn.request("GET", target, headers={"Accept": "application/octet-stream"})
        resp = self._conn.getresponse()
        return resp, resp.read()

    def fetch(
        self, path: str, query: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One GET; returns (status, lower-cased headers, body bytes)."""
        with self._lock:
            if self._closed:
                raise ProtocolError(f"HTTPStore({self.address}) is closed")
            try:
                resp, body = self._request(path, query)
            except (OSError, HTTPException):
                # The gateway (or an idle timeout) dropped the keep-alive
                # connection; one fresh dial before giving up.
                if self._conn is not None:
                    self._conn.close()
                    self._conn = None
                resp, body = self._request(path, query)
            headers = {name.lower(): value for name, value in resp.getheaders()}
            return resp.status, headers, body

    def fetch_json(
        self, path: str, query: Optional[Dict[str, str]] = None
    ) -> Dict[str, Any]:
        """One GET whose body is JSON; error envelopes raise typed errors."""
        status, _, body = self.fetch(path, query)
        try:
            payload = json.loads(body.decode("utf-8"))
        except ValueError:
            raise ProtocolError(
                f"gateway at {self.address} answered {status} with a "
                f"non-JSON body of {len(body)} bytes"
            )
        if payload.get("status") == "error":
            raise_remote_error(payload)
        return payload

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "HTTPStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- catalog surface -------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.fetch_json("/health")

    def entries(self) -> List[Dict[str, Any]]:
        return list(self.fetch_json("/catalog").get("entries", []))

    def fields(self) -> List[str]:
        return sorted({str(row["field"]) for row in self.entries()})

    def steps(self, field: str) -> List[int]:
        body = self.fetch_json(f"/fields/{field}")
        return [int(step) for step in body.get("steps", [])]

    def describe(self, field: str, step: int = 0) -> Dict[str, Any]:
        return self.fetch_json(f"/fields/{field}", {"step": str(int(step))})

    def __len__(self) -> int:
        return len(self.entries())

    def stats(self) -> Dict[str, Any]:
        return self.fetch_json("/stats")

    def prometheus(self) -> str:
        """The merged Prometheus exposition (``/stats?format=prom``)."""
        status, _, body = self.fetch("/stats", {"format": "prom"})
        if status != 200:
            raise ProtocolError(
                f"gateway at {self.address} answered {status} to a metrics scrape"
            )
        return body.decode("utf-8")

    # -- arrays ----------------------------------------------------------------
    def array(
        self, field: str, step: int, level: int = 0, fill_value: float = 0.0
    ) -> "HTTPArray":
        """Lazy HTTP view of one snapshot (one describe round trip)."""
        described = self.describe(field, step)
        return HTTPArray(
            self, str(field), int(step), described, level=level, fill_value=fill_value
        )

    def __getitem__(self, key: Tuple[str, int]) -> "HTTPArray":
        field, step = key
        return self.array(field, step)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"  # repro: unlocked -- repr is a racy snapshot
        return f"HTTPStore(http://{self.address}/, {state})"


class HTTPArray:
    """Lazy, NumPy-style view whose reads are gateway GETs.

    The same surface as :class:`~repro.serve.client.RemoteArray` — geometry
    properties, ``levels``/``.level(k)``, basic indexing, ``read_roi``,
    ``numpy.asarray`` — backed by ``GET /read/{field}/{step}`` with the index
    (or bbox) in the query string and the ndarray in the octet-stream body.
    """

    def __init__(
        self,
        store: HTTPStore,
        field: str,
        step: int,
        described: Dict[str, Any],
        level: Optional[int] = None,
        fill_value: float = 0.0,
    ) -> None:
        self._store = store
        self._field = field
        self._step = step
        self._described = described
        self._geometry = {
            int(lvl["level"]): lvl for lvl in described.get("levels", [])
        }
        self._level = int(min(self._geometry) if level is None else level)
        if self._level not in self._geometry:
            raise KeyError(
                f"no level {self._level}; available: {sorted(self._geometry)}"
            )
        self.fill_value = float(fill_value)
        self.stats: Dict[str, int] = {
            "requests": 0,
            "blocks_touched": 0,
            "blocks_decoded": 0,
            "cache_hits": 0,
        }

    # -- ndarray-style metadata ------------------------------------------------
    @property
    def field(self) -> str:
        return self._field

    @property
    def step(self) -> int:
        return self._step

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(int(s) for s in self._geometry[self._level]["level_shape"])

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized view")
        return self.shape[0]

    @property
    def levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self._geometry))

    @property
    def level_index(self) -> int:
        return self._level

    def level(self, k: int) -> "HTTPArray":
        """Sibling view of level ``k`` (no round trip; geometry is shared)."""
        return HTTPArray(
            self._store,
            self._field,
            self._step,
            self._described,
            level=k,
            fill_value=self.fill_value,
        )

    @property
    def n_blocks(self) -> int:
        return int(self._geometry[self._level]["n_blocks"])

    # -- reading ---------------------------------------------------------------
    def _read(self, selector: Dict[str, str]) -> np.ndarray:
        query = {
            "level": str(self._level),
            "fill_value": repr(self.fill_value),
            **selector,
        }
        status, headers, body = self._store.fetch(
            f"/read/{self._field}/{self._step}", query
        )
        if status != 200:
            # Error bodies are always the JSON envelope, whatever we accepted.
            envelope = json.loads(body.decode("utf-8"))
            raise_remote_error(envelope)
        self.stats["requests"] += 1
        for key, header in (
            ("blocks_touched", "x-repro-blocks-touched"),
            ("blocks_decoded", "x-repro-blocks-decoded"),
            ("cache_hits", "x-repro-cache-hits"),
        ):
            self.stats[key] += int(headers.get(header, 0))
        dtype = np.dtype(headers.get("x-repro-dtype", "<f8"))
        shape_text = headers.get("x-repro-shape", "")
        shape = tuple(int(n) for n in shape_text.split(",") if n != "")
        out = np.frombuffer(body, dtype=dtype).reshape(shape)
        out.flags.writeable = False
        return out

    def __getitem__(self, index) -> Any:
        # index_to_wire here, client-side, so unsupported kinds raise the
        # exact TypeError the local and socket views raise — no round trip.
        result = self._read({"index": json.dumps(index_to_wire(index))})
        return result[()] if result.shape == () else result

    def read_roi(self, bbox) -> np.ndarray:
        """Decode a clamped cell-space bbox (the classic ``read_roi`` contract)."""
        return self._read(
            {"bbox": ",".join(f"{int(lo)}:{int(hi)}" for lo, hi in bbox)}
        )

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = np.asarray(self[...])
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def __repr__(self) -> str:
        return (
            f"HTTPArray({self._field}/{self._step} via http://{self._store.address}/, "
            f"shape={self.shape}, level={self._level} of {list(self.levels)}, "
            f"blocks={self.n_blocks})"
        )
