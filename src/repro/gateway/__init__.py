"""``repro.gateway`` — an HTTP/1.1 front end for daemons and shard routers.

The wire protocol (:mod:`repro.serve.protocol`) is the right transport
between trusted processes on one machine; it is the wrong thing to hand a
dashboard, a notebook on another host, or ``curl``.  This package bridges
that gap with nothing beyond the stdlib:

* :class:`GatewayDaemon` (:mod:`repro.gateway.daemon`) — an asyncio HTTP
  server that mounts on one wire backend (a
  :class:`~repro.serve.daemon.ReadDaemon` or — fronting a whole cluster —
  a :class:`~repro.shard.RouterDaemon`) through a per-backend
  :class:`~repro.serve.pool.ConnectionPool`, exposing ``/health``,
  ``/catalog``, ``/fields/{field}``, ``/read/{field}/{step}`` and
  ``/stats`` (JSON or ``?format=prom``);
* :class:`HTTPStore` / :class:`HTTPArray` (:mod:`repro.gateway.client`) —
  the familiar lazy remote-array surface, over HTTP;
* :mod:`repro.gateway.http` — the bounded, hostile-input-hardened
  HTTP/1.1 request parsing underneath.

Typed errors survive the extra hop: backend error envelopes relay verbatim
(with an ``http_status`` added — bad bbox → 400, unknown entry → 404,
:class:`~repro.shard.ShardError` → 502 with the shard named), so
``store["nope", 0]`` raises the same ``KeyError`` text over HTTP as over a
socket.  The gateway parity fuzz tier holds all three surfaces — local
NumPy, socket, HTTP — bit-for-bit equal, error messages included.

CLI: ``repro gateway ROOT --http HOST:PORT`` (in-process daemon) or
``repro gateway --router ADDR --http HOST:PORT`` (front a running router).
"""

from repro.gateway import http
from repro.gateway.client import HTTPArray, HTTPStore, open_http
from repro.gateway.daemon import MAX_TRACKED_CLIENTS, STATUS_BY_ERROR_TYPE, GatewayDaemon

__all__ = [
    "GatewayDaemon",
    "HTTPStore",
    "HTTPArray",
    "open_http",
    "STATUS_BY_ERROR_TYPE",
    "MAX_TRACKED_CLIENTS",
    "http",
]
