"""Minimal HTTP/1.1 primitives for the gateway — stdlib ``asyncio`` only.

Just enough of RFC 9112 to front the wire protocol safely: GET requests with
query strings, keep-alive, bounded request lines and header blocks, and a
hard refusal of request bodies (the gateway is read-only, so a body — chunked
or Content-Length — is always a client error).  Everything hostile gets a
clean 4xx/5xx with ``close``, never a hang: the protocol golden tests in
``tests/test_gateway_protocol.py`` pin this down byte-for-byte.

:class:`HttpError` carries the status code a failure maps to; the daemon
renders it as the same JSON error envelope the wire protocol uses
(``{"status": "error", "error_type": ..., "message": ...}``) so HTTP clients
see exactly the typed errors socket clients do.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_head",
    "render_response",
    "json_body",
    "REASONS",
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADER_COUNT",
    "SERVER_NAME",
]

#: Caps on the request head; past them the request is answered (414/431) and
#: the connection closed, because the stream position is no longer trusted.
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 32768
MAX_HEADER_COUNT = 100

SERVER_NAME = "repro-gateway"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    414: "URI Too Long",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


class HttpError(Exception):
    """A request that cannot be served, carrying its HTTP status.

    ``close`` marks failures after which the connection must not be reused
    (framing damage, unread request bodies); the handler honours it with
    ``Connection: close``.
    """

    def __init__(self, status: int, message: str, close: bool = False) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.close = bool(close)


@dataclass
class Request:
    """One parsed request head (the gateway accepts no bodies)."""

    method: str
    path: str
    query: Dict[str, str]
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    nbytes: int = 0  # wire size of the request head, for accounting

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"

    def accepts_json(self) -> bool:
        """Whether the client asked for a JSON body over raw octets."""
        accept = self.headers.get("accept", "")
        return "application/json" in accept.lower()


async def _read_line(reader: asyncio.StreamReader, cap: int, status: int) -> bytes:
    """One CRLF-terminated line within ``cap`` bytes, or a closing HttpError."""
    try:
        line = await reader.readline()
    except ValueError:  # StreamReader limit overrun
        raise HttpError(status, "request line or header line too long", close=True)
    if len(line) > cap:
        raise HttpError(status, "request line or header line too long", close=True)
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request head; ``None`` on clean EOF before any bytes.

    Raises :class:`HttpError` (always with ``close=True`` — a malformed head
    leaves the stream position unknowable) for anything the gateway refuses:
    oversized lines (414/431), malformed request lines or headers (400),
    unsupported HTTP versions (505), and request bodies (413/501).
    """
    line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, 414)
    if not line:
        return None
    nbytes = len(line)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line", close=True)
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(505, f"unsupported protocol version {version!r}", close=True)

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES, 431)
        nbytes += len(line)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "connection closed inside request headers", close=True)
        if nbytes > MAX_HEADER_BYTES:
            raise HttpError(431, "request header block too large", close=True)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}", close=True)
        headers[name.strip().lower()] = value.strip()
        if len(headers) > MAX_HEADER_COUNT:
            raise HttpError(431, "too many request headers", close=True)

    # Read-only surface: any request body is refused, chunked doubly so (the
    # gateway will not parse a chunk stream it has no use for).
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported", close=True)
    try:
        content_length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length header", close=True)
    if content_length > 0:
        raise HttpError(413, "request bodies are not accepted", close=True)

    raw_path, _, raw_query = target.partition("?")
    query: Dict[str, str] = {}
    for key, value in parse_qsl(raw_query, keep_blank_values=True):
        query[key] = value
    return Request(
        method=method,
        path=unquote(raw_path),
        query=query,
        version=version,
        headers=headers,
        nbytes=nbytes,
    )


def render_head(
    status: int,
    content_length: int,
    content_type: str = "application/json",
    extra_headers: Optional[List[Tuple[str, str]]] = None,
    keep_alive: bool = True,
) -> bytes:
    """The response head alone; the caller streams the body behind it."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {content_length}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers or ():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[List[Tuple[str, str]]] = None,
    keep_alive: bool = True,
) -> bytes:
    """The full response (head + body) as one bytes, Content-Length framed."""
    head = render_head(
        status, len(body), content_type, extra_headers, keep_alive=keep_alive
    )
    return head + body


def json_body(payload: Dict) -> bytes:
    """Compact JSON encoding for response bodies (sorted, ASCII-safe)."""
    return (json.dumps(payload, sort_keys=True, default=str) + "\n").encode("utf-8")
