"""``GatewayDaemon``: a stdlib-asyncio HTTP/1.1 front end over the wire protocol.

The web-facing on-ramp: one gateway mounts on a single
:class:`~repro.serve.daemon.ReadDaemon` or — the intended deployment — on a
:class:`~repro.shard.RouterDaemon`, fronting the whole sharded cluster
through one HTTP origin:

* ``GET /health`` — backend health, degraded-shard aware (503 once any
  replica set is entirely unreachable);
* ``GET /catalog`` — the (merged) catalog as JSON;
* ``GET /fields/{field}`` — steps and rows for one field;
  ``?step=N`` returns that container's describe (codec, level geometry);
* ``GET /read/{field}/{step}`` — an ndarray read.  ``level=``, plus
  ``index=`` (NumPy syntax ``10:20,:,::2`` or the JSON wire form) or
  ``bbox=lo:hi,lo:hi,...``; neither reads the whole array.  The payload
  streams as ``application/octet-stream`` with ``X-Repro-Dtype`` /
  ``X-Repro-Shape`` headers, or as a JSON body under ``Accept:
  application/json``;
* ``GET /stats`` — the backend's stats JSON (shard-labeled when routed)
  with a ``gateway`` section added; ``?format=prom`` renders the merged
  Prometheus exposition, ``repro_gateway_*`` families included.

Errors map to typed JSON envelopes — the exact
``{"status": "error", "error_type": ..., "message": ...}`` shape the wire
protocol uses, plus ``http_status`` (and ``shard`` for :class:`ShardError`) —
so an HTTP client re-raises precisely what a socket client would: bad bbox →
400 ``ValueError``, unknown entry → 404 ``KeyError``, shard transport failure
→ 502 ``ShardError``.  Backend error envelopes relay *verbatim* (the gateway
exchanges, never re-phrases), which is what the gateway parity fuzz tier
asserts message-for-message.

Concurrency model: the asyncio event loop runs on a background thread (so
``start()/stop()/serve_forever()`` mirror :class:`WireDaemon`); backend wire
exchanges — blocking socket I/O — run on a small thread pool, each holding a
lease from a :class:`~repro.serve.pool.ConnectionPool`, so concurrent HTTP
requests fan out over up to ``pool_size`` backend connections.  A
max-connections gate answers 503 above the cap, and every request runs under
``request_timeout`` (504 on expiry).  Per-client request/byte accounting is
kept for the first ``MAX_TRACKED_CLIENTS`` distinct addresses (the rest pool
under ``"other"``) and surfaced both in ``/stats`` and as
``repro_gateway_*`` metric families.
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.gateway import http
from repro.gateway.http import HttpError, Request
from repro.obs import REGISTRY, TRACER, access_extra, merge_snapshots, render_prometheus
from repro.obs.collectors import counter_family, gauge_family
from repro.serve.client import ConnectSpec
from repro.serve.pool import ConnectionPool
from repro.serve.protocol import (
    ProtocolError,
    decode_ndarray,
    index_from_wire,
    index_to_wire,
)

__all__ = ["GatewayDaemon", "STATUS_BY_ERROR_TYPE", "MAX_TRACKED_CLIENTS"]

log = logging.getLogger("repro.gateway")

#: Typed wire errors -> HTTP status.  The table is the contract the protocol
#: golden tests pin: client mistakes are 4xx, backend failures are 5xx.
STATUS_BY_ERROR_TYPE: Dict[str, int] = {
    "ValueError": 400,
    "TypeError": 400,
    "IndexError": 400,
    "KeyError": 404,
    "ShardError": 502,
    "BreakerOpenError": 503,
    "ProtocolError": 502,
    "VersionMismatch": 502,
    "RemoteError": 502,
    "TimeoutError": 504,
}

#: Distinct client addresses tracked individually; the long tail aggregates
#: under ``"other"`` so a scrape's label cardinality stays bounded.
MAX_TRACKED_CLIENTS = 64

_RESPONSE_CHUNK = 1 << 16

_REQUESTS = REGISTRY.counter(
    "repro_gateway_requests_total",
    "HTTP requests answered by the gateway, by route and status code.",
    labelnames=("route", "code"),
)
_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_gateway_request_seconds",
    "Gateway request latency by route (parse through response write).",
    labelnames=("route",),
)
_HTTP_BYTES = REGISTRY.counter(
    "repro_gateway_http_bytes_total",
    "HTTP bytes moved by the gateway, by direction.",
    labelnames=("direction",),
)
_BYTES_SENT = _HTTP_BYTES.labels(direction="sent")
_BYTES_RECEIVED = _HTTP_BYTES.labels(direction="received")
_CLIENT_REQUESTS = REGISTRY.counter(
    "repro_gateway_client_requests_total",
    "HTTP requests per client address (long tail under client=\"other\").",
    labelnames=("client",),
)
_CLIENT_BYTES = REGISTRY.counter(
    "repro_gateway_client_bytes_total",
    "HTTP response bytes per client address (long tail under client=\"other\").",
    labelnames=("client",),
)

_SHARD_IN_MESSAGE = re.compile(r"shard '([^']+)'")


class _BackendEnvelope(Exception):
    """A backend error response, carried verbatim to the HTTP error mapper."""

    def __init__(self, resp: Dict[str, Any]) -> None:
        super().__init__(str(resp.get("message", "")))
        self.resp = resp


class GatewayDaemon:
    """HTTP/1.1 front end over one wire-protocol backend (daemon or router).

    Parameters
    ----------
    backend:
        Address (``host:port``) or :class:`ConnectSpec` of the wire-protocol
        backend to front — a read daemon or a shard router.
    host / port:
        HTTP bind address; port 0 picks a free port (see :attr:`address`).
    pool_size:
        Backend connections in the gateway's :class:`ConnectionPool`;
        bounds the gateway's backend fan-out.
    max_connections:
        Open HTTP connections above which new ones are answered 503.
    request_timeout:
        Seconds one request may take end to end before a 504.
    idle_timeout:
        Seconds a keep-alive connection may sit idle before it is closed.
    timeout / retries / backoff:
        Backend :class:`ConnectSpec` dial policy (ignored when ``backend``
        is already a spec).
    """

    def __init__(
        self,
        backend: Union[str, Tuple[str, int], ConnectSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool_size: int = 4,
        max_connections: int = 64,
        request_timeout: float = 30.0,
        idle_timeout: float = 60.0,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        tracer=None,
    ) -> None:
        if not isinstance(backend, ConnectSpec):
            address = backend if isinstance(backend, str) else f"{backend[0]}:{backend[1]}"
            backend = ConnectSpec(
                address, timeout=timeout, retries=retries, backoff=backoff
            )
        self.spec = backend
        self.tracer = TRACER if tracer is None else tracer
        self.pool_size = max(1, int(pool_size))
        self.max_connections = max(1, int(max_connections))
        self.request_timeout = float(request_timeout)
        self.idle_timeout = float(idle_timeout)
        self._host = host
        self._port = int(port)
        self._pool = ConnectionPool(backend, size=self.pool_size, tracer=self.tracer)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._start_error: Optional[BaseException] = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._active = 0  # repro: guarded-by(_lock)
        self._counters: Dict[str, int] = {  # repro: guarded-by(_lock)
            "requests": 0,
            "errors": 0,
            "connections": 0,
            "rejected_connections": 0,
            "http_bytes_sent": 0,
            "http_bytes_received": 0,
        }
        self._clients: Dict[str, Dict[str, int]] = {}  # repro: guarded-by(_lock)
        self._collector_fns: list = []

    # -- lifecycle -------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    def start(self) -> str:
        """Warm the backend pool, bind the HTTP server, return the address."""
        if self._thread is not None:
            return self.address
        # One backend connection up front: a dead or misaddressed backend
        # fails here, loudly, not on the first HTTP request.
        self._pool.warm()
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool_size + 2, thread_name_prefix="repro-gateway-io"
        )
        self._stop_event.clear()
        self._start_error = None
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(started,),
            name="repro-gateway-loop",
            daemon=True,
        )
        self._thread.start()
        started.wait(timeout=30.0)
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join(timeout=5.0)
            self._thread = None
            self._executor.shutdown(wait=False)
            self._executor = None
            raise error
        self._collector_fns = [REGISTRY.add_collector(self._collect_families, owner=self)]
        log.debug("gateway started", extra=access_extra(address=self.address))
        return self.address

    def _run_loop(self, started: threading.Event) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(
                    self._handle,
                    self._host,
                    self._port,
                    limit=http.MAX_HEADER_BYTES,
                )
            )
        except OSError as exc:
            self._start_error = exc
            started.set()
            return
        sock = self._server.sockets[0]
        self._host, self._port = sock.getsockname()[:2]
        started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._shutdown_async())
            self._loop.close()

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def serve_forever(self, timeout: Optional[float] = None) -> None:
        """Start (if needed) and block until :meth:`request_stop` or ``timeout``."""
        self.start()
        self._stop_event.wait(timeout)

    def request_stop(self) -> None:
        """Unblock :meth:`serve_forever`; safe from a signal handler."""
        self._stop_event.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Close the server and every connection; drain the backend pool."""
        self._stop_event.set()
        for collect in self._collector_fns:
            REGISTRY.remove_collector(collect)
        self._collector_fns = []
        if self._thread is not None:
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
            self._thread = None
            self._loop = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._pool.close()
        log.debug("gateway stopped", extra=access_extra(address=self.address))

    def __enter__(self) -> "GatewayDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = str(peer[0]) if peer else "unknown"
        with self._lock:
            self._counters["connections"] += 1
            self._active += 1
            over_capacity = self._active > self.max_connections
        try:
            if over_capacity:
                with self._lock:
                    self._counters["rejected_connections"] += 1
                body = http.json_body(
                    self._envelope(
                        503,
                        "ProtocolError",
                        f"gateway at capacity ({self.max_connections} connections)",
                    )
                )
                writer.write(
                    http.render_response(
                        503,
                        body,
                        extra_headers=[("Retry-After", "1")],
                        keep_alive=False,
                    )
                )
                await writer.drain()
                # Swallow whatever request bytes are in flight before closing;
                # closing with unread input RSTs the socket and the client
                # never sees the 503.
                try:
                    await asyncio.wait_for(reader.read(65536), timeout=0.2)
                except (asyncio.TimeoutError, OSError):
                    pass
                return
            while not self._stop_event.is_set():
                try:
                    request = await asyncio.wait_for(
                        http.read_request(reader), timeout=self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection; hang up quietly
                except HttpError as exc:
                    # Framing damage: answer, then close — the stream
                    # position is no longer trustworthy.
                    await self._finish(
                        writer,
                        exc.status,
                        http.json_body(self._http_error_envelope(exc)),
                        route="parse",
                        client=client,
                        request=None,
                        keep_alive=False,
                        started=time.perf_counter(),
                    )
                    break
                if request is None:
                    break  # clean EOF between requests
                keep_alive = await self._serve_request(request, writer, client)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away mid-stream; nothing left to tell them
        except asyncio.CancelledError:
            raise
        finally:
            with self._lock:
                self._active -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _serve_request(
        self, request: Request, writer: asyncio.StreamWriter, client: str
    ) -> bool:
        started = time.perf_counter()
        route = "unknown"
        keep_alive = request.keep_alive
        extra_headers: List[Tuple[str, str]] = []
        try:
            route, handler, args = self._route(request)
            status, content_type, body, extra_headers = await asyncio.wait_for(
                handler(request, *args), timeout=self.request_timeout
            )
        except HttpError as exc:
            status, content_type = exc.status, "application/json"
            body = http.json_body(self._http_error_envelope(exc))
            if exc.status == 405:
                extra_headers = [("Allow", "GET")]
            keep_alive = keep_alive and not exc.close
        except _BackendEnvelope as exc:
            status, envelope = self._map_backend_error(exc.resp)
            content_type, body = "application/json", http.json_body(envelope)
        except asyncio.TimeoutError:
            status, content_type = 504, "application/json"
            body = http.json_body(
                self._envelope(
                    504,
                    "TimeoutError",
                    f"request exceeded the gateway timeout "
                    f"({self.request_timeout:g} s)",
                )
            )
            # The backend exchange may still be running on its worker
            # thread; do not reuse a connection we might interleave on.
            keep_alive = False
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - every failure becomes a response
            log.warning(
                "gateway internal error",
                extra=access_extra(route=route, error=repr(exc)),
            )
            status, content_type = 500, "application/json"
            body = http.json_body(self._envelope(500, type(exc).__name__, str(exc)))
        return await self._finish(
            writer,
            status,
            body,
            route=route,
            client=client,
            request=request,
            keep_alive=keep_alive,
            started=started,
            content_type=content_type,
            extra_headers=extra_headers,
        )

    async def _finish(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body,
        route: str,
        client: str,
        request: Optional[Request],
        keep_alive: bool,
        started: float,
        content_type: str = "application/json",
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> bool:
        """Stream head + body, then account the request; returns ``keep_alive``."""
        view = memoryview(body)
        head = http.render_head(
            status, len(view), content_type, extra_headers, keep_alive=keep_alive
        )
        writer.write(head)
        for offset in range(0, len(view), _RESPONSE_CHUNK):
            writer.write(view[offset : offset + _RESPONSE_CHUNK])
            await writer.drain()
        await writer.drain()

        sent = len(head) + len(view)
        received = request.nbytes if request is not None else 0
        duration = time.perf_counter() - started
        _REQUESTS.labels(route=route, code=str(status)).inc()
        _REQUEST_SECONDS.labels(route=route).observe(duration)
        _BYTES_SENT.inc(sent)
        _BYTES_RECEIVED.inc(received)
        with self._lock:
            self._counters["requests"] += 1
            if status >= 400:
                self._counters["errors"] += 1
            self._counters["http_bytes_sent"] += sent
            self._counters["http_bytes_received"] += received
            key = self._client_key(client)
            account = self._clients.setdefault(
                key, {"requests": 0, "bytes_sent": 0, "bytes_received": 0}
            )
            account["requests"] += 1
            account["bytes_sent"] += sent
            account["bytes_received"] += received
        _CLIENT_REQUESTS.labels(client=key).inc()
        _CLIENT_BYTES.labels(client=key).inc(sent)
        log.info(
            "gateway access",
            extra=access_extra(
                route=route,
                status=status,
                client=client,
                bytes=sent,
                ms=round(duration * 1e3, 3),
            ),
        )
        return keep_alive

    def _client_key(self, client: str) -> str:  # repro: holds(_lock)
        if client in self._clients or len(self._clients) < MAX_TRACKED_CLIENTS:
            return client
        return "other"

    # -- routing ---------------------------------------------------------------
    def _route(self, request: Request) -> Tuple[str, Callable, tuple]:
        if request.method != "GET":
            raise HttpError(
                405, f"method {request.method!r} not allowed; the gateway is GET-only"
            )
        path = request.path.rstrip("/") or "/"
        if path == "/health":
            return "health", self._r_health, ()
        if path == "/catalog":
            return "catalog", self._r_catalog, ()
        if path == "/stats":
            return "stats", self._r_stats, ()
        parts = [part for part in path.split("/") if part]
        if len(parts) == 2 and parts[0] == "fields":
            return "fields", self._r_field, (parts[1],)
        if len(parts) == 3 and parts[0] == "read":
            return "read", self._r_read, (parts[1], parts[2])
        raise HttpError(
            404,
            f"no route for {request.path!r}; routes: /health, /catalog, "
            "/fields/{field}, /read/{field}/{step}, /stats",
        )

    # -- backend exchange ------------------------------------------------------
    async def _exchange(self, header: Dict[str, Any]) -> Tuple[Dict[str, Any], bytes]:
        """One pooled wire exchange on a worker thread; error envelopes raise.

        The response header comes back exactly as the backend wrote it, so a
        shard's (or daemon's) typed error reaches the HTTP client with its
        original type and message — the parity the fuzz tier asserts.
        Backend spans graft into the gateway's tracer, extending the one
        trace tree across the HTTP hop.
        """
        op = str(header.get("op"))

        def call() -> Tuple[Dict[str, Any], bytes]:
            # The trace context is thread-local, so the root span opens here
            # on the worker thread; exchange() stamps it into the request
            # header and the backend parents its spans on ours.
            with self.tracer.trace("gateway_exchange", op=op, backend=self.spec.address):
                with self._pool.lease() as backend:
                    return backend.exchange(header)

        assert self._loop is not None and self._executor is not None
        try:
            resp, payload = await self._loop.run_in_executor(self._executor, call)
        except (OSError, ProtocolError) as exc:
            raise _BackendEnvelope(
                {
                    "status": "error",
                    "error_type": type(exc).__name__,
                    "message": f"backend at {self.spec.address} failed during "
                    f"{op!r}: {exc}",
                }
            ) from exc
        spans = resp.pop("spans", None)
        if spans and self.tracer.enabled:
            self.tracer.graft(spans)
        if resp.get("status") != "ok":
            raise _BackendEnvelope(resp)
        return resp, payload

    # -- error mapping ---------------------------------------------------------
    def _envelope(
        self, status: int, error_type: str, message: str, **extra: Any
    ) -> Dict[str, Any]:
        return {
            "status": "error",
            "error_type": error_type,
            "message": message,
            "http_status": int(status),
            **extra,
        }

    def _http_error_envelope(self, exc: HttpError) -> Dict[str, Any]:
        error_type = {400: "ValueError", 404: "KeyError", 504: "TimeoutError"}.get(
            exc.status, "ProtocolError"
        )
        return self._envelope(exc.status, error_type, exc.message)

    def _map_backend_error(self, resp: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """A backend error envelope -> (HTTP status, response body).

        ``error_type`` and ``message`` pass through verbatim;
        ``http_status`` is added, and a :class:`ShardError`'s shard name is
        lifted into its own field so callers need not parse the message.
        """
        error_type = str(resp.get("error_type", "RemoteError"))
        message = str(resp.get("message", ""))
        status = STATUS_BY_ERROR_TYPE.get(error_type, 500)
        envelope = self._envelope(status, error_type, message)
        if error_type == "ShardError":
            match = _SHARD_IN_MESSAGE.search(message)
            if match:
                envelope["shard"] = match.group(1)
        return status, envelope

    # -- route handlers --------------------------------------------------------
    async def _r_health(self, request: Request) -> Tuple[int, str, bytes, list]:
        """Backend health, degraded-shard aware.

        A router backend reports per-shard circuit-breaker state: 200 while
        every entry is still reachable through some replica (the ``degraded``
        list names shards currently failing over), 503 once any replica set
        is entirely down.  A plain daemon backend reports 200 while it
        answers at all.
        """
        try:
            resp, _ = await self._exchange({"op": "health"})
        except _BackendEnvelope as exc:
            raise HttpError(
                503,
                f"backend at {self.spec.address} is not healthy: "
                f"{exc.resp.get('message', '')}",
            )
        body = {k: v for k, v in resp.items() if k != "status"}
        body["backend"] = self.spec.address
        if not resp.get("ok", False):
            body["status"] = "error"
            body["error_type"] = "BreakerOpenError"
            body["message"] = (
                f"backend at {self.spec.address} has unreachable entries; "
                f"shards down: {sorted(resp.get('degraded', []))}"
            )
            body["http_status"] = 503
            return 503, "application/json", http.json_body(body), []
        body["status"] = "ok"
        return 200, "application/json", http.json_body(body), []

    async def _r_catalog(self, request: Request) -> Tuple[int, str, bytes, list]:
        resp, _ = await self._exchange({"op": "catalog"})
        body = {"status": "ok", "entries": resp.get("entries", [])}
        return 200, "application/json", http.json_body(body), []

    async def _r_field(self, request: Request, field: str) -> Tuple[int, str, bytes, list]:
        if "step" in request.query:
            step = _parse_int(request.query["step"], "step")
            resp, _ = await self._exchange(
                {"op": "describe", "field": field, "step": step}
            )
            body = {**resp, "field": field, "step": step}
            return 200, "application/json", http.json_body(body), []
        resp, _ = await self._exchange({"op": "catalog"})
        rows = [
            row
            for row in resp.get("entries", [])
            if str(row.get("field")) == field
        ]
        if not rows:
            raise HttpError(404, f"store has no field {field!r}")
        body = {
            "status": "ok",
            "field": field,
            "steps": sorted(int(row["step"]) for row in rows),
            "entries": rows,
        }
        return 200, "application/json", http.json_body(body), []

    async def _r_read(
        self, request: Request, field: str, step_text: str
    ) -> Tuple[int, str, Any, list]:
        step = _parse_int(step_text, "step")
        header: Dict[str, Any] = {
            "op": "read",
            "field": field,
            "step": step,
            "level": _parse_int(request.query.get("level", "0"), "level"),
            "fill_value": _parse_float(request.query.get("fill_value", "0"), "fill_value"),
        }
        # Selector parsing is a client mistake -> 400 here; *semantic*
        # failures (bbox outside the domain, out-of-range index) travel to
        # the backend and come back as its typed errors, message intact.
        # Both selectors present also travels through: the daemon's
        # "exactly one of 'index' or 'bbox'" ValueError is the parity answer.
        if "index" in request.query:
            header["index"] = _parse_index_param(request.query["index"])
        if "bbox" in request.query:
            header["bbox"] = _parse_bbox_param(request.query["bbox"])
        if "index" not in header and "bbox" not in header:
            header["index"] = index_to_wire(...)  # whole-array read
        resp, payload = await self._exchange(header)

        shape = [int(n) for n in resp.get("shape", [])]
        dtype = str(resp.get("dtype", "<f8"))
        accounting = resp.get("accounting", {})
        if request.accepts_json():
            array = np.asarray(decode_ndarray(resp, payload))
            body = {
                "status": "ok",
                "field": field,
                "step": step,
                "dtype": dtype,
                "shape": shape,
                "data": array.tolist(),
                "accounting": accounting,
            }
            return 200, "application/json", http.json_body(body), []
        extra = [
            ("X-Repro-Dtype", dtype),
            ("X-Repro-Shape", ",".join(str(n) for n in shape)),
            ("X-Repro-Blocks-Touched", str(int(accounting.get("blocks_touched", 0)))),
            ("X-Repro-Blocks-Decoded", str(int(accounting.get("blocks_decoded", 0)))),
            ("X-Repro-Cache-Hits", str(int(accounting.get("cache_hits", 0)))),
        ]
        return 200, "application/octet-stream", payload, extra

    async def _r_stats(self, request: Request) -> Tuple[int, str, bytes, list]:
        resp, _ = await self._exchange({"op": "stats"})
        resp.pop("status", None)
        if request.query.get("format") == "prom":
            backend_metrics = resp.get("metrics") or []
            own = [
                family
                for family in REGISTRY.snapshot()
                if family["name"].startswith("repro_gateway_")
            ]
            # When the backend shares this process (in-process daemon mode)
            # its snapshot already carries the gateway families; name-based
            # exclusion keeps the merge double-count-free either way.
            relayed = [
                family
                for family in backend_metrics
                if not family["name"].startswith("repro_gateway_")
            ]
            text = render_prometheus(merge_snapshots(relayed, own))
            return 200, "text/plain; version=0.0.4", text.encode("utf-8"), []
        body = {"status": "ok", **resp, "gateway": self.stats()}
        return 200, "application/json", http.json_body(body), []

    # -- introspection ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Gateway accounting: counters, per-client usage, pool state."""
        with self._lock:
            out: Dict[str, Any] = dict(self._counters)
            out["active_connections"] = self._active
            out["clients"] = {
                key: dict(account) for key, account in self._clients.items()
            }
        out["backend"] = self.spec.address
        out["pool"] = self._pool.stats()
        return out

    def _collect_families(self) -> list:
        with self._lock:
            counters = dict(self._counters)
            active = self._active
            tracked = len(self._clients)
        pool = self._pool.stats()
        return [
            counter_family(
                "repro_gateway_connections_total",
                "HTTP connections accepted since gateway start.",
                counters["connections"],
            ),
            counter_family(
                "repro_gateway_rejected_connections_total",
                "HTTP connections answered 503 by the max-connections gate.",
                counters["rejected_connections"],
            ),
            counter_family(
                "repro_gateway_errors_total",
                "HTTP requests answered with a 4xx/5xx status.",
                counters["errors"],
            ),
            gauge_family(
                "repro_gateway_active_connections",
                "HTTP connections currently open.",
                active,
            ),
            gauge_family(
                "repro_gateway_backend_connections",
                "Pooled backend connections currently open.",
                pool["open"],
            ),
            gauge_family(
                "repro_gateway_tracked_clients",
                "Distinct client addresses with individual accounting.",
                tracked,
            ),
        ]

    def __repr__(self) -> str:
        bound = f"at {self.address}" if self._thread is not None else "(not started)"
        return f"GatewayDaemon({self.spec.address} {bound})"


# -- query-parameter parsing ---------------------------------------------------
def _parse_int(text: str, name: str) -> int:
    try:
        return int(text)
    except (TypeError, ValueError):
        raise HttpError(400, f"{name} must be an integer, got {text!r}")


def _parse_float(text: str, name: str) -> float:
    try:
        return float(text)
    except (TypeError, ValueError):
        raise HttpError(400, f"{name} must be a number, got {text!r}")


def _parse_index_param(text: str) -> list:
    """``index=`` accepts the JSON wire form or NumPy slice syntax.

    The JSON form (``[5, "...", {"start": 1, "stop": null, "step": 2}]``) is
    what :mod:`repro.gateway.client` sends — round-tripping it through
    :func:`index_from_wire` validates without changing a byte, so fuzz
    replays hit the backend with exactly the expression a socket client
    would.  The textual form (``10:20,:,::2``) is for humans and curl.
    """
    text = text.strip()
    if text.startswith("["):
        try:
            wire = json.loads(text)
            index_from_wire(wire)  # validation only; forwarded verbatim
        except (ValueError, ProtocolError) as exc:
            raise HttpError(400, f"bad index expression {text!r}: {exc}")
        return wire
    items: list = []
    for part in text.split(","):
        part = part.strip()
        if part == "...":
            items.append(Ellipsis)
            continue
        if ":" in part:
            pieces = part.split(":")
            if len(pieces) > 3:
                raise HttpError(
                    400, f"bad index axis {part!r}; at most two ':' allowed"
                )
            try:
                items.append(
                    slice(*(int(piece) if piece.strip() else None for piece in pieces))
                )
            except ValueError:
                raise HttpError(
                    400, f"bad index axis {part!r}; expected integer slice parts"
                )
            continue
        try:
            items.append(int(part))
        except ValueError:
            raise HttpError(
                400, f"bad index axis {part!r}; expected int, slice or '...'"
            )
    return index_to_wire(tuple(items))


def _parse_bbox_param(text: str) -> List[List[int]]:
    """``bbox=0:16,8:24,0:32`` -> ``[[0, 16], [8, 24], [0, 32]]``."""
    pairs: List[List[int]] = []
    for part in text.split(","):
        lo, sep, hi = part.partition(":")
        if not sep:
            raise HttpError(400, f"bad bbox axis {part!r}; expected lo:hi")
        try:
            pairs.append([int(lo), int(hi)])
        except ValueError:
            raise HttpError(400, f"bad bbox axis {part!r}; expected integer lo:hi")
    return pairs
