"""``repro.array`` — a lazy, NumPy-style read API over compressed data.

The read-side counterpart of :mod:`repro.api`: where the facade unified how
runs are *written*, this package unifies how their output is *read*.  Opening
returns a view; indexing triggers I/O::

    arr = repro.open_store("run")["density", 10]   # no payload touched yet
    plane = arr[:, :, 16]                          # decodes one plane of blocks
    window = arr[10:20, :, ::2]                    # steps compile to one bbox
    coarse = arr.level(1)[...]                     # whole coarse level

Three pieces:

* :class:`CompressedArray` (:mod:`repro.array.core`) — the view: ndarray-style
  metadata (``shape``/``dtype``/``ndim``), ``levels`` + ``.level(k)`` for
  multi-resolution data, and ``__getitem__`` over the basic-indexing subset
  (ints, slices with steps, ``...``), decoding **only intersecting blocks**;
* :mod:`repro.array.indexing` — the pure compiler from index expressions to
  the bbox/block arithmetic of :mod:`repro.store.query`;
* :class:`BlockCache` (:mod:`repro.array.cache`) — a bounded, instrumented
  LRU of decoded blocks shared across views of a store.

Every classic read path is an adapter over this surface:
``Store.read_roi`` / ``ContainerReader.read_roi`` delegate to views,
``repro.decompress`` returns one, and the vis helpers accept them.  A view
query (source token, level, compiled index) is exactly the request shape the
read daemon (:mod:`repro.serve`) ships over its wire protocol, which is why
:class:`repro.serve.RemoteArray` can mirror this surface one-to-one.
"""

from repro.array.cache import BlockCache
from repro.array.core import (
    CompressedArray,
    ContainerSource,
    SingleBlockSource,
    as_lazy_array,
    open_array,
)
from repro.array.indexing import CompiledIndex, compile_index

__all__ = [
    "CompressedArray",
    "BlockCache",
    "ContainerSource",
    "SingleBlockSource",
    "CompiledIndex",
    "compile_index",
    "as_lazy_array",
    "open_array",
]
