"""Bounded LRU cache for decoded unit blocks.

Lazy views (:class:`repro.array.CompressedArray`) decode a block at most once
per cache lifetime: repeated queries over overlapping regions — a sliding ROI,
a slice viewer stepping through planes, a halo finder revisiting neighbours —
hit the cache instead of re-inflating payloads.  The cache is bounded both in
*blocks* and in *bytes* (block size depends on the store's unit size, so a
count bound alone would let a 64^3-unit store pin gigabytes), and it is
instrumented with hit/miss/eviction counters that the tests and
``repro store read`` use to prove the decode accounting.

Keys are ``(token, level, block-coordinate)`` tuples, where ``token``
namespaces the owning container, so one cache can safely back every view of a
:class:`repro.store.Store`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional

import numpy as np

__all__ = ["BlockCache"]


class BlockCache:
    """Thread-safe bounded LRU over decoded block arrays.

    Parameters
    ----------
    max_blocks:
        Capacity in blocks; the least-recently-used entry is evicted when a
        put would exceed it.  Must be at least 1.
    max_bytes:
        Capacity in decoded-array bytes (default 64 MiB).  Both bounds are
        enforced; the most recent entry always stays, so a single block
        larger than ``max_bytes`` still caches (alone).
    """

    def __init__(self, max_blocks: int = 512, max_bytes: int = 64 * 2 ** 20) -> None:
        self.max_blocks = int(max_blocks)
        if self.max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.max_bytes = int(max_bytes)
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()  # repro: guarded-by(_lock)
        self._lock = threading.Lock()
        self._nbytes = 0  # repro: guarded-by(_lock)
        self._resident = 0  # repro: guarded-by(_lock)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        # len() during a concurrent put/evict must not see the OrderedDict
        # mid-relink (CPython re-links nodes across several bytecodes).
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Cached block for ``key``, refreshing its recency; ``None`` on miss."""
        with self._lock:
            block = self._entries.get(key)
            if block is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return block

    @staticmethod
    def _resident_nbytes(block: np.ndarray) -> int:
        """Bytes the cached entry actually pins: its owned buffer, or — for a
        view — the whole buffer it keeps alive (``base``), which is what the
        process pays while the entry lives."""
        base = block.base
        if base is None:
            return int(block.nbytes)
        return int(getattr(base, "nbytes", block.nbytes))

    def put(self, key: Hashable, block: np.ndarray) -> None:
        """Insert a decoded block, evicting the least recently used beyond capacity.

        The stored array is marked read-only: every view and remote request
        pastes *from* the shared entry, so a consumer scribbling on it would
        silently corrupt all later reads of the block.
        """
        block.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
                self._resident -= self._resident_nbytes(old)
            self._entries[key] = block
            self._nbytes += block.nbytes
            self._resident += self._resident_nbytes(block)
            while len(self._entries) > 1 and (
                len(self._entries) > self.max_blocks or self._nbytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self._resident -= self._resident_nbytes(evicted)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            self._resident = 0

    @property
    def stats(self) -> Dict[str, int]:
        """Counters as plain data: hits, misses, evictions, size and bounds.

        ``nbytes`` sums the logical size of the cached blocks (what the
        capacity bound meters); ``bytes_resident`` charges what the entries
        actually pin in memory — for read-only *views* that share a larger
        buffer, the whole buffer, so the two diverge exactly when zero-copy
        caching is holding more than it stores.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "nbytes": self._nbytes,
                "bytes_resident": self._resident,
                "max_blocks": self.max_blocks,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"BlockCache(size={s['size']}/{s['max_blocks']}, "
            f"hits={s['hits']}, misses={s['misses']}, evictions={s['evictions']})"
        )
