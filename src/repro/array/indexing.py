"""Compilation of NumPy-style indices into block-store bbox queries.

A lazy view's ``__getitem__`` accepts the basic-indexing subset of NumPy
(integers, slices with arbitrary steps, ``...``, missing trailing axes) and
must decode only the blocks its selection touches.  The compiler here turns an
index expression into two pieces:

* a per-axis half-open cell **bbox** — the tightest axis-aligned box covering
  every selected cell, in exactly the form
  :func:`repro.store.query.normalize_bbox` validates — which drives the block
  intersection and I/O;
* a per-axis **relative selection** (slice or integer) applied to the
  assembled bbox array afterwards, which realises steps, reversals and
  integer-axis dropping without touching any further data.

Keeping this pure (no arrays, no I/O) makes the index arithmetic exhaustively
unit-testable — the fuzz suite (``tests/test_array_fuzz.py``) drives it with
seeded random expressions against NumPy — and lets the read daemon
(:mod:`repro.serve`) compile an index shipped as plain request data.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

__all__ = ["CompiledIndex", "compile_index", "unsupported_index_error"]


def unsupported_index_error(item: Any) -> TypeError:
    """The one diagnostic for index elements outside the basic-indexing subset.

    Shared with the wire codec (:mod:`repro.serve.protocol`), which must
    reject exactly what this compiler rejects with exactly this message —
    the fuzz suite asserts remote/local error parity.
    """
    return TypeError(
        f"unsupported index element {item!r}; lazy views support integers, "
        "slices and '...' (basic indexing) only"
    )

#: Index elements accepted per axis after ellipsis expansion.
AxisIndex = Union[int, slice]


@dataclass(frozen=True)
class CompiledIndex:
    """One compiled index expression.

    ``bbox`` may contain empty axes (``lo == hi``) for selections with no
    cells; the caller routes it through ``normalize_bbox`` so empty and
    out-of-domain selections fail with the same one-line ``ValueError`` as
    every other bbox query surface.
    """

    bbox: Tuple[Tuple[int, int], ...]
    rel: Tuple[AxisIndex, ...]

    @property
    def ndim_out(self) -> int:
        """Dimensionality of the selection result (integer axes are dropped)."""
        return sum(1 for r in self.rel if isinstance(r, slice))


def _expand_ellipsis(index: Tuple[Any, ...], ndim: int) -> List[Any]:
    n_ellipsis = sum(1 for item in index if item is Ellipsis)
    if n_ellipsis > 1:
        raise IndexError("an index can only have a single ellipsis ('...')")
    n_explicit = len(index) - n_ellipsis
    if n_explicit > ndim:
        raise IndexError(
            f"too many indices for array: array is {ndim}-dimensional, "
            f"but {n_explicit} were indexed"
        )
    out: List[Any] = []
    for item in index:
        if item is Ellipsis:
            out.extend([slice(None)] * (ndim - n_explicit))
        else:
            out.append(item)
    out.extend([slice(None)] * (ndim - len(out)))
    return out


def _compile_axis(item: Any, n: int, axis: int) -> Tuple[Tuple[int, int], AxisIndex]:
    if isinstance(item, slice):
        start, stop, step = item.indices(n)
        count = len(range(start, stop, step))
        if count == 0:
            # Empty selection: an empty bbox the caller's normalize_bbox
            # rejects with the shared one-line diagnostic.
            anchor = min(max(start, 0), n)
            return (anchor, anchor), slice(0, 0, 1)
        last = start + step * (count - 1)
        if step > 0:
            lo, hi = start, last + 1
            return (lo, hi), slice(0, None, step)
        lo, hi = last, start + 1
        return (lo, hi), slice(start - lo, None, step)
    try:
        i = operator.index(item)
    except TypeError:
        raise unsupported_index_error(item) from None
    orig = i
    if i < 0:
        i += n
    if not 0 <= i < n:
        raise IndexError(f"index {orig} is out of bounds for axis {axis} with size {n}")
    return (i, i + 1), 0


def compile_index(index: Any, shape: Sequence[int]) -> CompiledIndex:
    """Compile a NumPy-style index against ``shape`` into bbox + relative parts.

    Supports integers (negative allowed), slices with any step, ``...`` and
    missing trailing axes.  Raises ``IndexError`` for out-of-bounds integers or
    too many indices, ``TypeError`` for unsupported element kinds (boolean or
    array indices).
    """
    shape = tuple(int(s) for s in shape)
    if not isinstance(index, tuple):
        index = (index,)
    items = _expand_ellipsis(index, len(shape))
    bbox: List[Tuple[int, int]] = []
    rel: List[AxisIndex] = []
    for axis, (item, n) in enumerate(zip(items, shape)):
        pair, r = _compile_axis(item, n, axis)
        bbox.append(pair)
        rel.append(r)
    return CompiledIndex(bbox=tuple(bbox), rel=tuple(rel))
