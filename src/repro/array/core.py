"""``CompressedArray``: a lazy, NumPy-style view over block-compressed data.

Opening a view costs two small reads (header + index); data moves only when
the view is indexed.  ``__getitem__`` compiles the index expression
(:mod:`repro.array.indexing`) into the same bbox/block arithmetic every store
query uses (:mod:`repro.store.query`), decodes **only the intersecting
blocks** — batched through the container's
:class:`~repro.store.engine.CodecEngine` when one is attached — and pastes
them into the result, consulting a bounded
:class:`~repro.array.cache.BlockCache` so revisited blocks decode once.

The view is source-agnostic: a :class:`ContainerSource` serves ``.rps2``
block containers (and, via :class:`repro.store.Store`, whole stores), while a
:class:`SingleBlockSource` wraps one compressed blob or an already-decoded
ndarray as a single whole-domain block, so facade reconstructions share the
indexing surface.  Not to be confused with
:class:`repro.compressors.base.CompressedArray`, the *payload* container this
view decodes from.

Block sources implement a small duck-typed protocol::

    levels               -> tuple of available level indices
    level_shape(level)   -> cell-space shape of one level
    unit_size(level)     -> unit block edge length of one level
    n_blocks(level)      -> occupied block count of one level
    intersecting(level, block_range) -> (handles, coords) of occupied blocks
    decode(level, handles)           -> list of decoded block arrays
    decode_into(level, handles, outs, srcs) -> decode straight into views
    token                -> hashable namespace for cache keys
    stats                -> dict of decode counters

which is exactly the request shape the read daemon (:mod:`repro.serve`)
serialises — its per-request accounting wraps this protocol unchanged.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.array.cache import BlockCache
from repro.array.indexing import compile_index
from repro.obs import REGISTRY
from repro.obs import span as obs_span
from repro.store.query import (
    BBox,
    bbox_to_block_range,
    bounds_to_slices,
    normalize_bbox,
    paste_slices_batch,
)

#: Where a read's blocks came from: served from the block cache or decoded.
_READ_BLOCKS = REGISTRY.counter(
    "repro_read_blocks_total",
    "Blocks consumed by lazy-view reads, by how they were obtained.",
    labelnames=("outcome",),
)
_READ_SECONDS = REGISTRY.histogram(
    "repro_read_seconds",
    "End-to-end bbox read latency (plan + decode + paste).",
)
_BLOCKS_HIT = _READ_BLOCKS.labels(outcome="hit")
_BLOCKS_DECODED = _READ_BLOCKS.labels(outcome="decoded")

__all__ = [
    "CompressedArray",
    "ContainerSource",
    "SingleBlockSource",
    "as_lazy_array",
    "open_array",
]


class ContainerSource:
    """Block source over a :class:`~repro.store.format.ContainerReader`.

    Decoding goes through the reader, so its ``stats`` accounting (and its
    attached engine, when present) applies to lazy reads exactly as to the
    classic query methods.
    """

    def __init__(self, reader) -> None:
        self.reader = reader
        self.token = str(reader.path)

    @property
    def levels(self) -> Tuple[int, ...]:
        return tuple(info.level for info in self.reader.levels)

    def level_shape(self, level: int) -> Tuple[int, ...]:
        return self.reader.level_info(level).level_shape

    def unit_size(self, level: int) -> int:
        return self.reader.level_info(level).unit_size

    def n_blocks(self, level: int) -> int:
        return self.reader.level_info(level).n_blocks

    def intersecting(
        self, level: int, block_range: Optional[BBox] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        info = self.reader.level_info(level)
        positions = self.reader.index.select(info.level, info.ndim, block_range)
        coords = self.reader.index.coords[positions, : info.ndim]
        return positions, coords

    def decode(self, level: int, handles: Sequence[int]) -> List[np.ndarray]:
        return self.reader.decode_entries(handles)

    def decode_into(
        self,
        level: int,
        handles: Sequence[int],
        outs: Sequence[np.ndarray],
        srcs: Optional[Sequence] = None,
    ) -> None:
        self.reader.decode_entries_into(handles, outs, srcs)

    @property
    def stats(self) -> Dict[str, int]:
        return self.reader.stats


class SingleBlockSource:
    """A whole reconstruction served as one block.

    Wraps either a :class:`repro.compressors.base.CompressedArray` blob
    (decoded lazily, once) or an already-decoded ndarray, presenting both as a
    single-level, single-block domain so facade reconstructions answer the
    same indexing surface as block containers.  The "unit size" is the longest
    axis: the paste arithmetic only ever reads the overlap, so a non-cubic
    whole-domain block is handled like any partially-overlapping unit block.
    """

    def __init__(self, shape: Sequence[int], compressed=None, decoded=None) -> None:
        if (compressed is None) == (decoded is None):
            raise ValueError("pass exactly one of compressed= or decoded=")
        self._shape = tuple(int(s) for s in shape)
        self._compressed = compressed
        self._decoded = None if decoded is None else np.asarray(decoded, dtype=np.float64)
        self.token = f"single:{id(self)}"
        self.stats: Dict[str, int] = {"blocks_decoded": 0, "payload_bytes_read": 0}

    @classmethod
    def from_compressed(cls, compressed) -> "SingleBlockSource":
        return cls(compressed.shape, compressed=compressed)

    @classmethod
    def from_ndarray(cls, data: np.ndarray) -> "SingleBlockSource":
        return cls(np.asarray(data).shape, decoded=data)

    @property
    def levels(self) -> Tuple[int, ...]:
        return (0,)

    def level_shape(self, level: int) -> Tuple[int, ...]:
        return self._shape

    def unit_size(self, level: int) -> int:
        return max(1, *self._shape) if self._shape else 1

    def n_blocks(self, level: int) -> int:
        return 1

    def intersecting(
        self, level: int, block_range: Optional[BBox] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        coords = np.zeros((1, len(self._shape)), dtype=np.int64)
        return np.zeros(1, dtype=np.int64), coords

    def decode(self, level: int, handles: Sequence[int]) -> List[np.ndarray]:
        if self._decoded is None:
            from repro.compressors import get_compressor

            self.stats["blocks_decoded"] += 1
            self.stats["payload_bytes_read"] += int(self._compressed.nbytes_compressed)
            self._decoded = np.asarray(
                get_compressor(self._compressed.codec).decompress(self._compressed),
                dtype=np.float64,
            )
        return [self._decoded]

    def decode_into(
        self,
        level: int,
        handles: Sequence[int],
        outs: Sequence[np.ndarray],
        srcs: Optional[Sequence] = None,
    ) -> None:
        block = self.decode(level, handles)[0]
        for i, out in enumerate(outs):
            src = None if srcs is None else srcs[i]
            np.copyto(out, block if src is None else block[src])


class _PasteWindows:
    """Lazy sequence of destination views ``out[dst_i]``.

    A many-small-blocks read plans thousands of paste windows; materialising
    every view (plus its slice tuple) up front would hold them all alive for
    the whole decode and show up as a near-array-sized tracemalloc peak.
    Each access builds its window on demand, so at most one chunk's worth
    exists at a time.
    """

    __slots__ = ("_out", "_bounds")

    def __init__(self, out: np.ndarray, bounds: np.ndarray) -> None:
        self._out = out
        self._bounds = bounds

    def __len__(self) -> int:
        return len(self._bounds)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return _PasteWindows(self._out, self._bounds[i])
        sl = bounds_to_slices(self._bounds[i])
        # A 0-d domain has an empty slice tuple, and out[()] would be a
        # scalar, not a writable view.
        return self._out[sl] if sl else self._out[...]


class _PasteSources:
    """Lazy sequence of source windows: ``None`` for fully-covered blocks
    (decode straight into the destination), a slice tuple for edge blocks."""

    __slots__ = ("_bounds", "_full")

    def __init__(self, bounds: np.ndarray, full: np.ndarray) -> None:
        self._bounds = bounds
        self._full = full

    def __len__(self) -> int:
        return len(self._bounds)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return _PasteSources(self._bounds[i], self._full[i])
        return None if self._full[i] else bounds_to_slices(self._bounds[i])


class CompressedArray:
    """Lazy, NumPy-style read view over one level of a block source.

    Attributes mirror an ndarray (``shape``, ``dtype``, ``ndim``, ``size``);
    ``levels`` lists the available resolution levels and :meth:`level` returns
    a sibling view of another level sharing the source and cache.  Indexing
    with the basic-indexing subset (ints, slices with steps, ``...``)
    materialises exactly the selection; ``numpy.asarray(view)`` (via
    ``__array__``) materialises the whole level.

    Cells of the level's domain not covered by any occupied block (they belong
    to other levels of an AMR hierarchy) read as ``fill_value``.
    """

    def __init__(
        self,
        source,
        level: Optional[int] = None,
        fill_value: float = 0.0,
        cache: Optional[BlockCache] = None,
    ) -> None:
        self._source = source
        self._level = int(source.levels[0] if level is None else level)
        if self._level not in source.levels:
            raise KeyError(
                f"no level {self._level}; available: {sorted(source.levels)}"
            )
        self.fill_value = float(fill_value)
        self.cache = cache

    # -- ndarray-style metadata -----------------------------------------------
    @property
    def source(self):
        return self._source

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._source.level_shape(self._level))

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized view")
        return self.shape[0]

    # -- levels ----------------------------------------------------------------
    @property
    def levels(self) -> Tuple[int, ...]:
        """Available resolution level indices, finest first."""
        return tuple(self._source.levels)

    @property
    def level_index(self) -> int:
        return self._level

    def level(self, k: int) -> "CompressedArray":
        """Sibling view of level ``k`` sharing the source and block cache."""
        return CompressedArray(
            self._source, level=k, fill_value=self.fill_value, cache=self.cache
        )

    @property
    def n_blocks(self) -> int:
        """Occupied blocks of the viewed level."""
        return int(self._source.n_blocks(self._level))

    # -- reading ----------------------------------------------------------------
    def __getitem__(self, index):
        compiled = compile_index(index, self.shape)
        bbox = normalize_bbox(compiled.bbox, self.shape)
        return self._read_bbox(bbox)[compiled.rel]

    def read_roi(self, bbox: Sequence[Sequence[int]]) -> np.ndarray:
        """Decode a clamped cell-space bbox (the classic ``read_roi`` contract).

        Unlike ``__getitem__`` — where negative numbers index from the end —
        a bbox is clamped to the domain, so ``((-5, 8), ...)`` reads ``[0, 8)``.
        """
        return self._read_bbox(normalize_bbox(bbox, self.shape))

    def _read_bbox(self, bbox: BBox) -> np.ndarray:
        start = time.perf_counter()
        source = self._source
        unit = source.unit_size(self._level)
        handles, coords = source.intersecting(
            self._level, bbox_to_block_range(bbox, unit)
        )
        out = np.full(
            tuple(hi - lo for lo, hi in bbox), self.fill_value, dtype=np.float64
        )
        n = len(handles)
        if not n:
            _READ_SECONDS.observe(time.perf_counter() - start)
            return out
        # Plan every paste in a handful of vectorised calls (no per-block
        # Python arithmetic), then decode straight into the output windows:
        # fully-covered blocks reconstruct in place, edge blocks paste only
        # their overlap.  Windows are built lazily, one chunk at a time.
        dst_bounds, src_bounds, full = paste_slices_batch(coords, unit, bbox)
        dsts = _PasteWindows(out, dst_bounds)
        srcs = _PasteSources(src_bounds, full)
        if self.cache is None:
            source.decode_into(self._level, handles, dsts, srcs)
            _BLOCKS_DECODED.inc(n)
            _READ_SECONDS.observe(time.perf_counter() - start)
            return out
        token, level = source.token, self._level
        coords_list = coords.tolist()
        missing = []
        with obs_span("paste", blocks=n) as sp:
            for i in range(n):
                block = self.cache.get((token, level, tuple(coords_list[i])))
                if block is None:
                    missing.append(i)
                else:
                    src = srcs[i]
                    np.copyto(dsts[i], block if src is None else block[src])
            if sp is not None:
                sp.set(hits=n - len(missing))
        if missing:
            # Cache misses decode once into their (read-only) cache slot —
            # the block must outlive this query — then paste the overlap.
            decoded = source.decode(self._level, [handles[i] for i in missing])
            with obs_span("paste", blocks=len(missing), decoded=True):
                for i, block in zip(missing, decoded):
                    self.cache.put((token, level, tuple(coords_list[i])), block)
                    src = srcs[i]
                    np.copyto(dsts[i], block if src is None else block[src])
        _BLOCKS_HIT.inc(n - len(missing))
        _BLOCKS_DECODED.inc(len(missing))
        _READ_SECONDS.observe(time.perf_counter() - start)
        return out

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self[...] if self.ndim else self._read_bbox(())
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    # -- introspection -----------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Decode + cache counters: source stats plus ``cache_*`` entries."""
        merged = dict(self._source.stats)
        if self.cache is not None:
            merged.update({f"cache_{k}": v for k, v in self.cache.stats.items()})
        return merged

    def __repr__(self) -> str:
        return (
            f"CompressedArray(shape={self.shape}, dtype={self.dtype}, "
            f"level={self._level} of {list(self.levels)}, "
            f"blocks={self.n_blocks}, fill_value={self.fill_value})"
        )


def open_array(
    path: Union[str, Path],
    level: int = 0,
    fill_value: float = 0.0,
    engine=None,
    cache: Optional[BlockCache] = None,
) -> CompressedArray:
    """Open a ``.rps2`` block container as a lazy view (two small reads).

    ``engine`` batches block decodes through a
    :class:`~repro.store.engine.CodecEngine`; ``cache`` defaults to a fresh
    bounded :class:`BlockCache` shared by all levels of the view.
    """
    from repro.store.format import ContainerReader

    reader = ContainerReader(path, engine=engine)
    return CompressedArray(
        ContainerSource(reader),
        level=level,
        fill_value=fill_value,
        cache=BlockCache() if cache is None else cache,
    )


def as_lazy_array(obj, fill_value: float = 0.0) -> CompressedArray:
    """Wrap any read-side object as a lazy view.

    Accepts an existing view (returned unchanged), a
    :class:`repro.compressors.base.CompressedArray` payload (decoded lazily on
    first access), or an array-like (served zero-copy as one block).
    """
    from repro.compressors.base import CompressedArray as CompressedPayload

    if isinstance(obj, CompressedArray):
        return obj
    if isinstance(obj, CompressedPayload):
        return CompressedArray(
            SingleBlockSource.from_compressed(obj), fill_value=fill_value
        )
    return CompressedArray(
        SingleBlockSource.from_ndarray(np.asarray(obj, dtype=np.float64)),
        fill_value=fill_value,
    )
