"""TAC baseline (Wang et al., HPDC'22).

TAC improves AMR compression by merging only unit blocks that are adjacent in
the original domain, preserving data smoothness at the cost of producing
several differently-shaped merged arrays that must be compressed separately
(per-segment encoding overhead, which hurts on small levels — exactly what the
paper observes on the RT dataset).  TAC has no in-situ variant, so the
benchmarks only use it offline.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mr_compressor import MultiResolutionCompressor

__all__ = ["tac_sz3_compressor"]


def tac_sz3_compressor(unit_size: int = 16, compressor_options: Optional[Dict] = None) -> MultiResolutionCompressor:
    """TAC's SZ3 pipeline: adjacency merge, per-segment compression."""
    return MultiResolutionCompressor(
        compressor="sz3",
        arrangement="adjacency",
        padding=False,
        adaptive_eb=False,
        unit_size=unit_size,
        compressor_options=compressor_options,
    )
