"""zMesh baseline (Luo et al., IPDPS'21).

zMesh re-orders AMR data across refinement levels along a z-order (Morton)
curve into a single 1-D array and compresses that array in 1-D, exploiting
the redundancy between levels that cover nearby regions of the domain.  Its
weakness — the motivation for TAC and for this paper — is that flattening to
1-D discards higher-dimensional spatial correlation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.compressors import SZ3Compressor
from repro.compressors.base import CompressedArray, Compressor
from repro.utils.morton import morton_encode3d, morton_encode2d

__all__ = ["Compressed1DHierarchy", "ZMeshCompressor"]


@dataclass
class Compressed1DHierarchy:
    """Compressed representation of a hierarchy flattened to one 1-D stream."""

    payload: CompressedArray
    level_counts: List[int]
    nbytes_original: int
    metadata: Dict = field(default_factory=dict)

    @property
    def nbytes_compressed(self) -> int:
        return self.payload.nbytes_compressed

    @property
    def compression_ratio(self) -> float:
        return self.nbytes_original / max(1, self.nbytes_compressed)


def _owned_cells_fine_morton(hierarchy: AMRHierarchy, level_index: int) -> np.ndarray:
    """Permutation ordering the owned cells of one level by fine-grid Morton code."""
    lvl = hierarchy.levels[level_index]
    coords = np.argwhere(lvl.mask)
    factor = hierarchy.refinement_ratio**lvl.level
    fine_coords = coords * factor
    if coords.shape[1] == 3:
        codes = morton_encode3d(fine_coords[:, 0], fine_coords[:, 1], fine_coords[:, 2])
    else:
        codes = morton_encode2d(fine_coords[:, 0], fine_coords[:, 1])
    return np.argsort(codes, kind="stable")


class ZMeshCompressor:
    """z-order cross-level linearisation + 1-D error-bounded compression."""

    def __init__(self, codec: Compressor | None = None) -> None:
        self.codec: Compressor = codec or SZ3Compressor()

    def compress_hierarchy(self, hierarchy: AMRHierarchy, error_bound: float) -> Compressed1DHierarchy:
        """Compress all owned cells of the hierarchy as one z-ordered 1-D array."""
        streams = []
        level_counts = []
        global_keys = []
        for idx, lvl in enumerate(hierarchy.levels):
            order = _owned_cells_fine_morton(hierarchy, idx)
            values = lvl.owned_values()[order]
            streams.append(values)
            level_counts.append(int(values.size))
            coords = np.argwhere(lvl.mask)[order]
            factor = hierarchy.refinement_ratio**lvl.level
            fine_coords = coords * factor
            if coords.shape[1] == 3:
                keys = morton_encode3d(fine_coords[:, 0], fine_coords[:, 1], fine_coords[:, 2])
            else:
                keys = morton_encode2d(fine_coords[:, 0], fine_coords[:, 1])
            global_keys.append(keys)
        values = np.concatenate(streams)
        keys = np.concatenate(global_keys)
        # zMesh interleaves cells from *all* levels along one global z-order.
        global_order = np.argsort(keys, kind="stable")
        flat = values[global_order]
        payload = self.codec.compress(flat, error_bound)
        return Compressed1DHierarchy(
            payload=payload,
            level_counts=level_counts,
            nbytes_original=int(values.size * 8),
            metadata={"scheme": "zmesh", "global_order_size": int(flat.size)},
        )

    def decompress_hierarchy(
        self, compressed: Compressed1DHierarchy, template: AMRHierarchy
    ) -> AMRHierarchy:
        """Invert :meth:`compress_hierarchy` using the template's masks."""
        flat = self.codec.decompress(compressed.payload)

        # Rebuild the global ordering exactly as during compression.
        per_level_orders = []
        global_keys = []
        for idx, lvl in enumerate(template.levels):
            order = _owned_cells_fine_morton(template, idx)
            per_level_orders.append(order)
            coords = np.argwhere(lvl.mask)[order]
            factor = template.refinement_ratio**lvl.level
            fine_coords = coords * factor
            if coords.shape[1] == 3:
                keys = morton_encode3d(fine_coords[:, 0], fine_coords[:, 1], fine_coords[:, 2])
            else:
                keys = morton_encode2d(fine_coords[:, 0], fine_coords[:, 1])
            global_keys.append(keys)
        keys = np.concatenate(global_keys)
        global_order = np.argsort(keys, kind="stable")

        restored = np.empty_like(flat)
        restored[global_order] = flat

        new_level_data = []
        cursor = 0
        for lvl, order, count in zip(template.levels, per_level_orders, compressed.level_counts):
            segment = restored[cursor : cursor + count]
            cursor += count
            owned = np.empty(count, dtype=np.float64)
            owned[order] = segment
            data = lvl.data.copy()
            data[lvl.mask] = owned
            new_level_data.append(data)
        return template.copy_with_data(new_level_data)
