"""Baseline multi-resolution compression schemes the paper compares against.

* :mod:`repro.baselines.amric` — AMRIC: in-situ stacking (cubic merge) of unit
  blocks, SZ3 or SZ2 with 4^3 blocks.
* :mod:`repro.baselines.tac` — TAC: adjacency-aware merging with per-segment
  compression (offline only).
* :mod:`repro.baselines.zmesh` — zMesh: z-order (Morton) linearisation of the
  owned cells across levels into a 1-D stream compressed in 1-D.
* :mod:`repro.baselines.hz_order` — the HZ-ordering storage scheme of Kumar et
  al.: level-by-level Morton traversal, 1-D compression.

AMRIC / TAC / the original SZ3 are exposed as configurations of
:class:`repro.core.mr_compressor.MultiResolutionCompressor` (see
:func:`repro.core.sz3mr.sz3mr_variants`); zMesh and HZ-order need their own
compress/decompress paths because they abandon 3-D locality entirely.
"""

from repro.baselines.amric import amric_sz2_compressor, amric_sz3_compressor
from repro.baselines.hz_order import HZOrderCompressor
from repro.baselines.tac import tac_sz3_compressor
from repro.baselines.zmesh import ZMeshCompressor

__all__ = [
    "amric_sz2_compressor",
    "amric_sz3_compressor",
    "tac_sz3_compressor",
    "ZMeshCompressor",
    "HZOrderCompressor",
]
