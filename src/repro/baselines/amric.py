"""AMRIC baseline (Wang et al., SC'23).

AMRIC is the in-situ AMR compression framework the paper benchmarks against.
Its two relevant design decisions are reproduced as configurations of the
shared multi-resolution engine:

* unit blocks are stacked into a near-cubic array before compression
  ("stack merge", Fig. 6-2b), which balances the dimensions but places
  non-neighbouring blocks next to each other;
* when SZ2 is used on multi-resolution data, the block size is reduced from
  6^3 to 4^3 (§III-B), which improves prediction but produces more blocking
  artefacts — the starting point for the paper's post-processing study.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mr_compressor import MultiResolutionCompressor

__all__ = ["amric_sz3_compressor", "amric_sz2_compressor"]


def amric_sz3_compressor(unit_size: int = 16, compressor_options: Optional[Dict] = None) -> MultiResolutionCompressor:
    """AMRIC's SZ3 pipeline: cubic stacking + unmodified SZ3."""
    return MultiResolutionCompressor(
        compressor="sz3",
        arrangement="stack",
        padding=False,
        adaptive_eb=False,
        unit_size=unit_size,
        compressor_options=compressor_options,
    )


def amric_sz2_compressor(unit_size: int = 16, block_size: int = 4) -> MultiResolutionCompressor:
    """AMRIC's SZ2 pipeline: cubic stacking + SZ2 with 4^3 blocks."""
    return MultiResolutionCompressor(
        compressor="sz2",
        arrangement="stack",
        padding=False,
        adaptive_eb=False,
        unit_size=unit_size,
        compressor_options={"block_size": int(block_size)},
    )
