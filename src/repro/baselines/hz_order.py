"""HZ-ordering baseline (Kumar et al., SC'14).

The adaptive-resolution storage scheme the paper's ROI extraction builds on
stores data level by level along a hierarchical Z (HZ) traversal, which is
great for progressive I/O but flattens the data to 1-D before compression —
"HZ-ordering prevents us from achieving optimal compression performance"
(§II-B).  The baseline here traverses the levels coarse to fine, each level's
owned cells in Morton order, and compresses the concatenated 1-D stream.
"""

from __future__ import annotations

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.baselines.zmesh import Compressed1DHierarchy
from repro.compressors import SZ3Compressor
from repro.compressors.base import Compressor
from repro.utils.morton import morton_encode2d, morton_encode3d

__all__ = ["HZOrderCompressor"]


def _level_morton_order(mask: np.ndarray) -> np.ndarray:
    coords = np.argwhere(mask)
    if coords.shape[1] == 3:
        codes = morton_encode3d(coords[:, 0], coords[:, 1], coords[:, 2])
    else:
        codes = morton_encode2d(coords[:, 0], coords[:, 1])
    return np.argsort(codes, kind="stable")


class HZOrderCompressor:
    """Level-by-level (coarse to fine) Morton traversal + 1-D compression."""

    def __init__(self, codec: Compressor | None = None) -> None:
        self.codec: Compressor = codec or SZ3Compressor()

    def compress_hierarchy(self, hierarchy: AMRHierarchy, error_bound: float) -> Compressed1DHierarchy:
        streams = []
        level_counts = []
        # HZ order starts from the coarsest data.
        for lvl in reversed(hierarchy.levels):
            order = _level_morton_order(lvl.mask)
            values = lvl.owned_values()[order]
            streams.append(values)
            level_counts.append(int(values.size))
        flat = np.concatenate(streams)
        payload = self.codec.compress(flat, error_bound)
        return Compressed1DHierarchy(
            payload=payload,
            level_counts=level_counts,
            nbytes_original=int(flat.size * 8),
            metadata={"scheme": "hz-order"},
        )

    def decompress_hierarchy(
        self, compressed: Compressed1DHierarchy, template: AMRHierarchy
    ) -> AMRHierarchy:
        flat = self.codec.decompress(compressed.payload)
        cursor = 0
        new_level_data = [None] * template.n_levels
        for lvl, count in zip(reversed(template.levels), compressed.level_counts):
            segment = flat[cursor : cursor + count]
            cursor += count
            order = _level_morton_order(lvl.mask)
            owned = np.empty(count, dtype=np.float64)
            owned[order] = segment
            data = lvl.data.copy()
            data[lvl.mask] = owned
            new_level_data[lvl.level] = data
        return template.copy_with_data(new_level_data)
