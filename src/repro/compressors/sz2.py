"""SZ2-like block-wise predictive compressor.

The array is cut into independent ``b^d`` blocks (6 for uniform data, 4 for
multi-resolution data, following AMRIC's finding quoted in §III-B of the
paper).  Each block is predicted by a linear plane (or its mean) fitted per
block; residuals are quantized under the absolute error bound and entropy
coded.  Because blocks are processed independently the compressor is fast and
trivially parallel, but it loses all spatial information across block
boundaries — exactly the behaviour the paper's Bezier post-processing targets.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.compressors.base import CompressedArray, Compressor, register_compressor
from repro.compressors.errors import CompressionError, DecompressionError
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.lossless import (
    decode_float_array,
    decode_int_array,
    encode_float_array,
    encode_int_array,
    lossless_compress,
    lossless_decompress,
    pack_streams,
    unpack_streams,
)
from repro.compressors.quantizer import DEFAULT_CODE_RADIUS, LinearQuantizer
from repro.compressors.regression import fit_mean_blocks, fit_plane_blocks, predict_plane_blocks
from repro.utils.blocks import assemble_blocks, block_view, pad_to_multiple

__all__ = ["SZ2Compressor", "DEFAULT_UNIFORM_BLOCK", "DEFAULT_MULTIRES_BLOCK"]

#: Default block edge for uniform-resolution data (SZ2 uses 6^3).
DEFAULT_UNIFORM_BLOCK = 6
#: Block edge AMRIC found optimal for multi-resolution data (§III-B).
DEFAULT_MULTIRES_BLOCK = 4

_PREDICTORS = ("plane", "mean")


@register_compressor("sz2")
class SZ2Compressor(Compressor):
    """Block-wise predictive error-bounded lossy compressor."""

    def __init__(
        self,
        block_size: int = DEFAULT_UNIFORM_BLOCK,
        predictor: str = "plane",
        entropy: str = "zlib",
        lossless_level: int = 6,
        quantizer_radius: int = DEFAULT_CODE_RADIUS,
        coefficient_dtype: str = "<f4",
    ) -> None:
        super().__init__()
        if int(block_size) < 2:
            raise ValueError("block_size must be at least 2")
        if predictor not in _PREDICTORS:
            raise ValueError(f"predictor must be one of {_PREDICTORS}")
        if entropy not in ("zlib", "huffman"):
            raise ValueError("entropy must be 'zlib' or 'huffman'")
        self.block_size = int(block_size)
        self.predictor = predictor
        self.entropy = entropy
        self.lossless_level = int(lossless_level)
        self.quantizer = LinearQuantizer(radius=quantizer_radius)
        self.coefficient_dtype = coefficient_dtype

    # -- helpers ------------------------------------------------------------
    def _block_values(self, data: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...], Tuple[int, ...]]:
        padded = pad_to_multiple(data, self.block_size, mode="edge")
        bv = block_view(padded, self.block_size)
        ndim = data.ndim
        nblocks_shape = bv.shape[:ndim]
        block_shape = bv.shape[ndim:]
        values = bv.reshape(int(np.prod(nblocks_shape)), int(np.prod(block_shape)))
        return np.ascontiguousarray(values), nblocks_shape, padded.shape

    def _predictions(self, coefficients: np.ndarray, block_shape: Tuple[int, ...]) -> np.ndarray:
        if self.predictor == "mean" or coefficients.shape[1] == 1:
            npoints = int(np.prod(block_shape))
            return np.repeat(coefficients, npoints, axis=1)
        return predict_plane_blocks(coefficients, block_shape)

    # -- compression --------------------------------------------------------
    def _compress_impl(self, data: np.ndarray, error_bound: float) -> Tuple[bytes, Dict]:
        values, nblocks_shape, padded_shape = self._block_values(data)
        block_shape = (self.block_size,) * data.ndim

        if self.predictor == "mean":
            coefficients = fit_mean_blocks(values)
        else:
            coefficients = fit_plane_blocks(values, block_shape)
        # The decompressor only sees the narrowed coefficients, so predictions
        # must be computed from the same narrowed values on both sides.
        coefficients = coefficients.astype(np.dtype(self.coefficient_dtype)).astype(np.float64)

        predictions = self._predictions(coefficients, block_shape)
        qr = self.quantizer.quantize(values.ravel(), predictions.ravel(), error_bound)

        if self.entropy == "huffman":
            codes_blob = b"H" + lossless_compress(
                huffman_encode(qr.codes), backend="zlib", level=self.lossless_level
            )
        else:
            codes_blob = b"Z" + encode_int_array(qr.codes, level=self.lossless_level)

        payload = pack_streams(
            {
                "codes": codes_blob,
                "exact": encode_float_array(qr.exact_values, level=self.lossless_level),
                "coeff": encode_float_array(
                    coefficients.ravel(), level=self.lossless_level, dtype=self.coefficient_dtype
                ),
            }
        )
        metadata = {
            "block_size": self.block_size,
            "predictor": self.predictor,
            "entropy": self.entropy,
            "padded_shape": list(padded_shape),
            "nblocks_shape": list(nblocks_shape),
            "n_coefficients": int(coefficients.shape[1]),
            "n_unpredictable": int(qr.exact_values.size),
            "quantizer_radius": self.quantizer.radius,
        }
        return payload, metadata

    # -- decompression ------------------------------------------------------
    def _decompress_impl(self, compressed: CompressedArray) -> np.ndarray:
        meta = compressed.metadata
        streams = unpack_streams(compressed.payload)
        tag, body = streams["codes"][:1], streams["codes"][1:]
        if tag == b"H":
            codes = huffman_decode(lossless_decompress(body))
        elif tag == b"Z":
            codes = decode_int_array(body)
        else:
            raise DecompressionError(f"unknown code-stream tag {tag!r}")
        exact = decode_float_array(streams["exact"])
        coefficients = decode_float_array(streams["coeff"])

        block_size = int(meta["block_size"])
        ndim = len(compressed.shape)
        block_shape = (block_size,) * ndim
        nblocks_shape = tuple(int(x) for x in meta["nblocks_shape"])
        padded_shape = tuple(int(x) for x in meta["padded_shape"])
        n_coeff = int(meta["n_coefficients"])
        nblocks = int(np.prod(nblocks_shape))
        npoints = int(np.prod(block_shape))

        coefficients = coefficients.reshape(nblocks, n_coeff)
        predictions = self._predictions(coefficients, block_shape)
        if predictions.size != codes.size:
            raise DecompressionError("quantization-code stream length mismatch")

        radius = int(meta.get("quantizer_radius", DEFAULT_CODE_RADIUS))
        quantizer = LinearQuantizer(radius=radius)
        values, _ = quantizer.dequantize(codes, predictions.ravel(), compressed.error_bound, exact)

        blocks = values.reshape((nblocks, npoints)).reshape(nblocks_shape + block_shape)
        dense = assemble_blocks(blocks, out_shape=compressed.shape)
        return dense

    # -- introspection -------------------------------------------------------
    def block_boundaries(self, shape: Tuple[int, ...]):
        """Indices of the first element of every block along each axis.

        The Bezier post-processing stage needs to know where block boundaries
        lie; exposing them here keeps the compressor the single source of
        truth for its own blocking.
        """
        return tuple(np.arange(0, s, self.block_size) for s in shape)
