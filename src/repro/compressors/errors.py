"""Exception hierarchy for the compression subsystem."""

from __future__ import annotations

__all__ = [
    "CompressorError",
    "CompressionError",
    "DecompressionError",
    "ErrorBoundViolation",
    "UnknownCompressorError",
]


class CompressorError(Exception):
    """Base class for all compressor-related errors."""


class CompressionError(CompressorError):
    """Raised when compression fails (bad input, invalid parameters)."""


class DecompressionError(CompressorError):
    """Raised when a compressed payload cannot be decoded (corruption, version skew)."""


class ErrorBoundViolation(CompressorError):
    """Raised by verification helpers when the reconstruction violates the error bound."""

    def __init__(self, max_error: float, error_bound: float):
        self.max_error = float(max_error)
        self.error_bound = float(error_bound)
        super().__init__(
            f"max reconstruction error {max_error:.6g} exceeds the error bound {error_bound:.6g}"
        )


class UnknownCompressorError(CompressorError, KeyError):
    """Raised when looking up a compressor name that was never registered."""
