"""Canonical Huffman coding for integer symbol streams.

The SZ family entropy-codes quantization indices with a Huffman coder before
handing the result to a general-purpose lossless backend.  This module
implements a canonical Huffman codec over arbitrary integer alphabets:

* building the code uses a standard heap-based algorithm over the symbol
  histogram;
* encoding is vectorised by mapping symbols to (code, length) pairs with NumPy
  fancy indexing and packing bits with :func:`numpy.packbits`;
* decoding walks the canonical code table with a small per-length lookup,
  processing the bitstream in NumPy chunks.

For very large streams the zlib backend alone is usually faster; the SZ2/SZ3
compressors therefore expose Huffman as an optional stage
(``entropy="huffman"``) which is exercised by the unit tests and available for
experiments on coding efficiency.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.compressors.errors import DecompressionError

__all__ = ["HuffmanCodec", "huffman_encode", "huffman_decode"]


@dataclass
class _CanonicalCode:
    symbols: np.ndarray  # symbols sorted by (length, symbol)
    lengths: np.ndarray  # code length per sorted symbol
    codes: np.ndarray  # canonical code value per sorted symbol


def _code_lengths(freqs: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length per symbol via the standard two-queue/heap algorithm."""
    if not freqs:
        return {}
    if len(freqs) == 1:
        return {next(iter(freqs)): 1}
    heap: List[Tuple[int, int, Tuple]] = []
    uid = 0
    for sym, f in freqs.items():
        heap.append((f, uid, ("leaf", sym)))
        uid += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, uid, ("node", n1, n2)))
        uid += 1
    _, _, root = heap[0]
    lengths: Dict[int, int] = {}
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if node[0] == "leaf":
            lengths[node[1]] = max(depth, 1)
        else:
            stack.append((node[1], depth + 1))
            stack.append((node[2], depth + 1))
    return lengths


def _canonicalize(lengths: Dict[int, int]) -> _CanonicalCode:
    items = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    symbols = np.array([s for s, _ in items], dtype=np.int64)
    lens = np.array([l for _, l in items], dtype=np.int64)
    codes = np.zeros(len(items), dtype=np.uint64)
    code = 0
    prev_len = lens[0] if len(items) else 0
    for idx in range(len(items)):
        code <<= int(lens[idx] - prev_len)
        codes[idx] = code
        prev_len = lens[idx]
        code += 1
    return _CanonicalCode(symbols=symbols, lengths=lens, codes=codes)


class HuffmanCodec:
    """Canonical Huffman codec over 64-bit integer symbols."""

    def encode(self, symbols: np.ndarray) -> bytes:
        symbols = np.asarray(symbols, dtype=np.int64).ravel()
        n = symbols.size
        if n == 0:
            return struct.pack("<QI", 0, 0)
        uniq, inverse, counts = np.unique(symbols, return_inverse=True, return_counts=True)
        lengths = _code_lengths({int(s): int(c) for s, c in zip(uniq, counts)})
        canon = _canonicalize(lengths)

        # Map each input symbol to its canonical (code, length).
        order = {int(s): i for i, s in enumerate(canon.symbols)}
        remap = np.array([order[int(s)] for s in uniq], dtype=np.int64)
        sym_idx = remap[inverse]
        sym_codes = canon.codes[sym_idx]
        sym_lens = canon.lengths[sym_idx]

        # Expand every code into its bits (MSB first) and pack.
        total_bits = int(sym_lens.sum())
        bit_array = np.zeros(total_bits, dtype=np.uint8)
        ends = np.cumsum(sym_lens)
        starts = ends - sym_lens
        maxlen = int(sym_lens.max())
        for bitpos in range(maxlen):
            # bit `bitpos` counted from the MSB of each code
            active = sym_lens > bitpos
            shifts = (sym_lens[active] - 1 - bitpos).astype(np.uint64)
            bits = ((sym_codes[active] >> shifts) & np.uint64(1)).astype(np.uint8)
            bit_array[starts[active] + bitpos] = bits
        packed = np.packbits(bit_array)

        # Header: n symbols, table (symbol, length) pairs.
        header = [struct.pack("<QI", n, len(canon.symbols))]
        header.append(canon.symbols.astype("<i8").tobytes())
        header.append(canon.lengths.astype("<u1").tobytes())
        header.append(struct.pack("<Q", total_bits))
        return b"".join(header) + packed.tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        n, table_size = struct.unpack_from("<QI", blob, 0)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        offset = struct.calcsize("<QI")
        symbols = np.frombuffer(blob, dtype="<i8", count=table_size, offset=offset).astype(np.int64)
        offset += table_size * 8
        lengths = np.frombuffer(blob, dtype="<u1", count=table_size, offset=offset).astype(np.int64)
        offset += table_size
        (total_bits,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
        bits = np.unpackbits(packed)[:total_bits]

        canon = _canonicalize({int(s): int(l) for s, l in zip(symbols, lengths)})
        # first_code[l] / first_index[l]: canonical decoding tables per length
        max_len = int(canon.lengths.max())
        first_code = np.full(max_len + 2, -1, dtype=np.int64)
        first_index = np.zeros(max_len + 2, dtype=np.int64)
        counts_per_len = np.zeros(max_len + 2, dtype=np.int64)
        for i, l in enumerate(canon.lengths):
            if first_code[l] < 0:
                first_code[l] = int(canon.codes[i])
                first_index[l] = i
            counts_per_len[l] += 1

        out = np.empty(n, dtype=np.int64)
        code = 0
        length = 0
        pos = 0
        bits_list = bits.tolist()  # python ints are faster for the tight loop
        for oi in range(n):
            code = 0
            length = 0
            while True:
                if pos >= total_bits:
                    raise DecompressionError("Huffman bitstream exhausted prematurely")
                code = (code << 1) | bits_list[pos]
                pos += 1
                length += 1
                fc = first_code[length]
                if fc >= 0 and fc <= code < fc + counts_per_len[length]:
                    out[oi] = canon.symbols[first_index[length] + (code - fc)]
                    break
                if length > max_len:
                    raise DecompressionError("invalid Huffman code in bitstream")
        return out


def huffman_encode(symbols: np.ndarray) -> bytes:
    """Module-level convenience wrapper around :class:`HuffmanCodec.encode`."""
    return HuffmanCodec().encode(symbols)


def huffman_decode(blob: bytes) -> np.ndarray:
    """Module-level convenience wrapper around :class:`HuffmanCodec.decode`."""
    return HuffmanCodec().decode(blob)
