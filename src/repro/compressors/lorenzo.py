"""Lorenzo predictors.

SZ2's default predictor is the (first-order) Lorenzo predictor, which predicts
each point from its previously visited face/edge/corner neighbours.  Two
variants are provided:

* :func:`lorenzo_predict_open_loop` — predictions computed from the *original*
  neighbours.  This is a fast, fully vectorised approximation used for
  analysing predictability (residual entropy) of a field.  It cannot be used
  for strict error-bounded coding on its own because the decompressor only has
  reconstructed neighbours.
* :func:`lorenzo_roundtrip_closed_loop` — the faithful sequential scheme in
  which predictions use reconstructed neighbours and residuals are quantized
  on the fly.  It is exact w.r.t. the error bound but runs as a Python loop,
  so the SZ2 compressor only enables it for small blocks / explicit opt-in.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "lorenzo_predict_open_loop",
    "lorenzo_roundtrip_closed_loop",
]


def lorenzo_predict_open_loop(data: np.ndarray) -> np.ndarray:
    """First-order Lorenzo prediction of every point from original neighbours.

    For 1-D this is ``d[i-1]``; for 2-D ``d[i-1,j] + d[i,j-1] - d[i-1,j-1]``;
    for 3-D the inclusion–exclusion over the seven previously-visited corner
    neighbours.  Out-of-domain neighbours are treated as zero, matching SZ.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim not in (1, 2, 3):
        raise ValueError("Lorenzo predictor supports 1-3 dimensions")
    padded = np.pad(data, [(1, 0)] * data.ndim, mode="constant")
    if data.ndim == 1:
        pred = padded[:-1]
    elif data.ndim == 2:
        pred = padded[:-1, 1:] + padded[1:, :-1] - padded[:-1, :-1]
    else:
        pred = (
            padded[:-1, 1:, 1:]
            + padded[1:, :-1, 1:]
            + padded[1:, 1:, :-1]
            - padded[:-1, :-1, 1:]
            - padded[:-1, 1:, :-1]
            - padded[1:, :-1, :-1]
            + padded[:-1, :-1, :-1]
        )
    return pred


def lorenzo_roundtrip_closed_loop(
    data: np.ndarray, error_bound: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-loop Lorenzo quantization of a (small) array.

    Returns ``(quantization_codes, reconstruction)``.  The reconstruction
    satisfies the absolute error bound exactly.  Complexity is O(N) Python
    iterations, so use only for small blocks or verification.
    """
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    data = np.asarray(data, dtype=np.float64)
    if data.ndim not in (1, 2, 3):
        raise ValueError("Lorenzo predictor supports 1-3 dimensions")
    step = 2.0 * float(error_bound)
    # Work on a zero-padded reconstruction so neighbour lookups never branch.
    recon = np.zeros(tuple(s + 1 for s in data.shape), dtype=np.float64)
    codes = np.zeros(data.shape, dtype=np.int64)

    it = np.ndindex(*data.shape)
    if data.ndim == 1:
        for (i,) in it:
            pred = recon[i]
            q = round((data[i] - pred) / step)
            codes[i] = q
            recon[i + 1] = pred + q * step
        out = recon[1:]
    elif data.ndim == 2:
        for i, j in it:
            pred = recon[i, j + 1] + recon[i + 1, j] - recon[i, j]
            q = round((data[i, j] - pred) / step)
            codes[i, j] = q
            recon[i + 1, j + 1] = pred + q * step
        out = recon[1:, 1:]
    else:
        for i, j, k in it:
            pred = (
                recon[i, j + 1, k + 1]
                + recon[i + 1, j, k + 1]
                + recon[i + 1, j + 1, k]
                - recon[i, j, k + 1]
                - recon[i, j + 1, k]
                - recon[i + 1, j, k]
                + recon[i, j, k]
            )
            q = round((data[i, j, k] - pred) / step)
            codes[i, j, k] = q
            recon[i + 1, j + 1, k + 1] = pred + q * step
        out = recon[1:, 1:, 1:]
    return codes, np.ascontiguousarray(out)
