"""SZ3-like global interpolation compressor.

The compressor predicts the whole array with the multi-level separable
interpolation of :mod:`repro.compressors.interpolation`, quantizes prediction
residuals with a strict absolute error bound, and entropy-codes the resulting
integer stream.  Two hooks are exposed because the paper's SZ3MR needs them:

* ``level_error_bounds`` — a callable mapping ``(level, max_level, base_eb)``
  to the error bound used at that interpolation level.  The default is the
  constant base bound (original SZ3); SZ3MR installs the adaptive schedule of
  §III-A (Improvement 2).
* ``interpolation`` — ``"linear"`` or ``"cubic"`` prediction kernel.

The quantization-code order is fully determined by the array shape, so the
payload only carries three streams (codes, unpredictable values, anchors).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.compressors.base import CompressedArray, Compressor, register_compressor
from repro.compressors.errors import CompressionError, DecompressionError
from repro.compressors.huffman import huffman_decode, huffman_encode
from repro.compressors.interpolation import build_plan, predict_step
from repro.compressors.lossless import (
    decode_float_array,
    decode_int_array,
    encode_float_array,
    encode_int_array,
    lossless_compress,
    lossless_decompress,
    pack_streams,
    unpack_streams,
)
from repro.compressors.quantizer import DEFAULT_CODE_RADIUS, LinearQuantizer

__all__ = ["SZ3Compressor", "constant_level_error_bounds"]

LevelErrorBoundFn = Callable[[int, int, float], float]


def constant_level_error_bounds(level: int, max_level: int, base_eb: float) -> float:
    """Original SZ3 behaviour: the same error bound at every interpolation level."""
    return base_eb


@register_compressor("sz3")
class SZ3Compressor(Compressor):
    """Global interpolation-based error-bounded lossy compressor."""

    def __init__(
        self,
        interpolation: str = "cubic",
        level_error_bounds: Optional[LevelErrorBoundFn] = None,
        entropy: str = "zlib",
        lossless_level: int = 6,
        quantizer_radius: int = DEFAULT_CODE_RADIUS,
    ) -> None:
        super().__init__()
        if interpolation not in ("linear", "cubic"):
            raise ValueError("interpolation must be 'linear' or 'cubic'")
        if entropy not in ("zlib", "huffman"):
            raise ValueError("entropy must be 'zlib' or 'huffman'")
        self.interpolation = interpolation
        self.level_error_bounds = level_error_bounds or constant_level_error_bounds
        self.entropy = entropy
        self.lossless_level = int(lossless_level)
        self.quantizer = LinearQuantizer(radius=quantizer_radius)

    # -- compression --------------------------------------------------------
    def _compress_impl(self, data: np.ndarray, error_bound: float) -> Tuple[bytes, Dict]:
        plan = build_plan(data.shape)
        # Per-level error bounds are resolved once and stored in the metadata
        # so the decompressor replays exactly the same schedule.
        level_ebs = {
            level: float(self.level_error_bounds(level, plan.max_level, error_bound))
            for level in range(1, plan.max_level + 1)
        }
        for level, eb in level_ebs.items():
            if eb <= 0:
                raise CompressionError(f"level {level} error bound must be positive, got {eb}")

        recon = np.zeros_like(data)
        anchors = data[plan.anchor].astype(np.float64).ravel()
        recon[plan.anchor] = data[plan.anchor]

        code_segments = []
        exact_segments = []
        for step in plan.steps:
            pred = predict_step(recon, step, mode=self.interpolation)
            target_values = data[step.target]
            eb_level = level_ebs[step.level]
            qr = self.quantizer.quantize(target_values, pred, eb_level)
            recon[step.target] = qr.reconstructed.reshape(target_values.shape)
            code_segments.append(qr.codes)
            if qr.exact_values.size:
                exact_segments.append(qr.exact_values)

        codes = (
            np.concatenate(code_segments) if code_segments else np.zeros(0, dtype=np.int64)
        )
        exact = (
            np.concatenate(exact_segments) if exact_segments else np.zeros(0, dtype=np.float64)
        )

        if self.entropy == "huffman":
            codes_blob = b"H" + lossless_compress(
                huffman_encode(codes), backend="zlib", level=self.lossless_level
            )
        else:
            codes_blob = b"Z" + encode_int_array(codes, level=self.lossless_level)

        payload = pack_streams(
            {
                "codes": codes_blob,
                "exact": encode_float_array(exact, level=self.lossless_level),
                "anchors": encode_float_array(anchors, level=self.lossless_level),
            }
        )
        metadata = {
            "interpolation": self.interpolation,
            "entropy": self.entropy,
            "max_level": plan.max_level,
            "level_error_bounds": {str(k): v for k, v in level_ebs.items()},
            "n_unpredictable": int(exact.size),
            "quantizer_radius": self.quantizer.radius,
        }
        return payload, metadata

    # -- decompression ------------------------------------------------------
    def _decompress_impl(self, compressed: CompressedArray) -> np.ndarray:
        return self._reconstruct(compressed, None)

    def _decompress_into_impl(
        self, compressed: CompressedArray, out: np.ndarray
    ) -> Optional[np.ndarray]:
        # The interpolation traversal is a sequence of strided assignments, so
        # it reconstructs directly inside any float64 destination view — e.g.
        # a window of a query's output array — with no block temporary.
        if out.dtype != np.float64:
            return self._reconstruct(compressed, None)
        self._reconstruct(compressed, out)
        return None

    def _reconstruct(
        self, compressed: CompressedArray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        meta = compressed.metadata
        streams = unpack_streams(compressed.payload)
        codes_blob = streams["codes"]
        tag, body = codes_blob[:1], codes_blob[1:]
        if tag == b"H":
            codes = huffman_decode(lossless_decompress(body))
        elif tag == b"Z":
            codes = decode_int_array(body)
        else:
            raise DecompressionError(f"unknown code-stream tag {tag!r}")
        exact = decode_float_array(streams["exact"])
        anchors = decode_float_array(streams["anchors"])

        plan = build_plan(tuple(compressed.shape))
        level_ebs = {int(k): float(v) for k, v in meta["level_error_bounds"].items()}
        interpolation = meta.get("interpolation", "cubic")
        radius = int(meta.get("quantizer_radius", DEFAULT_CODE_RADIUS))
        quantizer = LinearQuantizer(radius=radius)

        if out is None:
            recon = np.zeros(plan.shape, dtype=np.float64)
        else:
            # In-place path: the traversal writes every cell, but zero-fill
            # first so correctness never rests on that coverage argument.
            recon = out
            recon[...] = 0.0
        anchor_view = recon[plan.anchor]
        if anchors.size != anchor_view.size:
            raise DecompressionError("anchor stream size mismatch")
        recon[plan.anchor] = anchors.reshape(anchor_view.shape)

        code_cursor = 0
        exact_cursor = 0
        for step in plan.steps:
            pred = predict_step(recon, step, mode=interpolation)
            n = pred.size
            seg = codes[code_cursor : code_cursor + n]
            if seg.size != n:
                raise DecompressionError("quantization-code stream exhausted prematurely")
            code_cursor += n
            eb_level = level_ebs.get(step.level)
            if eb_level is None:
                raise DecompressionError(f"missing error bound for level {step.level}")
            values, n_exact = quantizer.dequantize(
                seg, pred, eb_level, exact[exact_cursor:]
            )
            exact_cursor += n_exact
            recon[step.target] = values.reshape(pred.shape)

        if code_cursor != codes.size:
            raise DecompressionError(
                f"code stream has {codes.size - code_cursor} unused entries"
            )
        return recon
