"""Lossless byte-stream backends and a tiny multi-stream container format.

Error-bounded lossy compressors reduce floating-point data to a handful of
integer/float streams (quantization indices, unpredictable values, predictor
coefficients).  Those streams are serialised here with a named-stream
container and compressed with a general-purpose lossless codec (zlib by
default, matching the role zstd plays in the reference SZ implementations).
"""

from __future__ import annotations

import bz2
import lzma
import struct
import zlib
from typing import Dict

import numpy as np

from repro.compressors.errors import DecompressionError

__all__ = [
    "lossless_compress",
    "lossless_decompress",
    "pack_streams",
    "unpack_streams",
    "encode_int_array",
    "decode_int_array",
    "encode_float_array",
    "decode_float_array",
    "LOSSLESS_BACKENDS",
]

_MAGIC = b"RPRS"  # "RePRoduction Streams"
_VERSION = 1

LOSSLESS_BACKENDS = ("zlib", "lzma", "bz2", "store")


def lossless_compress(raw: bytes, backend: str = "zlib", level: int = 6) -> bytes:
    """Compress a byte string with the chosen backend.

    A one-byte backend tag is prepended so decompression is self-describing.
    """
    if backend == "zlib":
        body = zlib.compress(raw, level)
        tag = b"z"
    elif backend == "lzma":
        body = lzma.compress(raw, preset=min(level, 9))
        tag = b"x"
    elif backend == "bz2":
        body = bz2.compress(raw, compresslevel=max(1, min(level, 9)))
        tag = b"b"
    elif backend == "store":
        body = raw
        tag = b"s"
    else:
        raise ValueError(f"unknown lossless backend {backend!r}; choose from {LOSSLESS_BACKENDS}")
    return tag + body


def lossless_decompress(blob: bytes) -> bytes:
    """Invert :func:`lossless_compress`."""
    if not blob:
        raise DecompressionError("empty lossless payload")
    tag, body = blob[:1], blob[1:]
    try:
        if tag == b"z":
            return zlib.decompress(body)
        if tag == b"x":
            return lzma.decompress(body)
        if tag == b"b":
            return bz2.decompress(body)
        if tag == b"s":
            return body
    except Exception as exc:  # pragma: no cover - corruption paths
        raise DecompressionError(f"lossless payload is corrupt: {exc}") from exc
    raise DecompressionError(f"unknown lossless backend tag {tag!r}")


def pack_streams(streams: Dict[str, bytes]) -> bytes:
    """Serialise named byte streams into a single self-describing blob."""
    parts = [_MAGIC, struct.pack("<BI", _VERSION, len(streams))]
    for name, data in streams.items():
        name_b = name.encode("utf-8")
        if len(name_b) > 255:
            raise ValueError(f"stream name too long: {name!r}")
        parts.append(struct.pack("<B", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<Q", len(data)))
        parts.append(data)
    return b"".join(parts)


def unpack_streams(blob: bytes) -> Dict[str, bytes]:
    """Invert :func:`pack_streams`.

    Accepts any bytes-like object; handed a ``memoryview`` (the store's
    zero-copy payload path) the returned streams are themselves zero-copy
    views into it — every lossless backend and array decoder downstream
    consumes buffers, so no payload byte is ever duplicated on the way in.
    """
    if bytes(blob[:4]) != _MAGIC:
        raise DecompressionError("bad container magic; payload is not a repro stream bundle")
    version, count = struct.unpack_from("<BI", blob, 4)
    if version != _VERSION:
        raise DecompressionError(f"unsupported container version {version}")
    offset = 4 + 5
    streams: Dict[str, bytes] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        name = bytes(blob[offset : offset + name_len]).decode("utf-8")
        offset += name_len
        (size,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        streams[name] = blob[offset : offset + size]
        offset += size
    if offset != len(blob):
        raise DecompressionError("trailing bytes after the last stream")
    return streams


def _smallest_int_dtype(arr: np.ndarray) -> np.dtype:
    """Smallest signed integer dtype able to hold every value of ``arr``."""
    if arr.size == 0:
        return np.dtype(np.int8)
    lo = int(arr.min())
    hi = int(arr.max())
    for dtype in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dtype)
    raise ValueError("integer values out of int64 range")


def encode_int_array(arr: np.ndarray, backend: str = "zlib", level: int = 6) -> bytes:
    """Encode an integer array: narrowest dtype + lossless backend.

    The dtype and length are stored in a small header so decoding does not
    need out-of-band information.
    """
    arr = np.ascontiguousarray(arr)
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise ValueError("encode_int_array expects integer data")
    dtype = _smallest_int_dtype(arr.astype(np.int64, copy=False))
    narrowed = arr.astype(dtype, copy=False)
    header = struct.pack("<cQ", dtype.char.encode("ascii"), narrowed.size)
    return header + lossless_compress(narrowed.tobytes(), backend=backend, level=level)


def decode_int_array(blob: bytes) -> np.ndarray:
    """Invert :func:`encode_int_array` (always returns int64)."""
    dtype_char, size = struct.unpack_from("<cQ", blob, 0)
    body = lossless_decompress(blob[struct.calcsize("<cQ"):])
    arr = np.frombuffer(body, dtype=np.dtype(dtype_char.decode("ascii")))
    if arr.size != size:
        raise DecompressionError(f"integer stream length mismatch: {arr.size} != {size}")
    return arr.astype(np.int64)


def encode_float_array(arr: np.ndarray, backend: str = "zlib", level: int = 6,
                        dtype: str = "<f8") -> bytes:
    """Encode a float array exactly (used for unpredictable values and coefficients)."""
    arr = np.ascontiguousarray(np.asarray(arr, dtype=np.dtype(dtype)))
    header = struct.pack("<2sQ", dtype[-2:].encode("ascii"), arr.size)
    return header + lossless_compress(arr.tobytes(), backend=backend, level=level)


def decode_float_array(blob: bytes) -> np.ndarray:
    """Invert :func:`encode_float_array` (always returns float64)."""
    dtype_tag, size = struct.unpack_from("<2sQ", blob, 0)
    dtype = np.dtype("<" + dtype_tag.decode("ascii"))
    body = lossless_decompress(blob[struct.calcsize("<2sQ"):])
    arr = np.frombuffer(body, dtype=dtype)
    if arr.size != size:
        raise DecompressionError(f"float stream length mismatch: {arr.size} != {size}")
    return arr.astype(np.float64)
