"""Compressor interface shared by SZ2-, SZ3- and ZFP-like codecs.

The interface intentionally mirrors how the paper's workflow drives the real
compressors: ``compress(data, error_bound)`` with an absolute (or
value-range-relative) point-wise error bound, returning an opaque buffer whose
size defines the compression ratio, plus ``decompress`` back to the original
shape.  A convenience :meth:`Compressor.roundtrip` bundles both directions
with quality statistics, which is what every benchmark uses.
"""

from __future__ import annotations

import json
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Type, Union

import numpy as np

from repro.api.error_bound import ErrorBound
from repro.compressors.errors import (
    CompressionError,
    DecompressionError,
    ErrorBoundViolation,
    UnknownCompressorError,
)

__all__ = [
    "CompressedArray",
    "RoundTripResult",
    "Compressor",
    "register_compressor",
    "get_compressor",
    "available_compressors",
]

_HEADER_MAGIC = b"RPCA"  # "RePro Compressed Array"


@dataclass
class CompressedArray:
    """A compressed array plus the metadata needed to decode and account for it.

    Attributes
    ----------
    codec:
        Name of the compressor that produced the payload.
    payload:
        Opaque compressed bytes (codec-specific container).
    shape, dtype:
        Original array shape and dtype string, used to rebuild the output.
    error_bound:
        Absolute error bound the payload was produced with.
    nbytes_original:
        Size of the uncompressed array in bytes.
    metadata:
        Codec-specific extra information (e.g. per-level error bounds,
        padding configuration) that is useful for analysis; it is serialised
        with the payload.
    """

    codec: str
    payload: bytes
    shape: tuple
    dtype: str
    error_bound: float
    nbytes_original: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes_compressed(self) -> int:
        """Size of the compressed payload in bytes (payload + small header)."""
        return len(self.payload) + self._header_size()

    @property
    def compression_ratio(self) -> float:
        """Original bytes divided by compressed bytes."""
        return self.nbytes_original / max(1, self.nbytes_compressed)

    def _header_size(self) -> int:
        return len(self._header_bytes())

    def _header_bytes(self) -> bytes:
        meta = {
            "codec": self.codec,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "error_bound": self.error_bound,
            "nbytes_original": self.nbytes_original,
            "metadata": self.metadata,
        }
        body = json.dumps(meta, sort_keys=True).encode("utf-8")
        return _HEADER_MAGIC + struct.pack("<I", len(body)) + body

    def to_bytes(self) -> bytes:
        """Serialise header + payload to a single byte string (for file I/O)."""
        return b"".join((self._header_bytes(), self.payload))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompressedArray":
        """Invert :meth:`to_bytes`.

        Accepts any bytes-like object.  Handed a ``memoryview`` — how the
        store's coalesced payload fetches arrive — the payload stays a
        zero-copy view into the caller's buffer; only the small JSON header
        is materialised.
        """
        if bytes(blob[:4]) != _HEADER_MAGIC:
            raise DecompressionError("not a CompressedArray blob (bad magic)")
        (length,) = struct.unpack_from("<I", blob, 4)
        meta = json.loads(bytes(blob[8 : 8 + length]).decode("utf-8"))
        payload = blob[8 + length :]
        return cls(
            codec=meta["codec"],
            payload=payload,
            shape=tuple(meta["shape"]),
            dtype=meta["dtype"],
            error_bound=float(meta["error_bound"]),
            nbytes_original=int(meta["nbytes_original"]),
            metadata=meta.get("metadata", {}),
        )


@dataclass
class RoundTripResult:
    """Compression + decompression outcome with basic quality statistics."""

    compressed: CompressedArray
    decompressed: np.ndarray
    max_error: float
    mse: float
    psnr: float

    @property
    def compression_ratio(self) -> float:
        return self.compressed.compression_ratio


class Compressor(ABC):
    """Abstract error-bounded lossy compressor.

    Subclasses implement :meth:`_compress_impl` / :meth:`_decompress_impl`;
    the base class handles error-bound-mode resolution (absolute vs
    value-range relative), bookkeeping and verification.
    """

    #: registry name; subclasses must override
    name: str = "abstract"

    def __init__(self) -> None:
        if type(self) is not Compressor and not self.name:
            raise ValueError("compressor subclasses must define a name")

    # -- public API ---------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        error_bound: Union[float, ErrorBound, Dict[str, Any]],
        *,
        relative: Optional[bool] = None,
    ) -> CompressedArray:
        """Compress ``data`` under a point-wise error bound.

        Parameters
        ----------
        data:
            1-, 2- or 3-dimensional floating point array.
        error_bound:
            An :class:`~repro.api.error_bound.ErrorBound` spec (or its dict
            form), resolved against ``data``; a bare float is an absolute
            bound.  The ``relative=`` keyword is the deprecated spelling of
            ``ErrorBound.rel`` and emits a :class:`DeprecationWarning`.
        """
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if arr.ndim not in (1, 2, 3):
            raise CompressionError(f"{self.name} supports 1-3 dimensional data, got {arr.ndim}D")
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        try:
            spec = ErrorBound.coerce(
                error_bound, relative=bool(relative), warn_legacy=relative is not None
            )
        except ValueError as exc:
            raise CompressionError(str(exc)) from exc
        eb = float(spec.resolve(arr))
        if eb <= 0:
            raise CompressionError("error bound must be strictly positive")
        payload, metadata = self._compress_impl(arr, eb)
        return CompressedArray(
            codec=self.name,
            payload=payload,
            shape=arr.shape,
            dtype=str(data.dtype if isinstance(data, np.ndarray) else arr.dtype),
            error_bound=eb,
            nbytes_original=arr.size * 8,
            metadata=metadata,
        )

    def decompress(self, compressed: CompressedArray) -> np.ndarray:
        """Reconstruct the array from a :class:`CompressedArray`."""
        if compressed.codec != self.name:
            raise DecompressionError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        out = self._decompress_impl(compressed)
        return out.reshape(compressed.shape)

    def decompress_into(
        self, compressed: CompressedArray, out: np.ndarray, src=None
    ) -> np.ndarray:
        """Reconstruct straight into a caller-preallocated destination.

        ``out`` receives the reconstruction (restricted to the ``src`` index
        window when given, so an edge block pastes only its overlap); it may
        be any float64 view — typically a strided window of a query's output
        array.  Codecs that implement :meth:`_decompress_into_impl` write
        their final reconstruction pass directly into ``out`` (no per-block
        temporary); others fall back to decode-then-copy, so the call is
        always correct and at worst costs what the two-step path did.
        """
        if compressed.codec != self.name:
            raise DecompressionError(
                f"payload was produced by {compressed.codec!r}, not {self.name!r}"
            )
        if src is None and tuple(out.shape) == tuple(compressed.shape):
            result = self._decompress_into_impl(compressed, out)
            if result is None:  # codec reconstructed in place
                return out
            np.copyto(out, result.reshape(compressed.shape))
            return out
        block = self._decompress_impl(compressed).reshape(compressed.shape)
        np.copyto(out, block if src is None else block[src])
        return out

    def roundtrip(
        self,
        data: np.ndarray,
        error_bound: Union[float, ErrorBound, Dict[str, Any]],
        *,
        relative: Optional[bool] = None,
        verify: bool = False,
    ) -> RoundTripResult:
        """Compress then decompress, returning quality statistics.

        With ``verify=True`` an :class:`ErrorBoundViolation` is raised if the
        reconstruction exceeds the requested bound (used heavily in tests).
        """
        arr = np.asarray(data, dtype=np.float64)
        # Legacy adapter: roundtrip still forwards the deprecated spelling so
        # pre-ErrorBound callers keep working.
        comp = self.compress(arr, error_bound, relative=relative)  # repro: ignore[deprecated-api] -- legacy adapter
        recon = self.decompress(comp)
        err = np.abs(recon - arr)
        max_err = float(err.max())
        mse = float(np.mean((recon - arr) ** 2))
        value_range = float(arr.max() - arr.min())
        if mse == 0:
            psnr = float("inf")
        elif value_range == 0:
            psnr = float("inf") if mse == 0 else float("-inf")
        else:
            psnr = 20.0 * np.log10(value_range) - 10.0 * np.log10(mse)
        if verify and max_err > comp.error_bound * (1 + 1e-9):
            raise ErrorBoundViolation(max_err, comp.error_bound)
        return RoundTripResult(
            compressed=comp, decompressed=recon, max_error=max_err, mse=mse, psnr=psnr
        )

    # -- subclass hooks -----------------------------------------------------
    @abstractmethod
    def _compress_impl(self, data: np.ndarray, error_bound: float):
        """Return ``(payload_bytes, metadata_dict)``."""

    @abstractmethod
    def _decompress_impl(self, compressed: CompressedArray) -> np.ndarray:
        """Return the flattened/ shaped reconstruction (reshaped by the caller)."""

    def _decompress_into_impl(
        self, compressed: CompressedArray, out: np.ndarray
    ) -> Optional[np.ndarray]:
        """Optionally reconstruct in place: write into ``out`` (shaped like the
        payload) and return ``None``, or return a freshly decoded array for the
        base class to copy.  The default defers to :meth:`_decompress_impl`."""
        return self._decompress_impl(compressed)


# -- registry ----------------------------------------------------------------
_REGISTRY: Dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str) -> Callable[[Type[Compressor]], Type[Compressor]]:
    """Class decorator adding a compressor to the global registry."""

    def deco(cls: Type[Compressor]) -> Type[Compressor]:
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by name (e.g. ``"sz3"``, ``"zfp"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise UnknownCompressorError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
    return factory(**kwargs)


def available_compressors() -> tuple:
    """Names of all registered compressors."""
    return tuple(sorted(_REGISTRY))
