"""ZFP's decorrelating block transform.

ZFP applies an orthogonal-ish lifting transform to each 4-point line of a
``4^d`` block (separably along each axis) before coding the transform
coefficients.  We use the published transform matrix

    L = 1/16 * [[ 4,  4,  4,  4],
                [ 5,  1, -1, -5],
                [-4,  4,  4, -4],
                [-2,  6, -6,  2]]

and its exact inverse.  The induced infinity norm of the inverse separable
transform gives the worst-case amplification of coefficient quantization
error, which is what the fixed-accuracy mode of :class:`repro.compressors.zfp.
ZFPCompressor` uses to guarantee the point-wise error bound.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ZFP_BLOCK_SIZE",
    "forward_matrix",
    "inverse_matrix",
    "forward_transform_blocks",
    "inverse_transform_blocks",
    "inverse_gain",
]

#: Edge length of a ZFP block.
ZFP_BLOCK_SIZE = 4

_FWD = (1.0 / 16.0) * np.array(
    [
        [4.0, 4.0, 4.0, 4.0],
        [5.0, 1.0, -1.0, -5.0],
        [-4.0, 4.0, 4.0, -4.0],
        [-2.0, 6.0, -6.0, 2.0],
    ]
)
_INV = np.linalg.inv(_FWD)


def forward_matrix() -> np.ndarray:
    """Copy of the 4x4 forward decorrelating transform."""
    return _FWD.copy()


def inverse_matrix() -> np.ndarray:
    """Copy of the exact inverse transform."""
    return _INV.copy()


def _apply_separable(blocks: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply ``matrix`` along every block axis of ``blocks``.

    ``blocks`` has shape ``(nblocks, 4, 4, ...)`` with ``ndim`` trailing axes
    of length 4; the matrix acts on each of them in turn.
    """
    out = np.asarray(blocks, dtype=np.float64)
    ndim = out.ndim - 1
    for axis in range(1, ndim + 1):
        out = np.moveaxis(out, axis, -1)
        out = out @ matrix.T
        out = np.moveaxis(out, -1, axis)
    return out


def forward_transform_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward transform of a batch of ``4^d`` blocks, shape ``(nblocks, 4, ..)``."""
    _check_blocks(blocks)
    return _apply_separable(blocks, _FWD)


def inverse_transform_blocks(coefficients: np.ndarray) -> np.ndarray:
    """Inverse transform; exact inverse of :func:`forward_transform_blocks`."""
    _check_blocks(coefficients)
    return _apply_separable(coefficients, _INV)


def inverse_gain(ndim: int) -> float:
    """Worst-case amplification of coefficient errors through the inverse transform.

    For the separable d-dimensional transform this is the induced
    infinity-norm of the 1-D inverse raised to the d-th power.
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    row_norm = float(np.abs(_INV).sum(axis=1).max())
    return row_norm**ndim


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim < 2:
        raise ValueError("blocks must have shape (nblocks, 4, ...)")
    if any(s != ZFP_BLOCK_SIZE for s in blocks.shape[1:]):
        raise ValueError(
            f"every block axis must have length {ZFP_BLOCK_SIZE}, got {blocks.shape[1:]}"
        )
