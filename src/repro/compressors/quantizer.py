"""Error-controlled linear quantization.

All three compressors reduce prediction residuals to integer codes with the
classic SZ linear quantizer: a residual ``r`` becomes ``q = round(r / (2*eb))``
and is reconstructed as ``q * 2 * eb``, which guarantees
``|r - q*2*eb| <= eb``.  Residuals whose code would overflow the configured
code range are flagged *unpredictable* and stored exactly.

The quantizer is stateless and fully vectorised; the code stream and the
exact-value stream are returned separately so callers can entropy-code them
independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["LinearQuantizer", "QuantizedResiduals", "DEFAULT_CODE_RADIUS"]

#: Default half-width of the quantization code range.  Matches the spirit of
#: SZ's 2^15 quantization bins; residuals needing a larger code are stored
#: exactly instead.
DEFAULT_CODE_RADIUS = 32768


@dataclass(frozen=True)
class QuantizedResiduals:
    """Output of :meth:`LinearQuantizer.quantize`.

    Attributes
    ----------
    codes:
        Integer codes, same length as the input residuals.  Unpredictable
        entries carry the sentinel code ``radius`` (outside the normal range
        ``[-radius+1, radius-1]``).
    exact_values:
        Original values of the unpredictable entries, in input order.
    reconstructed:
        Error-bounded reconstruction of the inputs (predictions + dequantized
        residuals, with exact values substituted for unpredictable entries).
    """

    codes: np.ndarray
    exact_values: np.ndarray
    reconstructed: np.ndarray


class LinearQuantizer:
    """Uniform scalar quantizer with an unpredictable-value escape hatch."""

    def __init__(self, radius: int = DEFAULT_CODE_RADIUS):
        if radius < 2:
            raise ValueError("code radius must be at least 2")
        self.radius = int(radius)

    @property
    def sentinel(self) -> int:
        """Code used to mark unpredictable (exactly stored) values."""
        return self.radius

    def quantize(
        self, values: np.ndarray, predictions: np.ndarray, error_bound: float
    ) -> QuantizedResiduals:
        """Quantize ``values - predictions`` under an absolute error bound.

        ``values`` and ``predictions`` must have the same shape; the outputs
        are flattened in C order.
        """
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        values = np.asarray(values, dtype=np.float64).ravel()
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        if values.shape != predictions.shape:
            raise ValueError("values and predictions must have the same size")

        step = 2.0 * float(error_bound)
        residual = values - predictions
        codes = np.rint(residual / step).astype(np.int64)
        recon = predictions + codes * step

        # Escape values whose code overflows the range or whose reconstruction
        # drifted past the bound due to floating-point rounding.
        overflow = np.abs(codes) >= self.radius
        drift = np.abs(recon - values) > error_bound
        unpred = overflow | drift

        codes = np.where(unpred, self.sentinel, codes)
        exact_values = values[unpred].copy()
        recon = np.where(unpred, values, recon)
        return QuantizedResiduals(codes=codes, exact_values=exact_values, reconstructed=recon)

    def dequantize(
        self,
        codes: np.ndarray,
        predictions: np.ndarray,
        error_bound: float,
        exact_values: np.ndarray,
    ) -> Tuple[np.ndarray, int]:
        """Reconstruct values from codes and predictions.

        Returns the reconstruction and the number of exact values consumed, so
        callers interleaving several quantized segments can advance their
        exact-value cursor.
        """
        if error_bound <= 0:
            raise ValueError("error_bound must be positive")
        codes = np.asarray(codes, dtype=np.int64).ravel()
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        if codes.shape != predictions.shape:
            raise ValueError("codes and predictions must have the same size")
        step = 2.0 * float(error_bound)
        recon = predictions + codes * step
        unpred = codes == self.sentinel
        n_exact = int(unpred.sum())
        if n_exact:
            exact_values = np.asarray(exact_values, dtype=np.float64).ravel()
            if exact_values.size < n_exact:
                raise ValueError(
                    f"need {n_exact} exact values but only {exact_values.size} available"
                )
            recon[unpred] = exact_values[:n_exact]
        return recon, n_exact
