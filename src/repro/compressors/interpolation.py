"""Level-by-level separable interpolation prediction (the SZ3 core).

SZ3 predicts the whole array with a multi-level interpolation scheme: anchor
points on the coarsest grid are stored exactly, then each level halves the
grid spacing and predicts the newly introduced points by interpolating along
one axis at a time from already-reconstructed points.  Points whose upper
neighbour falls outside the array can only be *extrapolated* from the lower
neighbour — the inaccuracy the paper's padding strategy (SZ3MR, §III-A)
removes.

The module exposes an :class:`InterpolationPlan` describing the exact
traversal (anchor slices plus an ordered list of steps); compression and
decompression iterate the same plan so the quantization-code stream needs no
positional metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "InterpolationStep",
    "InterpolationPlan",
    "max_interpolation_level",
    "build_plan",
    "predict_step",
    "count_extrapolated_points",
]

#: Supported interpolation kernels.
INTERPOLATION_MODES = ("linear", "cubic")


@dataclass(frozen=True)
class InterpolationStep:
    """One (level, axis) sub-step of the interpolation traversal.

    ``target`` selects (as a tuple of slices) the points predicted in this
    step; the same slices are valid on the original and the reconstructed
    array because the traversal is defined purely by the array shape.
    """

    level: int
    axis: int
    target: Tuple[slice, ...]


@dataclass(frozen=True)
class InterpolationPlan:
    """Full traversal: anchor slices, ordered steps and the level count."""

    shape: Tuple[int, ...]
    max_level: int
    anchor: Tuple[slice, ...]
    steps: Tuple[InterpolationStep, ...]

    @property
    def anchor_stride(self) -> int:
        return 1 << self.max_level

    def n_targets(self, step: InterpolationStep) -> int:
        """Number of points predicted by ``step`` (needed by the decoder)."""
        return int(np.prod([_slice_len(sl, n) for sl, n in zip(step.target, self.shape)]))


def _slice_len(sl: slice, n: int) -> int:
    start = sl.start or 0
    step = sl.step or 1
    stop = n if sl.stop is None else min(sl.stop, n)
    if start >= stop:
        return 0
    return (stop - start + step - 1) // step


def max_interpolation_level(shape: Tuple[int, ...]) -> int:
    """Number of interpolation levels for a given shape.

    Defined so the anchor stride ``2^max_level`` reaches the last index of the
    longest axis when that axis has ``2^n + 1`` points — the layout produced
    by the paper's padding strategy, in which case no anchor extrapolation is
    needed at all.
    """
    m = max(int(s) for s in shape)
    if m <= 1:
        return 0
    return max(1, int(math.ceil(math.log2(max(m - 1, 1)))))


def build_plan(shape: Tuple[int, ...]) -> InterpolationPlan:
    """Build the deterministic interpolation traversal for ``shape``."""
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ValueError(f"invalid shape {shape}")
    ndim = len(shape)
    max_level = max_interpolation_level(shape)
    anchor_stride = 1 << max_level
    anchor = tuple(slice(0, None, anchor_stride) for _ in range(ndim))

    steps: List[InterpolationStep] = []
    for level in range(max_level, 0, -1):
        s = 1 << (level - 1)
        for axis in range(ndim):
            target = []
            for d in range(ndim):
                if d < axis:
                    target.append(slice(0, None, s))
                elif d == axis:
                    target.append(slice(s, None, 2 * s))
                else:
                    target.append(slice(0, None, 2 * s))
            step = InterpolationStep(level=level, axis=axis, target=tuple(target))
            # Skip degenerate steps with no targets (very anisotropic shapes).
            if all(_slice_len(sl, n) > 0 for sl, n in zip(step.target, shape)):
                steps.append(step)
    return InterpolationPlan(shape=shape, max_level=max_level, anchor=anchor, steps=tuple(steps))


def predict_step(
    recon: np.ndarray, step: InterpolationStep, mode: str = "cubic"
) -> np.ndarray:
    """Predict the target points of ``step`` from already-reconstructed points.

    Returns an array with the shape of ``recon[step.target]``.  Interior
    points are interpolated (linearly or with the 4-point cubic kernel); the
    trailing points without an upper neighbour are extrapolated from the lower
    neighbour (constant extrapolation), reproducing original SZ3 behaviour.
    """
    if mode not in INTERPOLATION_MODES:
        raise ValueError(f"mode must be one of {INTERPOLATION_MODES}, got {mode!r}")
    axis = step.axis
    s = 1 << (step.level - 1)

    target_view = recon[step.target]
    n_t = target_view.shape[axis]
    if n_t == 0:
        return np.empty(target_view.shape, dtype=np.float64)

    # Coarse-grid neighbours along `axis`: positions 0, 2s, 4s, ...
    coarse_slices = list(step.target)
    coarse_slices[axis] = slice(0, None, 2 * s)
    coarse = recon[tuple(coarse_slices)]

    co = np.moveaxis(coarse, axis, 0).astype(np.float64, copy=False)
    n_c = co.shape[0]
    pred_m = np.empty((n_t,) + co.shape[1:], dtype=np.float64)

    # Linear interpolation wherever the upper neighbour exists.
    n_lin = min(n_t, n_c - 1)
    if n_lin > 0:
        pred_m[:n_lin] = 0.5 * (co[:n_lin] + co[1 : n_lin + 1])
    # Constant extrapolation from the lower neighbour for the remainder.
    if n_lin < n_t:
        pred_m[n_lin:n_t] = co[n_lin:n_t]

    # Cubic refinement on interior targets with two neighbours on each side.
    if mode == "cubic" and n_c >= 4:
        m0 = 1
        m1 = min(n_t, n_c - 2)
        if m1 > m0:
            pred_m[m0:m1] = (
                -co[m0 - 1 : m1 - 1]
                + 9.0 * co[m0:m1]
                + 9.0 * co[m0 + 1 : m1 + 1]
                - co[m0 + 2 : m1 + 2]
            ) / 16.0

    return np.moveaxis(pred_m, 0, axis)


def count_extrapolated_points(shape: Tuple[int, ...]) -> int:
    """Number of points predicted by extrapolation rather than interpolation.

    This quantifies the sub-optimal predictions discussed around Figures 7
    and 8 of the paper: a ``2^n``-sized axis forces extrapolation at every
    level, whereas a padded ``2^n + 1`` axis needs none.
    """
    plan = build_plan(shape)
    total = 0
    for step in plan.steps:
        axis = step.axis
        s = 1 << (step.level - 1)
        n_t = _slice_len(step.target[axis], shape[axis])
        coarse_len = _slice_len(slice(0, None, 2 * s), shape[axis])
        n_extrap_per_line = max(0, n_t - (coarse_len - 1))
        other = 1
        for d, (sl, n) in enumerate(zip(step.target, shape)):
            if d != axis:
                other *= _slice_len(sl, n)
        total += n_extrap_per_line * other
    return total
