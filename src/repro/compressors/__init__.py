"""Error-bounded lossy compressors and their coding substrates.

The paper builds on three compressors: SZ2 (block-wise prediction), SZ3
(global interpolation prediction), and ZFP (block-wise transform coding).
None of their C implementations are available offline, so this subpackage
reimplements the algorithmic cores in NumPy:

* :class:`repro.compressors.sz3.SZ3Compressor` — level-by-level separable
  interpolation prediction over the whole array, error-bounded quantization,
  entropy-coded quantization indices.  Supports per-level error bounds, which
  is the hook the paper's SZ3MR adaptive error bound uses.
* :class:`repro.compressors.sz2.SZ2Compressor` — independent ``b^3`` blocks,
  per-block mean / plane-regression / (optional) Lorenzo prediction.
* :class:`repro.compressors.zfp.ZFPCompressor` — independent ``4^d`` blocks,
  ZFP's decorrelating lifting transform, fixed-accuracy coefficient
  quantization.

All compressors share the :class:`repro.compressors.base.Compressor`
interface and guarantee a strict point-wise absolute error bound.
"""

from repro.compressors.base import (
    CompressedArray,
    Compressor,
    RoundTripResult,
    get_compressor,
    register_compressor,
)
from repro.compressors.errors import (
    CompressionError,
    DecompressionError,
    ErrorBoundViolation,
)
from repro.compressors.sz2 import SZ2Compressor
from repro.compressors.sz3 import SZ3Compressor
from repro.compressors.zfp import ZFPCompressor

__all__ = [
    "CompressedArray",
    "Compressor",
    "RoundTripResult",
    "get_compressor",
    "register_compressor",
    "CompressionError",
    "DecompressionError",
    "ErrorBoundViolation",
    "SZ2Compressor",
    "SZ3Compressor",
    "ZFPCompressor",
]
