"""ZFP-like transform-based block compressor (fixed-accuracy mode).

Each ``4^d`` block is decorrelated with ZFP's lifting transform
(:mod:`repro.compressors.transform`); coefficients are uniformly quantized
with a step small enough that the worst-case error after the inverse
transform stays within the requested absolute bound.  Like the real ZFP in
fixed-accuracy mode, the actual maximum error is typically much smaller than
the bound (the "underestimation" the paper exploits when choosing the
post-processing intensity candidates for ZFP).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.compressors.base import CompressedArray, Compressor, register_compressor
from repro.compressors.errors import DecompressionError
from repro.compressors.lossless import (
    decode_int_array,
    encode_int_array,
    pack_streams,
    unpack_streams,
)
from repro.compressors.transform import (
    ZFP_BLOCK_SIZE,
    forward_transform_blocks,
    inverse_gain,
    inverse_transform_blocks,
)
from repro.utils.blocks import assemble_blocks, block_view, pad_to_multiple

__all__ = ["ZFPCompressor"]


@register_compressor("zfp")
class ZFPCompressor(Compressor):
    """Block-transform error-bounded lossy compressor (ZFP stand-in)."""

    def __init__(self, lossless_level: int = 6, coefficient_grouping: bool = True) -> None:
        super().__init__()
        self.lossless_level = int(lossless_level)
        #: group the code stream by coefficient index (all DC codes together,
        #: then all first AC codes, ...) which markedly improves the backend's
        #: ratio; disabling it is useful for ablation.
        self.coefficient_grouping = bool(coefficient_grouping)

    # -- compression --------------------------------------------------------
    def _compress_impl(self, data: np.ndarray, error_bound: float) -> Tuple[bytes, Dict]:
        ndim = data.ndim
        padded = pad_to_multiple(data, ZFP_BLOCK_SIZE, mode="edge")
        bv = block_view(padded, ZFP_BLOCK_SIZE)
        nblocks_shape = bv.shape[:ndim]
        nblocks = int(np.prod(nblocks_shape))
        blocks = bv.reshape((nblocks,) + (ZFP_BLOCK_SIZE,) * ndim)

        coefficients = forward_transform_blocks(blocks)
        gain = inverse_gain(ndim)
        step = 2.0 * error_bound / gain
        codes = np.rint(coefficients / step).astype(np.int64)

        if self.coefficient_grouping:
            # (nblocks, 4, 4, 4) -> (4, 4, 4, nblocks): same-frequency codes
            # become contiguous which helps the lossless backend.
            stream = np.moveaxis(codes, 0, -1).ravel()
        else:
            stream = codes.ravel()

        payload = pack_streams(
            {"codes": encode_int_array(stream, level=self.lossless_level)}
        )
        metadata = {
            "block_size": ZFP_BLOCK_SIZE,
            "padded_shape": list(padded.shape),
            "nblocks_shape": list(nblocks_shape),
            "coefficient_grouping": self.coefficient_grouping,
            "quantization_step": step,
        }
        return payload, metadata

    # -- decompression ------------------------------------------------------
    def _decompress_impl(self, compressed: CompressedArray) -> np.ndarray:
        meta = compressed.metadata
        streams = unpack_streams(compressed.payload)
        stream = decode_int_array(streams["codes"])

        ndim = len(compressed.shape)
        nblocks_shape = tuple(int(x) for x in meta["nblocks_shape"])
        nblocks = int(np.prod(nblocks_shape))
        block_dims = (ZFP_BLOCK_SIZE,) * ndim
        expected = nblocks * int(np.prod(block_dims))
        if stream.size != expected:
            raise DecompressionError(
                f"coefficient stream has {stream.size} codes, expected {expected}"
            )

        if meta.get("coefficient_grouping", True):
            codes = np.moveaxis(stream.reshape(block_dims + (nblocks,)), -1, 0)
        else:
            codes = stream.reshape((nblocks,) + block_dims)

        step = float(meta["quantization_step"])
        coefficients = codes.astype(np.float64) * step
        blocks = inverse_transform_blocks(coefficients)
        blocks = blocks.reshape(nblocks_shape + block_dims)
        dense = assemble_blocks(blocks, out_shape=compressed.shape)
        return dense

    # -- introspection -------------------------------------------------------
    def block_boundaries(self, shape: Tuple[int, ...]):
        """First index of every ZFP block along each axis (for post-processing)."""
        return tuple(np.arange(0, s, ZFP_BLOCK_SIZE) for s in shape)

    @property
    def block_size(self) -> int:
        return ZFP_BLOCK_SIZE
