"""Per-block linear (hyper-plane) regression predictor.

SZ2 fits a linear model ``f(i, j, k) = c0 + c1 i + c2 j + c3 k`` inside each
compression block and transmits the quantized coefficients; the decompressor
evaluates the same plane, so prediction error never accumulates across blocks.
The fit is solved in closed form for *all* blocks at once: with a fixed design
matrix ``X`` (one row per in-block position) the least-squares coefficients of
every block are ``pinv(X) @ values``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["design_matrix", "fit_plane_blocks", "predict_plane_blocks", "fit_mean_blocks"]


def design_matrix(block_shape: Sequence[int]) -> np.ndarray:
    """Design matrix with a constant column plus one coordinate column per axis.

    Coordinates are centred so the constant coefficient equals the block mean,
    which improves the numerical conditioning and the compressibility of the
    coefficient stream.
    """
    block_shape = tuple(int(b) for b in block_shape)
    coords = np.meshgrid(
        *[np.arange(b, dtype=np.float64) - (b - 1) / 2.0 for b in block_shape],
        indexing="ij",
    )
    cols = [np.ones(int(np.prod(block_shape)), dtype=np.float64)]
    cols.extend(c.ravel() for c in coords)
    return np.stack(cols, axis=1)  # (npoints, 1 + ndim)


def fit_plane_blocks(block_values: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Least-squares plane coefficients for every block.

    Parameters
    ----------
    block_values:
        Array of shape ``(nblocks, npoints)`` where ``npoints = prod(block_shape)``.
    block_shape:
        Shape of a single block.

    Returns
    -------
    numpy.ndarray
        Coefficients of shape ``(nblocks, 1 + ndim)``.
    """
    X = design_matrix(block_shape)
    if block_values.ndim != 2 or block_values.shape[1] != X.shape[0]:
        raise ValueError(
            f"block_values must be (nblocks, {X.shape[0]}), got {block_values.shape}"
        )
    pinv = np.linalg.pinv(X)  # (1+ndim, npoints)
    return block_values @ pinv.T  # (nblocks, 1+ndim)


def predict_plane_blocks(coefficients: np.ndarray, block_shape: Sequence[int]) -> np.ndarray:
    """Evaluate the per-block planes; inverse of :func:`fit_plane_blocks`.

    Returns predictions of shape ``(nblocks, npoints)``.
    """
    X = design_matrix(block_shape)
    if coefficients.ndim != 2 or coefficients.shape[1] != X.shape[1]:
        raise ValueError(
            f"coefficients must be (nblocks, {X.shape[1]}), got {coefficients.shape}"
        )
    return coefficients @ X.T


def fit_mean_blocks(block_values: np.ndarray) -> np.ndarray:
    """Block-mean predictor coefficients, shape ``(nblocks, 1)``."""
    if block_values.ndim != 2:
        raise ValueError("block_values must be 2-D (nblocks, npoints)")
    return block_values.mean(axis=1, keepdims=True)
