"""Correctness tooling for the repro codebase itself.

Two halves, both project-aware:

- :mod:`repro.devtools.lint` — an AST lint engine whose rules encode this
  codebase's conventions (``# repro: guarded-by`` lock discipline, wire-op
  coverage on all three protocol sides, ``repro_*`` metrics hygiene, API
  hygiene).  ``repro lint [PATHS]`` is the CLI; CI gates on zero
  non-baseline findings.
- :mod:`repro.devtools.lockcheck` — an opt-in (``REPRO_LOCKCHECK=1``)
  runtime lock-order detector that instruments ``threading.Lock`` across
  ``repro.*`` and reports potential deadlocks and locks held across
  blocking socket calls, run over the whole test suite.

Import cost is nil until used; nothing here is imported by the runtime
packages (``repro.devtools`` depends on them for analysis, never the other
way around).
"""

from repro.devtools.lint import (
    Context,
    Finding,
    LintEngine,
    ModuleInfo,
    Project,
    Rule,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

__all__ = [
    "Context",
    "Finding",
    "LintEngine",
    "ModuleInfo",
    "Project",
    "Rule",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "write_baseline",
]
