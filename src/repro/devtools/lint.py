"""Project-aware AST lint engine: the conventions of this codebase, machine-checked.

After the serve/shard/obs PRs the system's correctness rests on conventions
that no general-purpose linter knows: fields guarded by locks, wire ops
registered on all three sides of the protocol, ``repro_*`` metric naming.
This engine parses every file under lint into one :class:`Project` of ASTs
and runs :class:`Rule` plugins over them — rules see *all* modules at once,
so cross-module invariants (a wire op declared in ``protocol.py`` must have a
dispatch branch in every daemon and a client call site) are single findings,
not review folklore.

Conventions are declared in source with ``# repro:`` directives::

    self._counters = {}       # repro: guarded-by(_lock)
    def _teardown(self):      # repro: holds(_lock)
    reader = self._source     # repro: unlocked -- double-checked fast path
    x = legacy_call()         # repro: ignore[deprecated-api] -- adapter

``guarded-by(NAME)`` marks an attribute that may only be touched inside
``with self.NAME``; ``holds(NAME)`` marks a method whose *caller* holds the
lock; ``unlocked`` waives the lock rule for one deliberate line; and
``ignore[rule-id, ...]`` (or a bare ``ignore``) suppresses any rule.  Text
after ``--`` is a human reason and is never parsed.

Findings carry ``path:line:col``, a rule id and a message; a checked-in
baseline file grandfathers pre-existing findings (fingerprints deliberately
exclude line numbers so unrelated edits do not churn the gate), making the
CI gate zero-*new*-findings from day one.  ``repro lint [PATHS]`` is the CLI.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Context",
    "Rule",
    "LintEngine",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "BASELINE_NAME",
]

#: Default name of the checked-in grandfather file, looked up in the lint root.
BASELINE_NAME = "lint-baseline.json"

_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_CALL_RE = re.compile(r"(?P<name>[a-zA-Z_][\w-]*)\s*(?:\((?P<args>[^)]*)\)|\[(?P<items>[^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at ``path:line:col``.

    ``fingerprint`` intentionally omits the line number: a baseline entry
    must survive unrelated edits above the finding, so identity is the file,
    the rule and the message (which itself names the offending symbol).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.path}::{self.rule}::{self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class ModuleInfo:
    """One parsed source file: AST, directives, and lazy parent links."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        #: line -> list of (directive-name, argument-string-or-None)
        self.directives: Dict[int, List[Tuple[str, Optional[str]]]] = {}
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._parse_directives()

    def _parse_directives(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # half-edited file
            comments = [
                (i + 1, line[line.index("#"):])
                for i, line in enumerate(self.source.splitlines())
                if "#" in line
            ]
        for line, comment in comments:
            m = _DIRECTIVE_RE.search(comment)
            if m is None:
                continue
            body = m.group("body").split("--", 1)[0]  # trailing text = reason
            for call in _CALL_RE.finditer(body):
                name = call.group("name")
                if not name:
                    continue
                arg = call.group("args")
                if arg is None:
                    arg = call.group("items")
                self.directives.setdefault(line, []).append(
                    (name, arg.strip() if arg is not None else None)
                )

    def directive(self, line: int, name: str) -> Optional[Tuple[str, Optional[str]]]:
        """The ``(name, arg)`` directive on ``line``, or ``None``."""
        for item in self.directives.get(line, ()):
            if item[0] == name:
                return item
        return None

    def ignored(self, line: int, rule_id: str) -> bool:
        """Whether ``# repro: ignore[...]`` (or bare ``ignore``) covers ``line``."""
        for name, arg in self.directives.get(line, ()):
            if name != "ignore":
                continue
            if arg is None:
                return True
            rules = {part.strip() for part in arg.split(",")}
            if rule_id in rules:
                return True
        return False

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built on first use)."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents


class Project:
    """Every module under lint, addressable by path suffix."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = list(modules)

    def find(self, suffix: str) -> Optional[ModuleInfo]:
        """The module whose relpath ends with ``suffix`` (posix), if any."""
        for module in self.modules:
            if module.relpath.endswith(suffix):
                return module
        return None

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class Context:
    """What a rule sees while visiting: the project, the module, a reporter."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.module: Optional[ModuleInfo] = None
        self.findings: List[Finding] = []
        self._rule_id = ""

    def report(
        self,
        node: Any,
        message: str,
        module: Optional[ModuleInfo] = None,
        rule: Optional[str] = None,
    ) -> None:
        """Record a finding at ``node`` (an AST node, or a plain line number).

        Suppressed when the line carries ``# repro: ignore`` for the rule.
        """
        module = module or self.module
        assert module is not None, "report() outside a module needs module="
        rule_id = rule or self._rule_id
        line = int(getattr(node, "lineno", node if isinstance(node, int) else 1))
        col = int(getattr(node, "col_offset", 0))
        if module.ignored(line, rule_id):
            return
        self.findings.append(Finding(module.relpath, line, col, rule_id, message))


class Rule:
    """Base class of lint rules — the plugin API.

    Subclasses set ``id`` and ``help``, declare the node types they want via
    ``node_types`` and implement :meth:`visit`; rules that check invariants
    *across* modules override :meth:`finish_project`, which runs once after
    every module has been walked.  Findings go through ``ctx.report`` so
    ``# repro: ignore`` suppression applies uniformly.
    """

    id: str = ""
    help: str = ""
    #: AST node classes dispatched to :meth:`visit`; empty = no per-node calls.
    node_types: Tuple[type, ...] = ()

    def start_module(self, ctx: Context) -> None:
        """Called before walking each module."""

    def visit(self, node: ast.AST, ctx: Context) -> None:
        """Called for every node of a type listed in ``node_types``."""

    def finish_module(self, ctx: Context) -> None:
        """Called after walking each module."""

    def finish_project(self, ctx: Context) -> None:
        """Called once after all modules; cross-module checks live here."""


class LintEngine:
    """Parse paths into a :class:`Project` and run every rule over it."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.devtools.rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)

    # -- collection ------------------------------------------------------------
    @staticmethod
    def collect_files(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        seen = set()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                candidates = sorted(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts)
                )
            elif path.suffix == ".py":
                candidates = [path]
            else:
                candidates = []
            for p in candidates:
                key = p.resolve()
                if key not in seen:
                    seen.add(key)
                    files.append(p)
        return files

    @staticmethod
    def _relpath(path: Path, root: Optional[Path]) -> str:
        resolved = path.resolve()
        for base in ([root.resolve()] if root is not None else []) + [Path.cwd()]:
            try:
                return resolved.relative_to(base).as_posix()
            except ValueError:
                continue
        return path.as_posix()

    def load_project(
        self, paths: Sequence[Path], root: Optional[Path] = None
    ) -> Tuple[Project, List[Finding]]:
        """Parse every file; unparsable files become ``parse-error`` findings."""
        modules: List[ModuleInfo] = []
        errors: List[Finding] = []
        for path in self.collect_files(paths):
            relpath = self._relpath(path, root)
            try:
                source = path.read_text("utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                line = int(getattr(exc, "lineno", 1) or 1)
                errors.append(
                    Finding(relpath, line, 0, "parse-error", f"cannot parse: {exc}")
                )
                continue
            modules.append(ModuleInfo(path, relpath, source, tree))
        return Project(modules), errors

    # -- running ---------------------------------------------------------------
    def run(self, project: Project) -> List[Finding]:
        ctx = Context(project)
        interested: List[Tuple[Rule, Tuple[type, ...]]] = [
            (rule, rule.node_types) for rule in self.rules
        ]
        for module in project:
            ctx.module = module
            for rule, _ in interested:
                ctx._rule_id = rule.id
                rule.start_module(ctx)
            for node in ast.walk(module.tree):
                for rule, types in interested:
                    if types and isinstance(node, types):
                        ctx._rule_id = rule.id
                        rule.visit(node, ctx)
            for rule, _ in interested:
                ctx._rule_id = rule.id
                rule.finish_module(ctx)
        ctx.module = None
        for rule in self.rules:
            ctx._rule_id = rule.id
            rule.finish_project(ctx)
        return sorted(
            ctx.findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )

    def lint(
        self, paths: Sequence[Path], root: Optional[Path] = None
    ) -> List[Finding]:
        project, errors = self.load_project(paths, root=root)
        return sorted(
            errors + self.run(project),
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message),
        )


def lint_paths(
    paths: Sequence[Path], rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint files/directories with the default (or given) rule set."""
    return LintEngine(rules).lint([Path(p) for p in paths], root=root)


# -- baseline ------------------------------------------------------------------
def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> grandfathered count; missing file = empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        raw = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupt lint baseline ({exc})") from exc
    if not isinstance(raw, dict) or raw.get("format") != "repro-lint-baseline":
        raise ValueError(f"{path}: not a repro lint baseline file")
    findings = raw.get("findings", {})
    return {str(k): int(v) for k, v in findings.items()}


def write_baseline(findings: Iterable[Finding], path: Path) -> Dict[str, int]:
    """Persist the given findings as the new grandfather set."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    payload = {
        "format": "repro-lint-baseline",
        "version": 1,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8")
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, number-grandfathered) against a baseline.

    Per fingerprint, up to the baselined count is forgiven (oldest first by
    line); everything beyond it — and every unknown fingerprint — is new.
    """
    budget = dict(baseline)
    new: List[Finding] = []
    grandfathered = 0
    for finding in findings:
        left = budget.get(finding.fingerprint, 0)
        if left > 0:
            budget[finding.fingerprint] = left - 1
            grandfathered += 1
        else:
            new.append(finding)
    return new, grandfathered
