"""Runtime lock-order detector: deadlocks and lock-held blocking I/O, observed.

Static rules prove *where* locks are required; this module watches *how* they
compose at runtime.  Opt-in via ``REPRO_LOCKCHECK=1`` (the test suite's
``conftest.py`` hook), :func:`install` swaps a proxy ``threading`` module into
every already-imported ``repro.*`` module, so each ``threading.Lock()`` /
``RLock()`` they create becomes an :class:`InstrumentedLock`:

- every *blocking* acquire records a held→wanted edge in a global lock-order
  graph keyed by per-lock serial numbers (``id()`` is recycled by the
  allocator; serials never are).  A new edge that closes a cycle is a
  potential deadlock: thread 1 holds A wanting B while thread 2 can hold B
  wanting A.  Non-blocking (``acquire(False)``) probes cannot deadlock and
  record nothing.
- entering a blocking socket call (``accept``/``recv``/``sendall``/…, or
  ``socket.create_connection``) while holding any instrumented lock is
  reported, unless the lock's *creation site* is allowlisted —
  ``RemoteStore`` serializes its connection under its lock by design.

Locks are labeled by creation site (``file.py:Qualname``), so a report names
``client.py:RemoteStore.__init__`` rather than an opaque object id.
Violations accumulate in module state; :func:`report` snapshots them and
:func:`reset` clears between tests.  Everything here uses the *real*
``threading`` module — the detector never instruments itself.
"""

from __future__ import annotations

import itertools
import os
import socket as _socket_module
import sys
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = [
    "InstrumentedLock",
    "install",
    "uninstall",
    "installed",
    "reset",
    "report",
    "BLOCKING_ALLOWLIST",
    "ENV_VAR",
]

ENV_VAR = "REPRO_LOCKCHECK"

#: Lock creation sites (``file.py:Qualname``) allowed to be held across
#: blocking socket calls.  RemoteStore's connection lock exists precisely to
#: serialize request/response round-trips on one socket; HTTPStore's is the
#: same contract over ``http.client`` (one keep-alive connection cannot
#: interleave requests).
BLOCKING_ALLOWLIST = {
    "client.py:RemoteStore.__init__",
    "client.py:HTTPStore.__init__",
}

_SOCKET_METHODS = (
    "accept", "connect", "recv", "recv_into", "recvfrom", "send", "sendall",
    "sendmsg",
)

# -- global detector state (guarded by _state_lock; real threading only) -------
_state_lock = threading.Lock()
_serials = itertools.count(1)
_adjacency: Dict[int, Set[int]] = {}
_edges: Dict[Tuple[int, int], Dict[str, Any]] = {}
_cycles: List[Dict[str, Any]] = []
_blocking: List[Dict[str, Any]] = []
_blocking_seen: Set[Tuple[str, str]] = set()
_lock_count = 0

_held = threading.local()  # .stack: List[InstrumentedLock], per thread

_installed = False
_swapped_modules: List[Any] = []
_socket_originals: Dict[str, Any] = {}
_create_connection_original: Optional[Any] = None


def _held_stack() -> List["InstrumentedLock"]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def _creation_site() -> str:
    """``file.py:Qualname`` of the first caller frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        if os.path.basename(code.co_filename) != "lockcheck.py":
            qual = getattr(code, "co_qualname", code.co_name)
            return f"{os.path.basename(code.co_filename)}:{qual}"
        frame = frame.f_back
    return "<unknown>"


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` that reports its ordering to the graph."""

    def __init__(self, inner: Any, reentrant: bool = False) -> None:
        global _lock_count
        self._inner = inner
        self._reentrant = reentrant
        self.serial = next(_serials)
        self.site = _creation_site()
        with _state_lock:
            _lock_count += 1

    # -- lock protocol ---------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._record_intent()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _held_stack().append(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack = _held_stack()
        # Locks are not always released LIFO; drop the most recent entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<InstrumentedLock #{self.serial} from {self.site}>"

    # -- ordering graph --------------------------------------------------------
    def _record_intent(self) -> None:
        """Record held→self edges before blocking; report any cycle closed."""
        stack = _held_stack()
        if not stack:
            return
        if any(held.serial == self.serial for held in stack):
            return  # reentrant RLock acquire: no ordering information
        thread = threading.current_thread().name
        with _state_lock:
            for held in stack:
                key = (held.serial, self.serial)
                if key in _edges:
                    continue
                # Does a wanted→…→held path already exist?  Then some other
                # code path acquires these locks in the opposite order.
                path = _find_path(self.serial, held.serial)
                _edges[key] = {
                    "held": held.site,
                    "wanted": self.site,
                    "thread": thread,
                }
                _adjacency.setdefault(held.serial, set()).add(self.serial)
                if path is not None:
                    _cycles.append(
                        {
                            "kind": "lock-order-cycle",
                            "thread": thread,
                            "edge": f"{held.site} -> {self.site}",
                            "reverse_path": " -> ".join(
                                _edges.get((a, b), {}).get("wanted", "?")
                                for a, b in zip(path, path[1:])
                            )
                            or f"{self.site} -> {held.site}",
                            "locks": sorted({held.site, self.site}),
                        }
                    )


def _find_path(start: int, goal: int) -> Optional[List[int]]:
    """DFS in the edge graph; returns the serial path or ``None``.

    Caller holds ``_state_lock``.
    """
    if start == goal:
        return [start]
    seen = {start}
    stack: List[List[int]] = [[start]]
    while stack:
        path = stack.pop()
        for nxt in _adjacency.get(path[-1], ()):
            if nxt == goal:
                return path + [nxt]
            if nxt not in seen:
                seen.add(nxt)
                stack.append(path + [nxt])
    return None


def _check_blocking_call(what: str) -> None:
    stack = _held_stack()
    if not stack:
        return
    for held in stack:
        if held.site in BLOCKING_ALLOWLIST:
            continue
        key = (held.site, what)
        with _state_lock:
            if key in _blocking_seen:
                continue
            _blocking_seen.add(key)
            _blocking.append(
                {
                    "kind": "lock-held-blocking-call",
                    "lock": held.site,
                    "call": what,
                    "thread": threading.current_thread().name,
                }
            )


# -- the threading proxy -------------------------------------------------------
class _ThreadingProxy:
    """Stands in for the ``threading`` module inside ``repro.*`` modules.

    Everything delegates to the real module except ``Lock``/``RLock``, which
    return instrumented wrappers.
    """

    def Lock(self) -> InstrumentedLock:
        return InstrumentedLock(threading.Lock())

    def RLock(self) -> InstrumentedLock:
        return InstrumentedLock(threading.RLock(), reentrant=True)

    def __getattr__(self, name: str) -> Any:
        return getattr(threading, name)


def _socket_wrapper(name: str, original: Any):
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        _check_blocking_call(f"socket.{name}")
        return original(self, *args, **kwargs)

    wrapper.__name__ = name
    wrapper.__qualname__ = f"socket.{name}"
    return wrapper


def _patch_sockets() -> None:
    global _create_connection_original
    for name in _SOCKET_METHODS:
        original = getattr(_socket_module.socket, name, None)
        if original is None:
            continue
        # Remember whether the name lived on the Python subclass itself (so
        # uninstall restores it) or was inherited from the C base type (so
        # uninstall deletes the override).
        _socket_originals[name] = _socket_module.socket.__dict__.get(name)
        setattr(_socket_module.socket, name, _socket_wrapper(name, original))
    _create_connection_original = _socket_module.create_connection

    def create_connection(*args: Any, **kwargs: Any) -> Any:
        _check_blocking_call("socket.create_connection")
        assert _create_connection_original is not None
        return _create_connection_original(*args, **kwargs)

    _socket_module.create_connection = create_connection


def _unpatch_sockets() -> None:
    global _create_connection_original
    for name, original in _socket_originals.items():
        if original is not None:
            setattr(_socket_module.socket, name, original)
        else:
            try:
                delattr(_socket_module.socket, name)
            except AttributeError:
                pass
    _socket_originals.clear()
    if _create_connection_original is not None:
        _socket_module.create_connection = _create_connection_original
        _create_connection_original = None


# -- public API ----------------------------------------------------------------
def install() -> int:
    """Instrument every imported ``repro.*`` module; returns how many.

    Idempotent.  Modules imported *after* install keep the real ``threading``
    — call :func:`install` again to pick them up.  The devtools package
    itself is never instrumented.
    """
    global _installed
    proxy = _ThreadingProxy()
    swapped = 0
    for name, mod in list(sys.modules.items()):
        if mod is None or not (name == "repro" or name.startswith("repro.")):
            continue
        if name.startswith("repro.devtools"):
            continue
        if getattr(mod, "threading", None) is threading:
            setattr(mod, "threading", proxy)
            _swapped_modules.append(mod)
            swapped += 1
    if not _installed:
        _installed = True
        _patch_sockets()
    return swapped


def uninstall() -> None:
    """Restore the real ``threading`` module and socket methods."""
    global _installed
    for mod in _swapped_modules:
        setattr(mod, "threading", threading)
    _swapped_modules.clear()
    if _installed:
        _unpatch_sockets()
        _installed = False


def installed() -> bool:
    return _installed


def reset() -> None:
    """Clear the ordering graph and all recorded violations."""
    with _state_lock:
        _adjacency.clear()
        _edges.clear()
        _cycles.clear()
        _blocking.clear()
        _blocking_seen.clear()


def report() -> Dict[str, Any]:
    """Snapshot of the detector: violations plus graph statistics."""
    with _state_lock:
        return {
            "installed": _installed,
            "locks": _lock_count,
            "edges": len(_edges),
            "cycles": list(_cycles),
            "blocking": list(_blocking),
        }


def violations() -> List[Dict[str, Any]]:
    """All recorded violations (cycles first), empty when the suite is clean."""
    with _state_lock:
        return list(_cycles) + list(_blocking)
