"""Metrics hygiene: the scrape surface stays consistent as it grows.

Checked against every ``REGISTRY.counter/gauge/histogram(...)`` registration
and every ``counter_family``/``gauge_family`` snapshot helper call with a
literal name:

- names match ``repro_[a-z0-9_]*`` (one exposition namespace, Prometheus
  charset) and counters end in ``_total``;
- the same name is never registered with two different kinds or label sets
  anywhere in the project (the registry raises at runtime — this catches it
  before a daemon and a collector disagree at scrape time), and never
  registered twice *in the same module* even identically (copy-paste);
- ``.labels(...)`` calls on a module-level metric pass exactly the label
  names it was registered with — the runtime ``ValueError`` moved to lint
  time.

Names built dynamically (f-strings, variables) are out of static reach and
are skipped, not guessed at.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.devtools.lint import Context, Rule

__all__ = ["MetricsHygieneRule"]

_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_REGISTER_METHODS = {"counter", "gauge", "histogram"}
_FAMILY_HELPERS = {"counter_family": "counter", "gauge_family": "gauge"}


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _labelnames(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """The literal ``labelnames=`` tuple of a registration, if statically known.

    Returns ``()`` when the keyword is absent (the registry default) and
    ``None`` when it is present but not a literal.
    """
    for kw in call.keywords:
        if kw.arg != "labelnames":
            continue
        if isinstance(kw.value, (ast.Tuple, ast.List)):
            names = [_const_str(e) for e in kw.value.elts]
            if all(n is not None for n in names):
                return tuple(names)  # type: ignore[arg-type]
        return None
    return ()


class MetricsHygieneRule(Rule):
    id = "metrics-hygiene"
    help = (
        "repro_* metric naming, counter _total suffix, no conflicting "
        "registrations, .labels() keys match labelnames"
    )
    node_types = (ast.Call,)

    def __init__(self) -> None:
        #: name -> (kind, labelnames, relpath, line) of first registration
        self._registry: Dict[str, Tuple[str, Optional[Tuple[str, ...]], str, int]] = {}
        #: metric variable name -> labelnames, per module (reset per module)
        self._module_vars: Dict[str, Tuple[str, ...]] = {}
        self._deferred_labels: List[Tuple[ast.Call, str]] = []

    def start_module(self, ctx: Context) -> None:
        self._module_vars = {}
        self._deferred_labels = []

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _REGISTER_METHODS:
            self._check_registration(node, func.attr, ctx)
        elif isinstance(func, ast.Name) and func.id in _FAMILY_HELPERS:
            self._check_registration(node, _FAMILY_HELPERS[func.id], ctx, family=True)
        elif isinstance(func, ast.Attribute) and func.attr == "labels":
            target = func.value
            if isinstance(target, ast.Name):
                # Module-level assignment may appear after this call in source
                # order only in pathological cases; defer to finish_module so
                # every `_X = REGISTRY...` has been seen.
                self._deferred_labels.append((node, target.id))

    def finish_module(self, ctx: Context) -> None:
        for call, varname in self._deferred_labels:
            expected = self._module_vars.get(varname)
            if expected is None:
                continue  # not a metric we tracked statically
            if any(kw.arg is None for kw in call.keywords) or call.args:
                continue  # **kwargs / positional: not statically checkable
            got = tuple(sorted(kw.arg for kw in call.keywords))  # type: ignore[type-var]
            if got != tuple(sorted(expected)):
                ctx.report(
                    call,
                    f"'{varname}.labels({', '.join(got)})' does not match the "
                    f"registered labelnames {tuple(expected)}",
                )
        self._deferred_labels = []

    # -- helpers ---------------------------------------------------------------
    def _check_registration(
        self, node: ast.Call, kind: str, ctx: Context, family: bool = False
    ) -> None:
        assert ctx.module is not None
        name = _const_str(node.args[0]) if node.args else None
        if name is None:
            return  # dynamic name: out of static reach
        if not _NAME_RE.match(name):
            ctx.report(
                node,
                f"metric name '{name}' does not match repro_[a-z0-9_]* "
                f"(one exposition namespace, Prometheus charset)",
            )
        if kind == "counter" and not name.endswith("_total"):
            ctx.report(
                node,
                f"counter '{name}' must end in '_total' (Prometheus counter "
                f"naming convention)",
            )
        # Family helpers render at scrape time and carry labels per sample,
        # not a registered label set — they join the name/kind checks only.
        labels = None if family else _labelnames(node)
        prior = self._registry.get(name)
        if prior is None:
            self._registry[name] = (kind, labels, ctx.module.relpath, node.lineno)
        else:
            prior_kind, prior_labels, prior_path, prior_line = prior
            conflicting = prior_kind != kind or (
                labels is not None
                and prior_labels is not None
                and labels != prior_labels
            )
            if conflicting:
                ctx.report(
                    node,
                    f"metric '{name}' registered as {kind}{labels or ()} here "
                    f"but as {prior_kind}{prior_labels or ()} at "
                    f"{prior_path}:{prior_line}",
                )
            elif (
                not family
                and ctx.module.relpath == prior_path
                and node.lineno != prior_line
            ):
                ctx.report(
                    node,
                    f"metric '{name}' registered twice in this module "
                    f"(first at line {prior_line})",
                )
        # Track module-level `_VAR = REGISTRY.counter(...)` for .labels checks.
        if not family and labels:
            parent = ctx.module.parents.get(node)
            if isinstance(parent, ast.Assign):
                for target in parent.targets:
                    if isinstance(target, ast.Name):
                        self._module_vars[target.id] = labels
