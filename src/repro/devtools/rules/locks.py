"""Lock-discipline rule: ``# repro: guarded-by(_lock)`` declarations, enforced.

An attribute assignment annotated ``# repro: guarded-by(_lock)`` declares that
``self.<attr>`` may only be touched while ``self._lock`` is held.  The rule
then walks every method of the class tracking which locks are held —
``with self._lock:`` blocks acquire, nested ``def``/``lambda`` bodies *reset*
the held set (closures run later, on other threads) — and reports any guarded
access outside the lock.

Escapes, because real concurrent code has deliberate exceptions:

- ``__init__``/``__new__`` are exempt (the object is not shared yet);
- ``# repro: holds(_lock)`` on a ``def`` line asserts the *caller* holds the
  lock (the ``_locked`` suffix convention, made explicit);
- ``# repro: unlocked`` on an access line waives the rule once — for
  double-checked fast paths and benign racy reads, with the reason after
  ``--`` kept for the human reader.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set

from repro.devtools.lint import Context, ModuleInfo, Rule

__all__ = ["GuardedByRule"]


def _directive_in_range(
    module: ModuleInfo, lo: int, hi: int, name: str
) -> Optional[str]:
    """The directive's argument if ``name`` appears on any line in [lo, hi]."""
    for line in range(lo, hi + 1):
        found = module.directive(line, name)
        if found is not None:
            return found[1] or ""
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class GuardedByRule(Rule):
    id = "lock-guard"
    help = (
        "attributes declared '# repro: guarded-by(LOCK)' may only be accessed "
        "inside 'with self.LOCK'"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, ast.ClassDef)
        module = ctx.module
        assert module is not None
        guarded = self._collect_guarded(node, module)
        if not guarded:
            return
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in ("__init__", "__new__"):
                continue  # the object is not visible to other threads yet
            self._check(stmt, self._held_at_entry(stmt, module), guarded, module, ctx)

    # -- declaration collection ------------------------------------------------
    def _collect_guarded(
        self, cls: ast.ClassDef, module: ModuleInfo
    ) -> Dict[str, str]:
        """attr name -> lock attr name, from guarded-by directives in ``cls``."""
        guarded: Dict[str, str] = {}
        stack = [s for s in cls.body]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue  # nested classes declare (and are checked) separately
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                lock = _directive_in_range(
                    module, node.lineno, node.end_lineno or node.lineno, "guarded-by"
                )
                if lock:
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            guarded[attr] = lock
            stack.extend(ast.iter_child_nodes(node))
        return guarded

    def _held_at_entry(
        self, func: ast.AST, module: ModuleInfo
    ) -> FrozenSet[str]:
        """Locks the caller promises to hold (``# repro: holds(LOCK)``)."""
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        body_start = func.body[0].lineno if func.body else func.lineno
        arg = _directive_in_range(module, func.lineno, body_start - 1, "holds")
        if not arg:
            return frozenset()
        return frozenset(part.strip() for part in arg.split(",") if part.strip())

    # -- access checking -------------------------------------------------------
    def _check(
        self,
        node: ast.AST,
        held: FrozenSet[str],
        guarded: Dict[str, str],
        module: ModuleInfo,
        ctx: Context,
    ) -> None:
        if isinstance(node, ast.ClassDef):
            return  # handled by its own visit()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is a closure: it runs later, possibly on another
            # thread, so the enclosing with-block's locks do not apply.
            inner = self._held_at_entry(node, module)
            for dec in node.decorator_list:
                self._check(dec, held, guarded, module, ctx)
            for stmt in node.body:
                self._check(stmt, inner, guarded, module, ctx)
            return
        if isinstance(node, ast.Lambda):
            self._check(node.body, frozenset(), guarded, module, ctx)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                self._check(item.context_expr, held, guarded, module, ctx)
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    acquired.add(attr)
            inside = held | acquired
            for stmt in node.body:
                self._check(stmt, frozenset(inside), guarded, module, ctx)
            return
        attr = _self_attr(node)
        if attr is not None and attr in guarded:
            lock = guarded[attr]
            if lock not in held:
                line = getattr(node, "lineno", 1)
                if module.directive(line, "unlocked") is None:
                    ctx.report(
                        node,
                        f"'self.{attr}' is guarded by 'self.{lock}' but accessed "
                        f"without holding it (add 'with self.{lock}', a "
                        f"'# repro: holds({lock})' contract, or '# repro: unlocked')",
                    )
            # still recurse: self.a.b chains
        for child in ast.iter_child_nodes(node):
            self._check(child, held, guarded, module, ctx)
