"""Wire-protocol consistency: every op exists on all three sides.

The protocol module declares the op vocabulary (``WIRE_OPS = (...)``); this
rule — a pure ``finish_project`` rule, it needs every AST at once — then
cross-checks three things no single-file linter can see:

1. **Dispatch coverage** — every class that defines ``_dispatch`` and
   compares ``op`` against string literals must handle every declared op
   (and must not handle ops that were never declared).  Abstract bases whose
   ``_dispatch`` contains no op comparisons are skipped.
2. **Client coverage** — every declared op must be built somewhere as a
   ``{"op": "<name>"}`` request header literal.
3. **Error registration** — exceptions raised inside op handlers
   (``_dispatch`` / ``_op_*`` / ``_forward*``) must be types the protocol
   can transport: keys of the ``_ERROR_TYPES`` table or classes passed
   through ``register_error_type``.  Unregistered types degrade to the
   untyped ``RemoteError`` fallback client-side — legal, but never by
   accident.
4. **Gateway status coverage** — every registered error type must have an
   entry in the ``STATUS_BY_ERROR_TYPE`` table when the project declares
   one.  A typed backend error the gateway cannot map degrades to a
   generic 500, which hides client-vs-backend attribution from HTTP
   callers; registering a new wire error (``@register_error_type``) and
   forgetting the HTTP mapping is exactly the drift this catches.

The rule finds ``WIRE_OPS`` / ``_ERROR_TYPES`` / ``STATUS_BY_ERROR_TYPE``
by assignment name, not by file path, so golden fixtures (and a future
protocol v2 module) lint the same way the real tree does.  Projects
without a ``WIRE_OPS`` declaration are out of scope and produce no
findings; the gateway check is likewise skipped when no status table
exists.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.lint import Context, ModuleInfo, Rule

__all__ = ["WireProtocolRule"]

#: Raised-in-handler types that are fine without registration: abstract-method
#: markers and the client-side fallback itself.
_EXEMPT_RAISES = {"NotImplementedError", "AssertionError", "RemoteError"}

_HANDLER_PREFIXES = ("_op_", "_forward")


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _mentions_op(node: ast.AST) -> bool:
    """Whether a comparison side is the ``op`` variable (name or attribute)."""
    return (isinstance(node, ast.Name) and node.id == "op") or (
        isinstance(node, ast.Attribute) and node.attr == "op"
    )


class WireProtocolRule(Rule):
    id = "wire-protocol"
    help = (
        "every WIRE_OPS op needs a dispatch branch, a client request builder "
        "and registered error types; registered errors need a gateway status"
    )

    def finish_project(self, ctx: Context) -> None:
        declared = self._declared_ops(ctx)
        if declared is None:
            return
        ops_module, ops_node, ops = declared
        registered = self._registered_errors(ctx)
        client_ops = self._client_ops(ctx)

        for module in ctx.project:
            for cls in ast.walk(module.tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                dispatch = self._find_dispatch(cls)
                if dispatch is None:
                    continue
                handled = self._handled_ops(cls)
                if not handled:
                    continue  # abstract base: dispatch defined, ops elsewhere
                for op in sorted(ops - handled):
                    ctx.report(
                        dispatch,
                        f"wire op '{op}' is declared in WIRE_OPS but "
                        f"{cls.name}._dispatch has no branch for it",
                        module=module,
                    )
                for op in sorted(handled - ops):
                    ctx.report(
                        dispatch,
                        f"{cls.name}._dispatch handles op '{op}' which is not "
                        f"declared in WIRE_OPS",
                        module=module,
                    )
                self._check_raises(cls, registered, module, ctx)

        for op in sorted(ops - client_ops):
            ctx.report(
                ops_node,
                f"wire op '{op}' is declared in WIRE_OPS but no client builds "
                f'a {{"op": "{op}"}} request',
                module=ops_module,
            )
        for op in sorted(client_ops - ops):
            ctx.report(
                ops_node,
                f'a client builds a {{"op": "{op}"}} request but \'{op}\' is '
                f"not declared in WIRE_OPS",
                module=ops_module,
            )

        status = self._status_map(ctx)
        if status is not None:
            status_module, status_node, statuses = status
            for name in sorted(registered - statuses):
                ctx.report(
                    status_node,
                    f"error type '{name}' is registered for typed wire "
                    f"transport but has no STATUS_BY_ERROR_TYPE entry, so "
                    f"the gateway degrades it to a generic 500",
                    module=status_module,
                )

    # -- discovery -------------------------------------------------------------
    def _declared_ops(
        self, ctx: Context
    ) -> Optional[Tuple[ModuleInfo, ast.AST, Set[str]]]:
        for module in ctx.project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == "WIRE_OPS"
                    for t in node.targets
                ):
                    continue
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    ops = {
                        s for s in map(_const_str, node.value.elts) if s is not None
                    }
                    return module, node, ops
        return None

    def _registered_errors(self, ctx: Context) -> Set[str]:
        names: Set[str] = set()
        for module in ctx.project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "_ERROR_TYPES"
                    for t in node.targets
                ):
                    if isinstance(node.value, ast.Dict):
                        names.update(
                            s for s in map(_const_str, node.value.keys)
                            if s is not None
                        )
                elif isinstance(node, ast.ClassDef):
                    for dec in node.decorator_list:
                        if isinstance(dec, ast.Name) and dec.id == "register_error_type":
                            names.add(node.name)
                        elif (
                            isinstance(dec, ast.Attribute)
                            and dec.attr == "register_error_type"
                        ):
                            names.add(node.name)
                elif isinstance(node, ast.Call):
                    func = node.func
                    callee = (
                        func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None
                    )
                    if callee == "register_error_type" and node.args:
                        arg = node.args[0]
                        if isinstance(arg, ast.Name):
                            names.add(arg.id)
        return names

    def _status_map(
        self, ctx: Context
    ) -> Optional[Tuple[ModuleInfo, ast.AST, Set[str]]]:
        """The gateway's error-type -> HTTP status table, if the project has one."""
        for module in ctx.project:
            for node in ast.walk(module.tree):
                value = None
                if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "STATUS_BY_ERROR_TYPE"
                    for t in node.targets
                ):
                    value = node.value
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == "STATUS_BY_ERROR_TYPE"
                ):
                    value = node.value
                if isinstance(value, ast.Dict):
                    keys = {s for s in map(_const_str, value.keys) if s is not None}
                    return module, node, keys
        return None

    def _client_ops(self, ctx: Context) -> Set[str]:
        ops: Set[str] = set()
        for module in ctx.project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Dict):
                    continue
                for key, value in zip(node.keys, node.values):
                    if key is not None and _const_str(key) == "op":
                        op = _const_str(value)
                        if op is not None:
                            ops.add(op)
        return ops

    # -- per-dispatcher checks -------------------------------------------------
    @staticmethod
    def _find_dispatch(cls: ast.ClassDef) -> Optional[ast.AST]:
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "_dispatch"
            ):
                return stmt
        return None

    def _handled_ops(self, cls: ast.ClassDef) -> Set[str]:
        """String literals compared against ``op`` anywhere in the class."""
        handled: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            if not any(_mentions_op(side) for side in sides):
                continue
            for side, op in zip(node.comparators, node.ops):
                if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                    side, (ast.Tuple, ast.List, ast.Set)
                ):
                    handled.update(
                        s for s in map(_const_str, side.elts) if s is not None
                    )
            for side in sides:
                s = _const_str(side)
                if s is not None:
                    handled.add(s)
        return handled

    def _check_raises(
        self,
        cls: ast.ClassDef,
        registered: Set[str],
        module: ModuleInfo,
        ctx: Context,
    ) -> None:
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name != "_dispatch" and not stmt.name.startswith(
                _HANDLER_PREFIXES
            ):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Call) and isinstance(exc.func, ast.Attribute):
                    name = exc.func.attr
                if (
                    name is None  # bare re-raise or raise of a variable
                    or name in registered
                    or name in _EXEMPT_RAISES
                ):
                    continue
                ctx.report(
                    node,
                    f"{cls.name}.{stmt.name} raises {name}, which is not "
                    f"registered for typed wire transport "
                    f"(register_error_type / _ERROR_TYPES)",
                    module=module,
                )
