"""Built-in lint rules, one module per concern.

``default_rules()`` is the canonical rule set run by ``repro lint``; the
engine takes any sequence of :class:`repro.devtools.lint.Rule` instances, so
tests (and future PRs) can run subsets or add project rules without touching
the engine.
"""

from __future__ import annotations

from typing import List

from repro.devtools.lint import Rule
from repro.devtools.rules.hygiene import (
    BareExceptRule,
    DeprecatedApiRule,
    MutableDefaultRule,
    UnclosedResourceRule,
)
from repro.devtools.rules.locks import GuardedByRule
from repro.devtools.rules.metrics import MetricsHygieneRule
from repro.devtools.rules.wire import WireProtocolRule

__all__ = [
    "default_rules",
    "GuardedByRule",
    "WireProtocolRule",
    "MetricsHygieneRule",
    "BareExceptRule",
    "MutableDefaultRule",
    "DeprecatedApiRule",
    "UnclosedResourceRule",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule (rules keep per-run state)."""
    return [
        GuardedByRule(),
        WireProtocolRule(),
        MetricsHygieneRule(),
        BareExceptRule(),
        MutableDefaultRule(),
        DeprecatedApiRule(),
        UnclosedResourceRule(),
    ]
