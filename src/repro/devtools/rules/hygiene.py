"""API-hygiene rules: small, single-module checks with near-zero false positives.

- ``bare-except``: ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``
  and hides daemon shutdown bugs; catch ``Exception`` (and say why).
- ``mutable-default``: ``def f(x=[])`` / ``={}`` / ``=set()`` — the default is
  shared across calls.
- ``deprecated-api``: the pre-PR 2 surface — ``relative=`` on compress-side
  calls (replaced by :class:`repro.api.ErrorBound` modes) and ``.read_level``
  (replaced by lazy views).  Internal adapters keep them alive deliberately
  and carry ``# repro: ignore[deprecated-api]``.
- ``unclosed-resource``: ``open``/``mmap.mmap``/``socket.socket``/
  ``socket.create_connection`` results that provably leak.  Deliberately
  conservative: a resource assigned to ``self.<attr>`` (ownership moved to
  the object), returned, passed to any call, ``.close()``d anywhere in the
  same function, or created inside a ``with`` item never reports — only the
  bind-and-forget shape does.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.devtools.lint import Context, Rule

__all__ = [
    "BareExceptRule",
    "MutableDefaultRule",
    "DeprecatedApiRule",
    "UnclosedResourceRule",
]


class BareExceptRule(Rule):
    id = "bare-except"
    help = "'except:' also catches KeyboardInterrupt/SystemExit; name the type"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(
                node,
                "bare 'except:' catches KeyboardInterrupt and SystemExit; "
                "use 'except Exception:' (or narrower)",
            )


class MutableDefaultRule(Rule):
    id = "mutable-default"
    help = "mutable default arguments are shared across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                       ast.DictComp, ast.SetComp))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            ):
                bad = True
            if bad:
                name = getattr(node, "name", "<lambda>")
                ctx.report(
                    default,
                    f"mutable default argument in '{name}' is shared across "
                    f"calls; default to None and create inside",
                )


class DeprecatedApiRule(Rule):
    id = "deprecated-api"
    help = "pre-PR 2 surface: relative= on compress calls, .read_level()"

    node_types = (ast.Call,)

    #: Callables whose ``relative=`` keyword is the deprecated error-bound
    #: spelling (ErrorBound.rel replaced it); restricting by callee name keeps
    #: unrelated ``relative=`` kwargs (e.g. path helpers) out of scope.
    _RELATIVE_CALLEES = {"compress", "append", "run_workflow", "compress_hierarchy",
                         "roundtrip"}

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        callee = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if callee == "read_level":
            ctx.report(
                node,
                "'.read_level()' is the deprecated eager-read surface; use a "
                "lazy view (store.array / container view) instead",
            )
            return
        if callee in self._RELATIVE_CALLEES:
            for kw in node.keywords:
                if kw.arg == "relative":
                    ctx.report(
                        kw.value,
                        f"'relative=' on {callee}() is the deprecated "
                        f"error-bound spelling; pass an "
                        f"ErrorBound (e.g. ErrorBound.rel(...))",
                    )


class UnclosedResourceRule(Rule):
    id = "unclosed-resource"
    help = "open/mmap/socket results must reach a with, a close, or a new owner"

    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        acquisitions: Dict[str, List[ast.Assign]] = {}
        closed: Set[str] = set()
        escaped: Set[str] = set()

        for sub in self._walk_shallow(node):
            if isinstance(sub, ast.Assign) and self._creates_resource(sub.value):
                for target in sub.targets:
                    # A Name target is tracked; self._fh = open(...) moves
                    # ownership to the object, whose close story is its own.
                    if isinstance(target, ast.Name):
                        acquisitions.setdefault(target.id, []).append(sub)
            elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Name):
                # `self._listener = listener` (or any alias) moves ownership.
                escaped.add(sub.value.id)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("close", "shutdown", "detach")
                    and isinstance(func.value, ast.Name)
                ):
                    closed.add(func.value.id)
                # A resource passed to any call transfers ownership (wrapped
                # in a file object, registered for cleanup, handed to a
                # reader): out of this rule's scope.
                for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            elif isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name):
                escaped.add(sub.value.id)
            elif isinstance(sub, (ast.Tuple, ast.List, ast.Dict)):
                # A resource stored into any container escapes to that
                # container's owner.
                for elt in ast.walk(sub):
                    if isinstance(elt, ast.Name):
                        escaped.add(elt.id)

        for name, assigns in acquisitions.items():
            if name in closed or name in escaped:
                continue
            for assign in assigns:
                ctx.report(
                    assign,
                    f"'{name}' holds an open resource that is never closed in "
                    f"'{node.name}': use 'with', close in 'finally', or hand "
                    f"it to an owner",
                )

    @staticmethod
    def _walk_shallow(func: ast.AST):
        """Walk a function body without descending into nested defs/lambdas
        (they are visited as their own functions) or nested classes."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    _RESOURCE_CALLS = {
        ("open",),
        ("mmap", "mmap"),
        ("socket", "socket"),
        ("socket", "create_connection"),
    }

    def _creates_resource(self, node: Optional[ast.AST]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return (func.id,) in self._RESOURCE_CALLS
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return (func.value.id, func.attr) in self._RESOURCE_CALLS
        return False
