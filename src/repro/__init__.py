"""Reproduction of the SC'24 paper.

"A High-Quality Workflow for Multi-Resolution Scientific Data Reduction and
Visualization" (Wang et al., SC 2024).

The package is organised as a set of substrates (error-bounded lossy
compressors, an AMR data model, synthetic dataset generators, analysis
metrics, an in-situ pipeline, a block-indexed compressed store) plus the
paper's contributions layered on top (ROI-based uniform-to-adaptive
conversion, SZ3MR, error-bounded Bezier post-processing, and
compression-uncertainty modelling for probabilistic isosurface
visualization).

Most users only need :mod:`repro.api` — the typed, config-driven facade —
whose essentials are re-exported here::

    import repro

    result = repro.run_workflow(field, repro.WorkflowConfig(
        codec=repro.CodecSpec.sz3mr(),
        error_bound=repro.ErrorBound.rel(0.01),
    ))
    store = repro.open_store("run_dir")

plus :mod:`repro.datasets` for synthetic stand-ins of the paper's datasets.
Configs serialise to JSON (``to_dict`` / ``from_dict``) and replay from the
command line via ``repro run config.json``; see :func:`describe` for the
full surface.
"""

from __future__ import annotations

import importlib
import logging

from repro._version import __version__

# Library logging contract: repro modules emit records (the serve daemon's
# access log, slow-request warnings) but never configure handlers on import;
# the NullHandler silences the "no handlers found" complaint for apps that
# don't opt in via repro.obs.configure_logging().
logging.getLogger("repro").addHandler(logging.NullHandler())

#: facade names re-exported from repro.api, resolved on first access so that
#: importing a submodule (e.g. repro.compressors) never drags in the world.
_API_EXPORTS = (
    "ErrorBound",
    "CodecSpec",
    "WorkflowConfig",
    "PipelineConfig",
    "Pipeline",
    "compress",
    "decompress",
    "open_store",
    "open_array",
    "connect",
    "open_http",
    "run_workflow",
    "run_config",
    "load_config",
)

__all__ = ["__version__", "describe", *_API_EXPORTS]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        value = getattr(importlib.import_module("repro.api"), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))


def describe() -> str:
    """One-paragraph tour of the public surface (printed by ``repro --version``-adjacent tooling)."""
    return (
        f"repro {__version__} — multi-resolution scientific data reduction (SC'24 reproduction).\n"
        "Public API (repro.api, re-exported at the package root):\n"
        "  ErrorBound            abs / rel / ptw_rel / psnr error-bound spec\n"
        "  CodecSpec             declarative codec + blocking configuration\n"
        "  WorkflowConfig        one offline Fig. 3 workflow run (JSON round-trip)\n"
        "  PipelineConfig        one in-situ run: source -> compress -> sink\n"
        "  Pipeline              composable source -> roi/filter -> compress -> sink builder\n"
        "  compress/decompress   single-array codec round trip\n"
        "  open_store            block-indexed random-access store (repro.store)\n"
        "  open_array            lazy NumPy-style view over a .rps2 container (repro.array)\n"
        "  connect               remote lazy views via a read daemon (repro.serve)\n"
        "  open_http             the same lazy views over an HTTP gateway (repro.gateway)\n"
        "  run_workflow          execute a WorkflowConfig on an array or hierarchy\n"
        "  run_config            execute a serialized config (the `repro run` engine)\n"
        "CLI: repro compress|decompress|info|evaluate|store ls|get|roi|read|run|serve|shard|gateway|stats\n"
    )
