"""Reproduction of the SC'24 paper.

"A High-Quality Workflow for Multi-Resolution Scientific Data Reduction and
Visualization" (Wang et al., SC 2024).

The package is organised as a set of substrates (error-bounded lossy
compressors, an AMR data model, synthetic dataset generators, analysis
metrics, an in-situ pipeline) plus the paper's contributions layered on top
(ROI-based uniform-to-adaptive conversion, SZ3MR, error-bounded Bezier
post-processing, and compression-uncertainty modelling for probabilistic
isosurface visualization).

Most users only need :mod:`repro.core.workflow`, which exposes the
end-to-end :class:`~repro.core.workflow.MultiResolutionWorkflow` facade, and
:mod:`repro.datasets` for synthetic stand-ins of the paper's datasets.
"""

from repro._version import __version__

__all__ = ["__version__"]
