"""Deterministic isosurface extraction.

Isosurfaces are extracted as the set of grid cells crossed by the isovalue
plus the edge-crossing point cloud (linear interpolation along every grid edge
whose endpoints straddle the isovalue).  This is the information marching
cubes triangulates; for quantitative comparison of original vs decompressed
isosurfaces (Figs. 14 and 16) the crossing cells and points are sufficient and
fully vectorise in NumPy.

Fields may be eager ndarrays or lazy :class:`repro.array.CompressedArray`
views: isosurface extraction is a global stencil, so a view is materialised
once up front (``numpy.asarray``), but callers restricting the search to an
ROI should slice the view first — ``cell_crossings(arr[lo:hi, ...], c)``
decodes only that region's blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["cell_crossings", "isosurface_cell_count", "extract_isosurface_points"]


def cell_crossings(field: np.ndarray, isovalue: float) -> np.ndarray:
    """Boolean array marking grid cells crossed by the isosurface.

    A cell (the dual cube spanned by ``2^d`` neighbouring vertices) is crossed
    when its corner values are not all on the same side of the isovalue.
    The output shape is ``field.shape - 1`` along every axis.
    """
    data = np.asarray(field, dtype=np.float64)
    if data.ndim not in (2, 3):
        raise ValueError("cell_crossings expects a 2-D or 3-D field")
    above = data > isovalue

    # Reduce "all corners above" / "all corners below" over each axis in turn.
    all_above = above
    all_below = ~above
    for axis in range(data.ndim):
        lo = [slice(None)] * data.ndim
        hi = [slice(None)] * data.ndim
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        all_above = all_above[tuple(lo)] & all_above[tuple(hi)]
        all_below = all_below[tuple(lo)] & all_below[tuple(hi)]
    return ~(all_above | all_below)


def isosurface_cell_count(field: np.ndarray, isovalue: float) -> int:
    """Number of cells crossed by the isosurface (a size proxy for the surface)."""
    return int(cell_crossings(field, isovalue).sum())


def extract_isosurface_points(field: np.ndarray, isovalue: float) -> np.ndarray:
    """Edge-crossing points of the isosurface as an ``(n_points, ndim)`` array.

    For every grid edge whose endpoint values straddle the isovalue the
    crossing position is computed by linear interpolation.  The union over the
    three edge directions is the vertex set marching cubes would use.
    """
    data = np.asarray(field, dtype=np.float64)
    if data.ndim not in (2, 3):
        raise ValueError("extract_isosurface_points expects a 2-D or 3-D field")
    points = []
    for axis in range(data.ndim):
        lo = [slice(None)] * data.ndim
        hi = [slice(None)] * data.ndim
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        a = data[tuple(lo)]
        b = data[tuple(hi)]
        crossed = (a - isovalue) * (b - isovalue) < 0
        if not crossed.any():
            continue
        idx = np.argwhere(crossed).astype(np.float64)
        a_vals = a[crossed]
        b_vals = b[crossed]
        t = (isovalue - a_vals) / (b_vals - a_vals)
        coords = idx.copy()
        coords[:, axis] += t
        points.append(coords)
        # Exact hits on grid vertices (a == isovalue) are counted once.
        exact = a == isovalue
        if exact.any():
            points.append(np.argwhere(exact).astype(np.float64))
    if not points:
        return np.zeros((0, data.ndim), dtype=np.float64)
    return np.concatenate(points, axis=0)
