"""Visualization-oriented utilities: slicing, isosurfaces and uncertainty.

The paper's figures are rendered with VTK-m / ParaView, which are not
available offline; this subpackage provides the quantitative equivalents the
benchmarks compare instead: 2-D slice extraction (for SSIM of "visualizations"),
isosurface extraction as edge-crossing point clouds, and the probabilistic
marching cubes cell-crossing probabilities used for the uncertainty study
(Fig. 14).

All helpers consume lazy :class:`repro.array.CompressedArray` views as well
as ndarrays; :func:`extract_slice` indexes views in place so a slice decodes
only the blocks its plane crosses.
"""

from repro.vis.isosurface import (
    cell_crossings,
    extract_isosurface_points,
    isosurface_cell_count,
)
from repro.vis.probabilistic_mc import (
    crossing_probability,
    crossing_probability_monte_carlo,
    feature_recovery,
)
from repro.vis.slicing import extract_slice, normalize_for_display, render_slice_rgb

__all__ = [
    "cell_crossings",
    "extract_isosurface_points",
    "isosurface_cell_count",
    "crossing_probability",
    "crossing_probability_monte_carlo",
    "feature_recovery",
    "extract_slice",
    "normalize_for_display",
    "render_slice_rgb",
]
