"""2-D slice extraction and simple rasterisation.

The paper compares "visualizations" (2-D slices and iso-surface renderings) of
original vs decompressed data with SSIM/PSNR.  Rendering engines are not
available offline, so the slice itself (optionally mapped through a warm/cool
colormap to an RGB image array) is used as the visualization surrogate — the
SSIM of the slice tracks the SSIM of the rendered image very closely because
the colormap is monotonic.

Every helper accepts a lazy :class:`repro.array.CompressedArray` view in place
of an ndarray; :func:`extract_slice` in particular indexes the view directly,
so slicing a stored timestep decodes only the one plane of blocks the slice
crosses — the slice-viewer access pattern the block store exists for.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["extract_slice", "normalize_for_display", "render_slice_rgb", "zoom_region"]


def extract_slice(volume, axis: int = 2, position: float | int = 0.5) -> np.ndarray:
    """Extract a 2-D slice from a 3-D volume (eager array or lazy view).

    ``position`` is either an integer index or a float fraction in [0, 1]
    along ``axis``.  A lazy view is indexed in place, decoding only the blocks
    the slice plane intersects.
    """
    # Imported lazily: repro.array sits above the store (which reaches repro.vis
    # through repro.core), so a module-level import would be circular.
    from repro.array import CompressedArray

    lazy = isinstance(volume, CompressedArray)
    vol = volume if lazy else np.asarray(volume, dtype=np.float64)
    if vol.ndim != 3:
        raise ValueError("extract_slice expects a 3-D volume")
    axis = int(axis) % 3
    n = vol.shape[axis]
    if isinstance(position, float) and 0.0 <= position <= 1.0:
        index = int(round(position * (n - 1)))
    else:
        index = int(position)
    if not 0 <= index < n:
        raise IndexError(f"slice index {index} out of range for axis {axis} with size {n}")
    if lazy:
        selector = [slice(None)] * 3
        selector[axis] = index
        return vol[tuple(selector)]
    return np.take(vol, index, axis=axis)


def normalize_for_display(
    image: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
    log_scale: bool = False,
) -> np.ndarray:
    """Map values to [0, 1] for display (optionally on a log scale).

    When comparing original and decompressed slices the caller should pass the
    original's vmin/vmax for both so the normalisation does not hide errors.
    """
    img = np.asarray(image, dtype=np.float64)
    if log_scale:
        img = np.log10(np.clip(img, 1e-12, None))
    lo = float(img.min()) if vmin is None else float(vmin)
    hi = float(img.max()) if vmax is None else float(vmax)
    if log_scale and vmin is not None:
        lo = np.log10(max(vmin, 1e-12))
    if log_scale and vmax is not None:
        hi = np.log10(max(vmax, 1e-12))
    if hi <= lo:
        return np.zeros_like(img)
    return np.clip((img - lo) / (hi - lo), 0.0, 1.0)


# A compact warm/cool colormap (blue -> white -> red), evaluated by linear
# interpolation; "warmer colors indicate higher values" as in Fig. 5.
_COOLWARM_STOPS = np.array(
    [
        [0.23, 0.30, 0.75],
        [0.55, 0.69, 0.99],
        [0.87, 0.87, 0.87],
        [0.96, 0.60, 0.49],
        [0.71, 0.02, 0.15],
    ]
)


def render_slice_rgb(image: np.ndarray, vmin: float | None = None, vmax: float | None = None) -> np.ndarray:
    """Map a 2-D scalar slice to an RGB array in [0, 1] with a warm/cool colormap."""
    norm = normalize_for_display(image, vmin=vmin, vmax=vmax)
    positions = np.linspace(0.0, 1.0, _COOLWARM_STOPS.shape[0])
    rgb = np.empty(norm.shape + (3,), dtype=np.float64)
    for channel in range(3):
        rgb[..., channel] = np.interp(norm, positions, _COOLWARM_STOPS[:, channel])
    return rgb


def zoom_region(image: np.ndarray, zoom: float = 1.5, centre: Tuple[float, float] = (0.5, 0.5)) -> np.ndarray:
    """Crop the central ``1/zoom`` fraction of a 2-D image (the paper's "1.5x zoom in")."""
    img = np.asarray(image)
    if img.ndim < 2:
        raise ValueError("zoom_region expects a 2-D image")
    if zoom < 1.0:
        raise ValueError("zoom must be >= 1")
    out_slices = []
    for axis in range(2):
        n = img.shape[axis]
        span = int(round(n / zoom))
        span = max(1, min(n, span))
        centre_idx = int(round(centre[axis] * (n - 1)))
        start = int(np.clip(centre_idx - span // 2, 0, n - span))
        out_slices.append(slice(start, start + span))
    return img[tuple(out_slices)]
