"""Probabilistic marching cubes for compression-induced uncertainty (Fig. 14).

Following Pöthkow et al. and Athawale et al., per-voxel uncertainty is modelled
as an independent normal distribution; the probability that a grid cell is
crossed by the isosurface is

    P(cross) = 1 - P(all corners > c) - P(all corners < c)
             = 1 - prod_i (1 - Phi_i) - prod_i Phi_i,

with ``Phi_i`` the CDF of corner ``i`` evaluated at the isovalue ``c``.  The
closed form is fully vectorised; a Monte-Carlo estimator is provided for
validation (and for future non-parametric models).

``mean_field`` (and ``decompressed`` in :func:`feature_recovery`) may be a
lazy :class:`repro.array.CompressedArray` view — e.g. ``store[field, step]``
or its ROI slice — which is materialised once via ``numpy.asarray``; slice
the view before passing it to keep the decode footprint to the region under
study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np
from scipy.special import ndtr

from repro.utils.rng import default_rng
from repro.vis.isosurface import cell_crossings

__all__ = [
    "crossing_probability",
    "crossing_probability_monte_carlo",
    "feature_recovery",
    "FeatureRecovery",
]


def _corner_products(prob_below: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Products of P(below) and P(above) over the 2^d corners of every cell."""
    prob_above = 1.0 - prob_below
    all_below = prob_below
    all_above = prob_above
    ndim = prob_below.ndim
    for axis in range(ndim):
        lo = [slice(None)] * ndim
        hi = [slice(None)] * ndim
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        all_below = all_below[tuple(lo)] * all_below[tuple(hi)]
        all_above = all_above[tuple(lo)] * all_above[tuple(hi)]
    return all_below, all_above


def crossing_probability(
    mean_field: np.ndarray,
    std_field: Union[np.ndarray, float],
    isovalue: float,
) -> np.ndarray:
    """Per-cell probability that the isosurface crosses the cell.

    Parameters
    ----------
    mean_field:
        Mean of the per-voxel normal model (for compressed data: the
        decompressed values, optionally bias-corrected by the sampled mean
        error).
    std_field:
        Per-voxel standard deviation (scalar or array), e.g. the
        isovalue-conditioned compression-error spread estimated by
        :class:`repro.core.uncertainty.CompressionUncertaintyModel`.
    isovalue:
        Isovalue of interest.

    Returns
    -------
    numpy.ndarray
        Probability array of shape ``mean_field.shape - 1`` per axis.
    """
    mu = np.asarray(mean_field, dtype=np.float64)
    if mu.ndim not in (2, 3):
        raise ValueError("crossing_probability expects a 2-D or 3-D field")
    sigma = np.broadcast_to(np.asarray(std_field, dtype=np.float64), mu.shape)
    if (sigma < 0).any():
        raise ValueError("standard deviations must be non-negative")

    # P(value < isovalue) per voxel; degenerate sigma=0 falls back to a step.
    with np.errstate(divide="ignore", invalid="ignore"):
        z = (isovalue - mu) / sigma
    prob_below = np.where(sigma > 0, ndtr(z), (mu < isovalue).astype(np.float64))

    all_below, all_above = _corner_products(prob_below)
    prob_cross = 1.0 - all_below - all_above
    return np.clip(prob_cross, 0.0, 1.0)


def crossing_probability_monte_carlo(
    mean_field: np.ndarray,
    std_field: Union[np.ndarray, float],
    isovalue: float,
    n_samples: int = 64,
    seed: Union[int, str, None] = "pmc-monte-carlo",
) -> np.ndarray:
    """Monte-Carlo estimate of :func:`crossing_probability` (used for validation)."""
    mu = np.asarray(mean_field, dtype=np.float64)
    sigma = np.broadcast_to(np.asarray(std_field, dtype=np.float64), mu.shape)
    rng = default_rng(seed)
    counts = np.zeros(tuple(s - 1 for s in mu.shape), dtype=np.int64)
    for _ in range(int(n_samples)):
        sample = mu + sigma * rng.standard_normal(mu.shape)
        counts += cell_crossings(sample, isovalue)
    return counts / float(n_samples)


@dataclass
class FeatureRecovery:
    """Outcome of the Fig. 14 analysis.

    ``missing_cells`` are cells crossed by the original isosurface but not by
    the decompressed one (features pruned by compression); ``recovered_cells``
    are the missing cells whose probabilistic crossing probability exceeds the
    threshold, i.e. features the uncertainty visualization makes visible again.
    """

    isovalue: float
    probability_threshold: float
    original_cells: int
    decompressed_cells: int
    missing_cells: int
    recovered_cells: int
    spurious_cells: int

    @property
    def recovery_rate(self) -> float:
        """Fraction of compression-pruned isosurface cells flagged by the uncertainty map."""
        if self.missing_cells == 0:
            return 1.0
        return self.recovered_cells / self.missing_cells


def feature_recovery(
    original: np.ndarray,
    decompressed: np.ndarray,
    std_field: Union[np.ndarray, float],
    isovalue: float,
    probability_threshold: float = 0.05,
) -> FeatureRecovery:
    """Quantify how much lost isosurface the uncertainty visualization recovers.

    This is the quantitative counterpart of Fig. 14: the cyan/green boxes mark
    isosurface pieces missing from the decompressed rendering, and the red
    probability cloud recovers their potential presence.
    """
    orig_cross = cell_crossings(original, isovalue)
    deco_cross = cell_crossings(decompressed, isovalue)
    prob = crossing_probability(decompressed, std_field, isovalue)

    missing = orig_cross & ~deco_cross
    recovered = missing & (prob >= probability_threshold)
    spurious = deco_cross & ~orig_cross
    return FeatureRecovery(
        isovalue=float(isovalue),
        probability_threshold=float(probability_threshold),
        original_cells=int(orig_cross.sum()),
        decompressed_cells=int(deco_cross.sum()),
        missing_cells=int(missing.sum()),
        recovered_cells=int(recovered.sum()),
        spurious_cells=int(spurious.sum()),
    )
