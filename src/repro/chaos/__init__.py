"""``repro.chaos`` — deterministic fault injection for the serving cluster.

A :class:`ChaosProxy` is a tiny TCP proxy that sits between a router and one
shard daemon and injects transport faults *per connection* from a scripted,
seeded schedule: refuse the connection, accept and hang, disconnect
mid-frame, corrupt bytes in flight, or delay traffic.  Because the schedule
is a pure function of ``(seed, connection index)``, a chaos run replays
exactly — the fault a connection suffers does not depend on timing — which
is what lets the chaos test tier assert hard properties ("every read is
bit-identical or a typed error, never a hang") instead of probabilities.

::

    schedule = ChaosSchedule.random("chaos-0", weights={"pass": 6, "corrupt": 1})
    with ChaosProxy(shard_addr, schedule=schedule) as proxy:
        # topology points the router at proxy.address instead of shard_addr
        ...

``repro chaos LISTEN UPSTREAM`` runs one from the command line (the
chaos-smoke CI job fronts a shard with it and kills the shard mid-read).
"""

from repro.chaos.proxy import FAULTS, ChaosProxy, ChaosSchedule

__all__ = ["ChaosProxy", "ChaosSchedule", "FAULTS"]
