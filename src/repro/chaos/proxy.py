"""The chaos proxy: scripted transport faults between two sockets.

One proxy fronts one upstream address.  Every accepted connection is
assigned a fault by the :class:`ChaosSchedule` — indexed by the order
connections arrive, never by wall time — and then served by a pair of pump
threads relaying bytes in both directions, with the fault applied to the
upstream→client direction (where response frames, the bytes under test,
travel):

``pass``
    Plain relay; the connection behaves like the upstream.
``refuse``
    The accepted connection is closed abortively at once (``SO_LINGER`` 0,
    so the client sees a reset — the closest a bound listener gets to a
    refused dial).
``hang``
    Accepted, then silence: nothing is read, nothing forwarded.  The
    client's socket timeout is the only way out — exactly the pathology
    request deadlines exist for.
``disconnect``
    Relay until a seeded byte budget runs out — inside the first response
    frame — then abort both sides, leaving the client mid-frame.
``corrupt``
    Relay with one byte XOR-flipped at a seeded offset of the response
    stream.  The payload checksum (or JSON header parse) turns this into a
    typed :class:`~repro.serve.protocol.ProtocolError` client-side; the
    router treats it as transport failure and fails over.
``delay``
    A seeded sleep before the response bytes start flowing, then plain
    relay — enough to trip tight deadlines without holding sockets forever.

The proxy is deliberately dumb about the wire protocol: it counts bytes,
not frames, so it also exercises every parser path downstream of a hostile
network.  All socket I/O happens outside the proxy's lock (the lock guards
only counters and the connection registry), so it runs clean under
``REPRO_LOCKCHECK=1``.
"""

from __future__ import annotations

import dataclasses
import logging
import socket
import struct
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import access_extra
from repro.serve.daemon import parse_address
from repro.utils.rng import default_rng

__all__ = ["FAULTS", "ChaosSchedule", "ChaosProxy"]

log = logging.getLogger("repro.chaos.proxy")

#: Fault vocabulary, in the order weights/scripts name them.
FAULTS = ("pass", "refuse", "hang", "disconnect", "corrupt", "delay")

#: Relay chunk size.  Small enough that mid-frame cuts and byte corruption
#: land at precise seeded offsets even for multi-chunk responses.
_CHUNK = 4096

#: Abortive close: linger on, timeout 0 -> RST instead of FIN.
_ABORT = struct.pack("ii", 1, 0)


@dataclasses.dataclass(frozen=True)
class _Plan:
    """One connection's resolved fault: what to do and exactly where."""

    fault: str
    cut_after: int = 0  # disconnect: response bytes relayed before the cut
    corrupt_at: int = 0  # corrupt: response byte offset to flip
    delay: float = 0.0  # delay: seconds before response bytes flow


class ChaosSchedule:
    """Deterministic fault-per-connection assignment.

    Two constructions:

    * ``ChaosSchedule(["pass", "corrupt", ...])`` — a literal script,
      applied to connections in arrival order and repeated cyclically.
    * ``ChaosSchedule.random(seed, weights={...})`` — the fault for
      connection ``n`` is drawn from ``default_rng(f"{seed}:conn:{n}")``
      with the given integer weights, so any connection's fate can be
      recomputed without replaying the run.

    Byte offsets (where to cut, which byte to flip) and delays draw from
    the same per-connection stream, so the *entire* fault is a function of
    ``(seed, n)``.
    """

    def __init__(
        self,
        script: Sequence[str],
        seed: Union[int, str] = "chaos-0",
        max_offset: int = 512,
        delay: float = 0.05,
    ) -> None:
        faults = [str(f) for f in script]
        unknown = sorted(set(faults) - set(FAULTS))
        if unknown:
            raise ValueError(f"unknown chaos faults {unknown}; choose from {FAULTS}")
        if not faults:
            raise ValueError("a chaos script needs at least one fault")
        self.script: Tuple[str, ...] = tuple(faults)
        self.seed = seed
        self.max_offset = max(1, int(max_offset))
        self.delay = float(delay)
        self._weights: Optional[Dict[str, int]] = None

    @classmethod
    def random(
        cls,
        seed: Union[int, str],
        weights: Optional[Mapping[str, int]] = None,
        max_offset: int = 512,
        delay: float = 0.05,
    ) -> "ChaosSchedule":
        """A seeded draw per connection instead of a fixed cycle."""
        weights = dict(weights or {"pass": 4, "corrupt": 1, "disconnect": 1})
        unknown = sorted(set(weights) - set(FAULTS))
        if unknown:
            raise ValueError(f"unknown chaos faults {unknown}; choose from {FAULTS}")
        if not weights or all(w <= 0 for w in weights.values()):
            raise ValueError("chaos weights need at least one positive entry")
        out = cls(list(weights), seed=seed, max_offset=max_offset, delay=delay)
        out._weights = weights
        return out

    def plan(self, n: int) -> _Plan:
        """The fault plan for connection index ``n`` (0-based, arrival order)."""
        rng = default_rng(f"{self.seed}:conn:{int(n)}")
        if self._weights is not None:
            names = sorted(self._weights)
            totals = [max(0, int(self._weights[name])) for name in names]
            pick = int(rng.integers(0, sum(totals)))
            fault = names[-1]
            for name, weight in zip(names, totals):
                if pick < weight:
                    fault = name
                    break
                pick -= weight
        else:
            fault = self.script[int(n) % len(self.script)]
        # Draw the offsets unconditionally so a schedule's fault choice and
        # its offsets never depend on each other across faults.
        cut_after = int(rng.integers(1, self.max_offset))
        corrupt_at = int(rng.integers(0, self.max_offset))
        delay = float(rng.uniform(0.0, self.delay)) if self.delay > 0 else 0.0
        return _Plan(
            fault=fault, cut_after=cut_after, corrupt_at=corrupt_at, delay=delay
        )

    def __repr__(self) -> str:
        if self._weights is not None:
            return f"ChaosSchedule.random({self.seed!r}, weights={self._weights})"
        return f"ChaosSchedule({list(self.script)}, seed={self.seed!r})"


class ChaosProxy:
    """Fault-injecting TCP proxy in front of one upstream address.

    ``start()`` binds (an OS-assigned port by default) and returns the
    address to point the topology at; ``stop()`` tears down the listener,
    every live connection and the pump threads.  Usable as a context
    manager.  ``stats()`` reports connections seen and faults applied, so
    tests can assert the schedule actually fired.
    """

    def __init__(
        self,
        upstream: Union[str, Tuple[str, int]],
        schedule: Optional[ChaosSchedule] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 30.0,
        backlog: int = 32,
    ) -> None:
        up_host, up_port = parse_address(upstream)
        self.upstream = f"{up_host}:{up_port}"
        self.schedule = schedule or ChaosSchedule(["pass"])
        self.timeout = float(timeout)
        self._host = str(host)
        self._port = int(port)
        self._backlog = int(backlog)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._n_conns = 0  # repro: guarded-by(_lock)
        self._sockets: set = set()  # repro: guarded-by(_lock)
        self._workers: List[threading.Thread] = []  # repro: guarded-by(_lock)
        self._faults: Dict[str, int] = {f: 0 for f in FAULTS}  # repro: guarded-by(_lock)

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> str:
        if self._listener is None:
            raise RuntimeError("chaos proxy is not started; call start() first")
        return f"{self._host}:{self._port}"

    def start(self) -> str:
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(self._backlog)
        self._host, self._port = listener.getsockname()[:2]
        self._listener = listener
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()
        log.info(
            "chaos proxy started",
            extra=access_extra(
                address=self.address,
                upstream=self.upstream,
                schedule=repr(self.schedule),
            ),
        )
        return self.address

    def serve_forever(self, timeout: Optional[float] = None) -> None:
        self.start()
        self._stop.wait(timeout)

    def request_stop(self) -> None:
        """Signal-handler-safe: just unblocks :meth:`serve_forever`."""
        self._stop.set()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            _abort(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout)
        self._listener = None
        self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "connections": self._n_conns,
                "faults": dict(self._faults),
                "upstream": self.upstream,
            }

    # -- connection handling ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                index = self._n_conns
                self._n_conns += 1
                self._sockets.add(conn)
                self._workers = [w for w in self._workers if w.is_alive()]
                worker = threading.Thread(
                    target=self._serve,
                    args=(conn, index),
                    name=f"repro-chaos-conn-{index}",
                    daemon=True,
                )
                self._workers.append(worker)
            worker.start()

    def _serve(self, client: socket.socket, index: int) -> None:
        plan = self.schedule.plan(index)
        with self._lock:
            self._faults[plan.fault] += 1
        log.info(
            "connection fault",
            extra=access_extra(conn=index, fault=plan.fault),
        )
        upstream: Optional[socket.socket] = None
        try:
            if plan.fault == "refuse":
                _abort(client)
                return
            if plan.fault == "hang":
                # Hold the socket open, forward nothing; the client's own
                # timeout (or our stop()) ends it.
                self._stop.wait(self.timeout)
                return
            try:
                upstream = socket.create_connection(
                    parse_address(self.upstream), timeout=self.timeout
                )
            except OSError:
                _abort(client)
                return
            client.settimeout(self.timeout)
            upstream.settimeout(self.timeout)
            with self._lock:
                self._sockets.add(upstream)
            # Client -> upstream is always a clean relay (requests are not
            # the bytes under test); upstream -> client carries the fault.
            # Either side *ending* aborts both; idle relays live on until
            # stop() aborts their sockets.
            forward = threading.Thread(
                target=self._pump_then_abort,
                args=(client, upstream, _Plan("pass")),
                name=f"repro-chaos-up-{index}",
                daemon=True,
            )
            with self._lock:
                self._workers.append(forward)
            forward.start()
            if plan.delay > 0:
                self._stop.wait(plan.delay)
            self._pump(upstream, client, plan)
        finally:
            for sock in (client, upstream):
                if sock is None:
                    continue
                _abort(sock)
                with self._lock:
                    self._sockets.discard(sock)

    def _pump_then_abort(
        self, src: socket.socket, dst: socket.socket, plan: _Plan
    ) -> None:
        try:
            self._pump(src, dst, plan)
        finally:
            _abort(src)
            _abort(dst)

    def _pump(self, src: socket.socket, dst: socket.socket, plan: _Plan) -> None:
        """Relay ``src`` to ``dst`` with the plan's cut/flip applied."""
        relayed = 0
        while not self._stop.is_set():
            try:
                chunk = src.recv(_CHUNK)
            except socket.timeout:
                # Idle is not a fault: pooled clients hold healthy relay
                # connections open between exchanges for minutes.  The recv
                # timeout only paces the stop-flag check above.
                continue
            except OSError:
                break
            if not chunk:
                break
            if plan.fault == "corrupt":
                offset = plan.corrupt_at - relayed
                if 0 <= offset < len(chunk):
                    mutated = bytearray(chunk)
                    mutated[offset] ^= 0xFF
                    chunk = bytes(mutated)
            if plan.fault == "disconnect" and relayed + len(chunk) >= plan.cut_after:
                keep = max(0, plan.cut_after - relayed)
                try:
                    if keep:
                        dst.sendall(chunk[:keep])
                finally:
                    _abort(dst)
                    _abort(src)
                break
            try:
                dst.sendall(chunk)
            except OSError:
                break
            relayed += len(chunk)


def _abort(sock: socket.socket) -> None:
    """Tear a connection down *now*, swallowing the races of a dying socket.

    ``shutdown`` first: unlike ``close``, it takes effect even while another
    thread is blocked in ``recv`` on the same fd (a pump mid-relay), so the
    peer sees the teardown immediately instead of waiting out its timeout.
    The linger-0 close then drops the fd without lingering in TIME_WAIT.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _ABORT)
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
