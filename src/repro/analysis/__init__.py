"""Quality metrics and scientific post-analysis used in the evaluation.

PSNR / SSIM drive most of the paper's tables; the radially binned FFT power
spectrum (with the "max relative error for k < 10" acceptance criterion) and
a halo finder reproduce the Nyx-specific analyses (Table VI and Fig. 4).
"""

from repro.analysis.halo import Halo, find_halos, halo_mass_function, match_halos
from repro.analysis.metrics import (
    compression_ratio,
    max_abs_error,
    mse,
    nrmse,
    psnr,
    rate_distortion_curve,
    RateDistortionPoint,
)
from repro.analysis.power_spectrum import power_spectrum, power_spectrum_error
from repro.analysis.ssim import ssim

__all__ = [
    "psnr",
    "mse",
    "nrmse",
    "max_abs_error",
    "compression_ratio",
    "rate_distortion_curve",
    "RateDistortionPoint",
    "ssim",
    "power_spectrum",
    "power_spectrum_error",
    "Halo",
    "find_halos",
    "match_halos",
    "halo_mass_function",
]
