"""Point-wise data quality metrics and rate-distortion sweeps.

The paper reports PSNR with the peak defined as the value range of the
original field (the convention of the SZ/ZFP literature); the same convention
is used here so paper and measured numbers are comparable in shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "mse",
    "nrmse",
    "max_abs_error",
    "psnr",
    "compression_ratio",
    "RateDistortionPoint",
    "rate_distortion_curve",
]


def _pair(original, reconstructed):
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Maximum point-wise absolute error (what an error bound constrains)."""
    a, b = _pair(original, reconstructed)
    return float(np.max(np.abs(a - b)))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root mean squared error normalised by the original value range."""
    a, b = _pair(original, reconstructed)
    value_range = float(a.max() - a.min())
    if value_range == 0:
        return 0.0 if mse(a, b) == 0 else float("inf")
    return float(np.sqrt(mse(a, b)) / value_range)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB with peak = original value range."""
    a, b = _pair(original, reconstructed)
    err = mse(a, b)
    value_range = float(a.max() - a.min())
    if err == 0:
        return float("inf")
    if value_range == 0:
        return float("-inf")
    return float(20.0 * np.log10(value_range) - 10.0 * np.log10(err))


def compression_ratio(nbytes_original: int, nbytes_compressed: int) -> float:
    """Original size divided by compressed size."""
    if nbytes_compressed <= 0:
        raise ValueError("compressed size must be positive")
    return float(nbytes_original) / float(nbytes_compressed)


@dataclass
class RateDistortionPoint:
    """One point of a rate-distortion curve."""

    error_bound: float
    compression_ratio: float
    psnr: float
    max_error: float
    label: str = ""


def rate_distortion_curve(
    compress_fn,
    original: np.ndarray,
    error_bounds: Sequence[float],
    label: str = "",
) -> List[RateDistortionPoint]:
    """Sweep error bounds and collect (compression ratio, PSNR) points.

    ``compress_fn(data, error_bound)`` must return an object with
    ``compression_ratio`` and ``decompressed`` attributes (both
    :class:`repro.compressors.base.RoundTripResult` and the workflow results
    satisfy this), or a ``(ratio, reconstruction)`` tuple.
    """
    original = np.asarray(original, dtype=np.float64)
    points: List[RateDistortionPoint] = []
    for eb in error_bounds:
        result = compress_fn(original, float(eb))
        if isinstance(result, tuple):
            ratio, recon = result
        else:
            ratio, recon = result.compression_ratio, result.decompressed
        points.append(
            RateDistortionPoint(
                error_bound=float(eb),
                compression_ratio=float(ratio),
                psnr=psnr(original, recon),
                max_error=max_abs_error(original, recon),
                label=label,
            )
        )
    return points
