"""Simple halo finder for Nyx-like density fields.

The paper motivates ROI extraction by showing that 15 % of the Nyx volume
captures "almost all the halos for the Halo-finder analysis" (Fig. 4).  This
module implements the classic threshold + connected-component halo finder
(a grid-based stand-in for friends-of-friends): cells above an over-density
threshold are grouped into connected components, and each component becomes a
halo with a mass (sum of density), a centre of mass and a cell count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import ndimage

__all__ = ["Halo", "find_halos", "match_halos", "halo_mass_function"]


@dataclass
class Halo:
    """One halo: connected over-density region of a density field."""

    label: int
    mass: float
    n_cells: int
    centre: Tuple[float, ...]
    peak_density: float


def find_halos(
    density: np.ndarray,
    threshold: float | None = None,
    overdensity: float = 3.0,
    min_cells: int = 4,
) -> List[Halo]:
    """Find halos as connected components above a density threshold.

    Parameters
    ----------
    density:
        Positive density field.
    threshold:
        Absolute density threshold; by default ``overdensity`` times the mean.
    min_cells:
        Minimum component size; smaller components are considered noise.
    """
    rho = np.asarray(density, dtype=np.float64)
    if threshold is None:
        threshold = float(overdensity) * float(rho.mean())
    mask = rho > threshold
    structure = ndimage.generate_binary_structure(rho.ndim, 1)
    labels, n_labels = ndimage.label(mask, structure=structure)
    halos: List[Halo] = []
    if n_labels == 0:
        return halos
    indices = np.arange(1, n_labels + 1)
    masses = ndimage.sum_labels(rho, labels, indices)
    counts = ndimage.sum_labels(np.ones_like(rho), labels, indices)
    centres = ndimage.center_of_mass(rho, labels, indices)
    peaks = ndimage.maximum(rho, labels, indices)
    for label, mass, count, centre, peak in zip(indices, masses, counts, centres, peaks):
        if count < min_cells:
            continue
        halos.append(
            Halo(
                label=int(label),
                mass=float(mass),
                n_cells=int(count),
                centre=tuple(float(c) for c in np.atleast_1d(centre)),
                peak_density=float(peak),
            )
        )
    halos.sort(key=lambda h: h.mass, reverse=True)
    return halos


def match_halos(
    reference: Sequence[Halo],
    candidate: Sequence[Halo],
    max_distance: float = 4.0,
    mass_tolerance: float = 0.5,
) -> float:
    """Fraction of reference halos recovered in the candidate catalogue.

    A reference halo is recovered when a candidate halo lies within
    ``max_distance`` cells of its centre and has a mass within a relative
    ``mass_tolerance``.  This is the metric behind the Fig. 4 claim that the
    ROI captures almost all halos.
    """
    if not reference:
        return 1.0
    if not candidate:
        return 0.0
    cand_centres = np.array([h.centre for h in candidate], dtype=np.float64)
    cand_masses = np.array([h.mass for h in candidate], dtype=np.float64)
    recovered = 0
    for halo in reference:
        dist = np.linalg.norm(cand_centres - np.asarray(halo.centre), axis=1)
        mass_ok = np.abs(cand_masses - halo.mass) <= mass_tolerance * halo.mass
        if bool(np.any((dist <= max_distance) & mass_ok)):
            recovered += 1
    return recovered / len(reference)


def halo_mass_function(halos: Sequence[Halo], n_bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of halo masses (log-spaced bins); returns (bin centres, counts)."""
    if not halos:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    masses = np.array([h.mass for h in halos], dtype=np.float64)
    lo, hi = masses.min(), masses.max()
    if lo <= 0 or lo == hi:
        edges = np.linspace(lo, hi + 1e-12, n_bins + 1)
    else:
        edges = np.geomspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(masses, bins=edges)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, counts
