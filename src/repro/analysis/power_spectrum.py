"""Matter power spectrum analysis (Nyx-specific post-analysis, Table VI).

Cosmologists validate compressed Nyx data by comparing the matter power
spectrum ``P(k)`` of decompressed and original density fields: the paper's
acceptance criterion is a relative error below 1 % for all wavenumbers
``k < 10`` (in units of the fundamental mode of the box).  The implementation
follows the standard recipe: FFT the over-density ``delta = rho/rho_mean - 1``,
square the modulus, and average over spherical shells in k-space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["power_spectrum", "power_spectrum_error", "PowerSpectrumError"]


def power_spectrum(
    field: np.ndarray,
    n_bins: int | None = None,
    subtract_mean: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Radially binned power spectrum of a 3-D field.

    Returns ``(k, P)`` where ``k`` is the bin-centre wavenumber in units of the
    fundamental mode (integer wavenumbers of the box) and ``P`` the mean power
    in each shell.
    """
    data = np.asarray(field, dtype=np.float64)
    if data.ndim != 3:
        raise ValueError("power_spectrum expects a 3-D field")
    if subtract_mean:
        mean = data.mean()
        if mean != 0:
            delta = data / mean - 1.0
        else:
            delta = data.copy()
    else:
        delta = data

    fourier = np.fft.rfftn(delta)
    power = np.abs(fourier) ** 2 / delta.size

    kx = np.fft.fftfreq(data.shape[0]) * data.shape[0]
    ky = np.fft.fftfreq(data.shape[1]) * data.shape[1]
    kz = np.fft.rfftfreq(data.shape[2]) * data.shape[2]
    kmag = np.sqrt(
        kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2
    )

    k_max = int(np.floor(kmag.max()))
    if n_bins is None:
        n_bins = max(1, min(k_max, max(data.shape) // 2))
    bins = np.arange(0.5, n_bins + 1.5)
    which = np.digitize(kmag.ravel(), bins)
    power_flat = power.ravel()

    k_centres = np.arange(1, n_bins + 1, dtype=np.float64)
    spectrum = np.zeros(n_bins, dtype=np.float64)
    for i in range(1, n_bins + 1):
        mask = which == i
        if mask.any():
            spectrum[i - 1] = power_flat[mask].mean()
    return k_centres, spectrum


@dataclass
class PowerSpectrumError:
    """Relative power-spectrum error statistics for ``k < k_max``."""

    k_max: float
    max_relative_error: float
    mean_relative_error: float
    per_k_relative_error: np.ndarray

    @property
    def acceptable(self) -> bool:
        """Paper criterion: max relative error below 1 % for all k < 10."""
        return self.max_relative_error < 0.01


def power_spectrum_error(
    original: np.ndarray,
    reconstructed: np.ndarray,
    k_max: float = 10.0,
) -> PowerSpectrumError:
    """Relative error of the reconstructed power spectrum for all ``k < k_max``."""
    k, p_orig = power_spectrum(original)
    _, p_recon = power_spectrum(reconstructed)
    mask = (k < k_max) & (p_orig > 0)
    if not mask.any():
        raise ValueError(f"no populated k bins below k_max={k_max}")
    rel = np.abs(p_recon[mask] - p_orig[mask]) / p_orig[mask]
    return PowerSpectrumError(
        k_max=float(k_max),
        max_relative_error=float(rel.max()),
        mean_relative_error=float(rel.mean()),
        per_k_relative_error=rel,
    )
