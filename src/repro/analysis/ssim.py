"""Structural Similarity Index (SSIM) for 2-D slices and 3-D volumes.

The paper reports SSIM between visualizations of original and decompressed
data (Figs. 4, 5, 9, 16).  Here SSIM is computed directly on the data arrays
with the standard Wang et al. formulation: local means/variances are obtained
with a Gaussian window (sigma = 1.5, matching the common 11-point window),
and the mean SSIM over all positions is returned.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

__all__ = ["ssim", "ssim_map"]


def ssim_map(
    original: np.ndarray,
    reconstructed: np.ndarray,
    data_range: float | None = None,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
) -> np.ndarray:
    """Per-voxel SSIM map between two arrays of identical shape."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim not in (2, 3):
        raise ValueError("SSIM is defined here for 2-D or 3-D arrays")
    if data_range is None:
        data_range = float(a.max() - a.min())
    if data_range == 0:
        return np.ones_like(a)

    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_a = gaussian_filter(a, sigma)
    mu_b = gaussian_filter(b, sigma)
    mu_a2 = mu_a * mu_a
    mu_b2 = mu_b * mu_b
    mu_ab = mu_a * mu_b

    sigma_a2 = gaussian_filter(a * a, sigma) - mu_a2
    sigma_b2 = gaussian_filter(b * b, sigma) - mu_b2
    sigma_ab = gaussian_filter(a * b, sigma) - mu_ab

    numerator = (2.0 * mu_ab + c1) * (2.0 * sigma_ab + c2)
    denominator = (mu_a2 + mu_b2 + c1) * (sigma_a2 + sigma_b2 + c2)
    return numerator / denominator


def ssim(
    original: np.ndarray,
    reconstructed: np.ndarray,
    data_range: float | None = None,
    sigma: float = 1.5,
) -> float:
    """Mean SSIM between two 2-D or 3-D arrays (1.0 means identical structure)."""
    return float(np.mean(ssim_map(original, reconstructed, data_range=data_range, sigma=sigma)))
