"""Shared low-level helpers: block views, Morton order, timing, RNG, validation."""

from repro.utils.blocks import (
    assemble_blocks,
    block_index_grid,
    block_reduce_mean,
    block_reduce_range,
    block_view,
    num_blocks,
    pad_to_multiple,
    upsample_nearest,
    upsample_trilinear,
)
from repro.utils.morton import morton_decode3d, morton_encode3d, morton_order
from repro.utils.rng import default_rng
from repro.utils.timer import Timer, TimingBreakdown
from repro.utils.validation import (
    ensure_array,
    ensure_in_range,
    ensure_positive,
    ensure_power_of_two,
)

__all__ = [
    "assemble_blocks",
    "block_index_grid",
    "block_reduce_mean",
    "block_reduce_range",
    "block_view",
    "num_blocks",
    "pad_to_multiple",
    "upsample_nearest",
    "upsample_trilinear",
    "morton_decode3d",
    "morton_encode3d",
    "morton_order",
    "default_rng",
    "Timer",
    "TimingBreakdown",
    "ensure_array",
    "ensure_in_range",
    "ensure_positive",
    "ensure_power_of_two",
]
