"""Block partitioning helpers.

Every stage of the workflow (ROI selection, unit-block partitioning of sparse
resolution levels, block-wise compression, Bezier post-processing) operates on
regular ``b x b x b`` blocks of a dense array.  The helpers in this module
provide vectorised, copy-free (where possible) block views and the inverse
assembly operation, following the NumPy idiom of working on reshaped views
instead of Python loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "pad_to_multiple",
    "block_view",
    "assemble_blocks",
    "num_blocks",
    "block_index_grid",
    "block_bounds",
    "block_reduce_range",
    "block_reduce_mean",
    "block_reduce_max",
    "block_reduce_min",
    "downsample_mean",
    "upsample_nearest",
    "upsample_trilinear",
]


def _normalize_block_size(block_size: int | Sequence[int], ndim: int) -> Tuple[int, ...]:
    """Return a per-axis block-size tuple of length ``ndim``."""
    if np.isscalar(block_size):
        bs = (int(block_size),) * ndim
    else:
        bs = tuple(int(b) for b in block_size)
        if len(bs) != ndim:
            raise ValueError(
                f"block_size has {len(bs)} entries but data has {ndim} dimensions"
            )
    if any(b <= 0 for b in bs):
        raise ValueError(f"block sizes must be positive, got {bs}")
    return bs


def pad_to_multiple(
    data: np.ndarray,
    block_size: int | Sequence[int],
    mode: str = "edge",
) -> np.ndarray:
    """Pad ``data`` so every axis is a multiple of the block size.

    Parameters
    ----------
    data:
        N-dimensional array.
    block_size:
        Scalar or per-axis block edge length.
    mode:
        Any mode accepted by :func:`numpy.pad`; the default ``"edge"``
        replicates boundary values, which keeps the padded region as smooth as
        the data itself (important for compression experiments).

    Returns
    -------
    numpy.ndarray
        The padded array (a copy when padding is needed, the input otherwise).
    """
    bs = _normalize_block_size(block_size, data.ndim)
    pads = []
    needs_pad = False
    for n, b in zip(data.shape, bs):
        rem = (-n) % b
        pads.append((0, rem))
        needs_pad = needs_pad or rem
    if not needs_pad:
        return data
    return np.pad(data, pads, mode=mode)


def num_blocks(shape: Sequence[int], block_size: int | Sequence[int]) -> Tuple[int, ...]:
    """Number of blocks per axis (ceil division)."""
    bs = _normalize_block_size(block_size, len(shape))
    return tuple(-(-int(n) // b) for n, b in zip(shape, bs))


def block_view(data: np.ndarray, block_size: int | Sequence[int]) -> np.ndarray:
    """Reshape ``data`` into an array of blocks.

    The result has shape ``(*nblocks, *block_size)`` — i.e. for a 3-D input
    the output is 6-D with the first three axes indexing blocks and the last
    three indexing positions inside a block.  The input must already be a
    multiple of the block size (use :func:`pad_to_multiple` first); a view is
    returned, no data is copied.
    """
    bs = _normalize_block_size(block_size, data.ndim)
    for n, b in zip(data.shape, bs):
        if n % b:
            raise ValueError(
                f"array shape {data.shape} is not a multiple of block size {bs}; "
                "call pad_to_multiple first"
            )
    nblocks = tuple(n // b for n, b in zip(data.shape, bs))
    # interleave block-count and block-size axes then move all block-count
    # axes to the front: (n0, b0, n1, b1, ...) -> (n0, n1, ..., b0, b1, ...)
    inter_shape = tuple(x for n, b in zip(nblocks, bs) for x in (n, b))
    view = data.reshape(inter_shape)
    order = tuple(range(0, 2 * data.ndim, 2)) + tuple(range(1, 2 * data.ndim, 2))
    return view.transpose(order)


def assemble_blocks(blocks: np.ndarray, out_shape: Sequence[int] | None = None) -> np.ndarray:
    """Inverse of :func:`block_view`.

    ``blocks`` has shape ``(*nblocks, *block_size)`` (2*ndim axes); the result
    is the dense array of shape ``nblocks * block_size`` cropped to
    ``out_shape`` when provided (to undo padding).
    """
    if blocks.ndim % 2:
        raise ValueError("blocks array must have an even number of axes")
    ndim = blocks.ndim // 2
    nblocks = blocks.shape[:ndim]
    bs = blocks.shape[ndim:]
    order = tuple(x for pair in zip(range(ndim), range(ndim, 2 * ndim)) for x in pair)
    dense = blocks.transpose(order).reshape(tuple(n * b for n, b in zip(nblocks, bs)))
    if out_shape is not None:
        slices = tuple(slice(0, int(s)) for s in out_shape)
        dense = dense[slices]
    return np.ascontiguousarray(dense)


def block_index_grid(shape: Sequence[int], block_size: int | Sequence[int]) -> np.ndarray:
    """Integer index coordinates of every block, shape ``(nblocks_total, ndim)``."""
    nb = num_blocks(shape, block_size)
    grids = np.meshgrid(*[np.arange(n) for n in nb], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def block_bounds(
    coords: np.ndarray,
    block_size: int | Sequence[int],
    shape: Sequence[int] | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cell-space ``(starts, stops)`` of many blocks in one vectorised call.

    ``coords`` is ``(n, ndim)`` unit-block coordinates; the result arrays are
    both ``(n, ndim)`` int64.  With ``shape`` the stops are clamped to the
    domain, which is how overhanging edge blocks get their ragged extents.
    The batched replacement for calling :func:`block_cell_slices
    <repro.store.query.block_cell_slices>` in a Python loop per block.
    """
    coords = np.asarray(coords, dtype=np.int64)
    if coords.ndim != 2:
        raise ValueError(f"coords must be (n, ndim), got shape {coords.shape}")
    bs = np.asarray(
        _normalize_block_size(block_size, coords.shape[1]), dtype=np.int64
    )
    starts = coords * bs
    stops = starts + bs
    if shape is not None:
        stops = np.minimum(stops, np.asarray(tuple(shape), dtype=np.int64))
    return starts, stops


def _blockwise_reduce(data: np.ndarray, block_size, func) -> np.ndarray:
    padded = pad_to_multiple(data, block_size)
    bv = block_view(padded, block_size)
    ndim = data.ndim
    axes = tuple(range(ndim, 2 * ndim))
    return func(bv, axis=axes)


def block_reduce_range(data: np.ndarray, block_size: int | Sequence[int]) -> np.ndarray:
    """Per-block value range (max - min); the paper's ROI importance measure."""
    padded = pad_to_multiple(data, block_size)
    bv = block_view(padded, block_size)
    ndim = data.ndim
    axes = tuple(range(ndim, 2 * ndim))
    return bv.max(axis=axes) - bv.min(axis=axes)


def block_reduce_mean(data: np.ndarray, block_size: int | Sequence[int]) -> np.ndarray:
    """Per-block mean value."""
    return _blockwise_reduce(data, block_size, np.mean)


def block_reduce_max(data: np.ndarray, block_size: int | Sequence[int]) -> np.ndarray:
    """Per-block maximum value."""
    return _blockwise_reduce(data, block_size, np.max)


def block_reduce_min(data: np.ndarray, block_size: int | Sequence[int]) -> np.ndarray:
    """Per-block minimum value."""
    return _blockwise_reduce(data, block_size, np.min)


def downsample_mean(data: np.ndarray, factor: int = 2) -> np.ndarray:
    """Down-sample by averaging ``factor``-sized cells (AMR restriction)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    padded = pad_to_multiple(data, factor)
    bv = block_view(padded, factor)
    ndim = data.ndim
    axes = tuple(range(ndim, 2 * ndim))
    return bv.mean(axis=axes)


def upsample_nearest(data: np.ndarray, factor: int = 2) -> np.ndarray:
    """Up-sample by nearest-neighbour replication (AMR prolongation, order 0)."""
    out = data
    for axis in range(data.ndim):
        out = np.repeat(out, factor, axis=axis)
    return out


def upsample_trilinear(data: np.ndarray, factor: int = 2, out_shape: Sequence[int] | None = None) -> np.ndarray:
    """Up-sample with separable linear interpolation.

    Used when reconstructing a uniform grid from coarse AMR levels for
    visualization; smoother than nearest-neighbour replication.
    """
    from scipy.ndimage import zoom

    if out_shape is None:
        out_shape = tuple(int(n * factor) for n in data.shape)
    zoom_factors = [o / n for o, n in zip(out_shape, data.shape)]
    out = zoom(data.astype(np.float64, copy=False), zoom_factors, order=1, mode="nearest")
    # zoom can be off by one; crop or pad to the requested shape exactly.
    slices = tuple(slice(0, s) for s in out_shape)
    out = out[slices]
    pads = [(0, max(0, s - o)) for s, o in zip(out_shape, out.shape)]
    if any(p[1] for p in pads):
        out = np.pad(out, pads, mode="edge")
    return out


def iter_block_slices(
    shape: Sequence[int], block_size: int | Sequence[int]
) -> Iterable[Tuple[slice, ...]]:
    """Yield slice tuples covering ``shape`` in blocks (last blocks may be ragged)."""
    starts, stops = block_bounds(
        block_index_grid(shape, block_size), block_size, shape=shape
    )
    for lo, hi in zip(starts.tolist(), stops.tolist()):
        yield tuple(slice(a, b) for a, b in zip(lo, hi))
