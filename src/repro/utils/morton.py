"""Morton (z-order) curves.

zMesh-style baselines and the HZ-ordering baseline of Kumar et al. traverse
multi-resolution data along a space filling curve; the Morton order is the
standard choice and is used by :mod:`repro.baselines.zmesh` and
:mod:`repro.baselines.hz_order`.  All routines are vectorised over arrays of
coordinates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_encode3d", "morton_decode3d", "morton_order", "morton_encode2d"]

_MAX_BITS = 21  # 3 * 21 = 63 bits, fits in int64


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of ``x`` (vectorised)."""
    x = x.astype(np.uint64)
    x &= np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64)
    x &= np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def _part1by1(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint64)
    x &= np.uint64(0xFFFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def morton_encode3d(i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Interleave three integer coordinate arrays into Morton codes."""
    i = np.asarray(i)
    j = np.asarray(j)
    k = np.asarray(k)
    if (i < 0).any() or (j < 0).any() or (k < 0).any():
        raise ValueError("Morton coordinates must be non-negative")
    if max(int(i.max(initial=0)), int(j.max(initial=0)), int(k.max(initial=0))) >= (1 << _MAX_BITS):
        raise ValueError(f"coordinates must be < 2^{_MAX_BITS}")
    return (
        _part1by2(i) | (_part1by2(j) << np.uint64(1)) | (_part1by2(k) << np.uint64(2))
    ).astype(np.uint64)


def morton_encode2d(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Interleave two integer coordinate arrays into Morton codes."""
    i = np.asarray(i)
    j = np.asarray(j)
    if (i < 0).any() or (j < 0).any():
        raise ValueError("Morton coordinates must be non-negative")
    return (_part1by1(i) | (_part1by1(j) << np.uint64(1))).astype(np.uint64)


def morton_decode3d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split Morton codes back into (i, j, k) coordinates."""
    code = np.asarray(code, dtype=np.uint64)
    i = _compact1by2(code)
    j = _compact1by2(code >> np.uint64(1))
    k = _compact1by2(code >> np.uint64(2))
    return i.astype(np.int64), j.astype(np.int64), k.astype(np.int64)


def morton_order(shape: tuple[int, int, int]) -> np.ndarray:
    """Flat indices of a 3-D array visited in Morton (z-curve) order.

    The returned permutation ``p`` satisfies ``data.ravel()[p]`` being the
    z-order traversal of ``data``.
    """
    ni, nj, nk = (int(s) for s in shape)
    ii, jj, kk = np.meshgrid(
        np.arange(ni), np.arange(nj), np.arange(nk), indexing="ij"
    )
    codes = morton_encode3d(ii.ravel(), jj.ravel(), kk.ravel())
    return np.argsort(codes, kind="stable")
