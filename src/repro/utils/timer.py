"""Wall-clock timing helpers used by the in-situ pipeline and the overhead benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.obs import REGISTRY

__all__ = ["Timer", "TimingBreakdown"]

#: Every phase recorded through a TimingBreakdown also lands here, so the
#: pipeline's per-phase costs show up in the process-wide registry (and a
#: ``repro stats --prom`` scrape) without the breakdown API changing.
_PHASE_SECONDS = REGISTRY.histogram(
    "repro_phase_seconds",
    "Per-phase wall-clock durations recorded through TimingBreakdown.",
    labelnames=("phase",),
)


class Timer:
    """Simple stopwatch usable either as a context manager or manually.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimingBreakdown:
    """Named phase timings, mirroring the columns of Tables IV and IX.

    Phases are accumulated (calling the same phase twice adds the durations),
    which matches how the paper accumulates per-timestep costs.
    """

    phases: Dict[str, float] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self._accumulate(name, seconds)
        _PHASE_SECONDS.labels(phase=name).observe(float(seconds))

    def _accumulate(self, name: str, seconds: float) -> None:
        if name not in self.phases:
            self.phases[name] = 0.0
            self.order.append(name)
        self.phases[name] += float(seconds)

    def total(self) -> float:
        return float(sum(self.phases.values()))

    def __getitem__(self, name: str) -> float:
        return self.phases[name]

    def __contains__(self, name: str) -> bool:
        return name in self.phases

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        # Merging re-groups durations already observed once; bypassing add()
        # keeps the histogram from double-counting them.
        merged = TimingBreakdown()
        for src in (self, other):
            for name in src.order:
                merged._accumulate(name, src.phases[name])
        return merged

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)

    def format_table(self) -> str:
        """Human-readable two-column table of phase timings."""
        width = max((len(n) for n in self.order), default=5)
        lines = [f"{name:<{width}}  {self.phases[name]:.4f} s" for name in self.order]
        lines.append(f"{'total':<{width}}  {self.total():.4f} s")
        return "\n".join(lines)
