"""Input validation helpers shared by the public API surface."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "ensure_array",
    "ensure_positive",
    "ensure_in_range",
    "ensure_power_of_two",
    "is_power_of_two",
]


def ensure_array(
    data,
    *,
    ndim: int | Sequence[int] | None = None,
    dtype=np.float64,
    name: str = "data",
) -> np.ndarray:
    """Convert to a contiguous floating-point ndarray and check dimensionality."""
    arr = np.ascontiguousarray(np.asarray(data, dtype=dtype))
    if ndim is not None:
        allowed = (ndim,) if np.isscalar(ndim) else tuple(ndim)
        if arr.ndim not in allowed:
            raise ValueError(
                f"{name} must have dimensionality in {allowed}, got {arr.ndim}"
            )
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def ensure_positive(value: float, name: str = "value") -> float:
    """Check that a scalar is strictly positive and return it as float."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def ensure_in_range(
    value: float, low: float, high: float, name: str = "value", inclusive: bool = True
) -> float:
    """Check that ``low <= value <= high`` (or strict when ``inclusive=False``)."""
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    value = int(value)
    return value > 0 and (value & (value - 1)) == 0


def ensure_power_of_two(value: int, name: str = "value", minimum: int = 1) -> int:
    """Check that ``value`` is a power of two no smaller than ``minimum``."""
    value = int(value)
    if not is_power_of_two(value) or value < minimum:
        raise ValueError(f"{name} must be a power of two >= {minimum}, got {value}")
    return value
