"""Deterministic random-number helpers.

All synthetic datasets and stochastic algorithm components (sampling-based
intensity search, probabilistic marching cubes Monte-Carlo checks) draw their
randomness through this module so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["default_rng", "seed_from_name"]

_GLOBAL_SEED = 20240717  # arbitrary fixed base seed for the reproduction


def seed_from_name(name: str, base_seed: int | None = None) -> int:
    """Derive a stable 63-bit seed from a string label.

    Using a hash of the dataset / experiment name keeps independent
    experiments statistically independent while remaining reproducible.
    """
    base = _GLOBAL_SEED if base_seed is None else int(base_seed)
    digest = hashlib.sha256(f"{base}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


def default_rng(seed: int | str | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    ``seed`` may be an integer, a string label (hashed via
    :func:`seed_from_name`), an existing generator (returned unchanged), or
    ``None`` for the package-wide fixed seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(_GLOBAL_SEED)
    if isinstance(seed, str):
        return np.random.default_rng(seed_from_name(seed))
    return np.random.default_rng(int(seed))
