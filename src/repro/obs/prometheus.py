"""Prometheus text-format exposition of a registry snapshot.

A pure function over the plain-data snapshot
(:meth:`repro.obs.MetricsRegistry.snapshot`), so the daemon ships data and
any side — the serving process, the ``repro stats --prom`` client, a test —
renders identical text.  Output follows the Prometheus text exposition
format version 0.0.4: ``# HELP`` / ``# TYPE`` preambles, escaped label
values, histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["render_prometheus"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(
    labels: Mapping[str, Any], extra: Optional[Mapping[str, str]] = None
) -> str:
    items = [(str(k), str(v)) for k, v in labels.items()]
    items += [(str(k), str(v)) for k, v in (extra or {}).items()]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in sorted(items))
    return "{" + body + "}"


def _bucket_sort_key(bound: str):
    return float("inf") if bound == "+Inf" else float(bound)


def render_prometheus(families: Iterable[Dict[str, Any]]) -> str:
    """Render snapshot families as Prometheus exposition text.

    Accepts exactly what :meth:`MetricsRegistry.snapshot` produces (and what
    the ``stats`` wire op carries under ``"metrics"``).  Deterministic:
    families render in input order (the snapshot already sorts by name),
    labels sort within a sample, histogram buckets sort numerically.
    """
    lines: List[str] = []
    for family in families:
        name = family["name"]
        kind = family.get("type", "untyped")
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                buckets = sample.get("buckets", {})
                for bound in sorted(buckets, key=_bucket_sort_key):
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, {'le': bound})} "
                        f"{_format_value(buckets[bound])}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_format_value(sample.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {_format_value(sample.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(sample.get('value', 0.0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
