"""Stdlib-logging plumbing for the serving stack.

The library itself only ever *emits* records (``repro.serve.daemon`` is the
chatty one: access lines, slow-request warnings, connection lifecycle) and
installs a ``NullHandler`` at the package root, so importing ``repro`` never
configures logging behind an application's back.  :func:`configure_logging`
is the opt-in for processes that *are* the application — ``repro serve -v``
and the examples — attaching one stream handler with either a human
``key=value`` line format or JSON lines for log shippers.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging", "JsonLineFormatter", "access_extra"]


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message, fields.

    Structured fields attached via ``extra={"fields": {...}}`` (see
    :func:`access_extra`) are merged into the top-level object, so an access
    line is machine-parseable without regexing the message.
    """

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            out.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            out["exception"] = self.formatException(record.exc_info)
        return json.dumps(out, sort_keys=True, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human format: timestamped message plus sorted ``key=value`` fields."""

    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            base += " " + " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        return base


def access_extra(**fields) -> dict:
    """``extra=`` payload carrying structured fields both formatters render."""
    return {"fields": fields}


def configure_logging(
    verbosity: int = 0,
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
    logger: str = "repro",
) -> logging.Logger:
    """Attach one configured stream handler to the ``repro`` logger tree.

    ``verbosity`` 0 keeps the library quiet (WARNING: slow requests and
    errors only), 1 adds the per-request access log (INFO), 2 adds
    connection/reader lifecycle chatter (DEBUG).  Idempotent per stream: a
    handler this function installed earlier is replaced, not duplicated.
    """
    target = logging.getLogger(logger)
    level = (logging.WARNING, logging.INFO, logging.DEBUG)[min(int(verbosity), 2)]
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            KeyValueFormatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    for existing in list(target.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            target.removeHandler(existing)
    target.addHandler(handler)
    target.setLevel(level)
    return target
