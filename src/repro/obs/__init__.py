"""``repro.obs`` — metrics, request tracing and exposition for the read path.

The serving stack (PRs 3-5) kept ad-hoc counters per layer; this package
gives the process one telemetry surface:

* **Metrics** (:mod:`repro.obs.metrics`) — a thread-safe process-wide
  registry of :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  instruments with label support, plus *collector* adapters
  (:mod:`repro.obs.collectors`) that expose the accounting the cache,
  readers, engine and daemon already keep.  ``REGISTRY.snapshot()`` is plain
  JSON-able data; :func:`render_prometheus` turns a snapshot into
  Prometheus text (``repro stats ADDR --prom`` scrapes exactly this).
* **Tracing** (:mod:`repro.obs.tracing`) — lightweight spans
  (``obs.span("decode", blocks=n)``) recorded into a bounded in-memory ring.
  A client-generated trace id rides the wire protocol's JSON header, so one
  remote read yields one trace tree spanning client encode, daemon
  fetch/decode/paste and the response send.  Off by default; when off, a
  span is one context-variable lookup.
* **Logging** (:mod:`repro.obs.logs`) — stdlib-``logging`` plumbing: the
  package-root ``NullHandler`` contract plus :func:`configure_logging` for
  processes that opt into access logs (``repro serve -v`` / ``--log-json``).

Quick tour::

    from repro import obs

    reads = obs.REGISTRY.counter("myapp_reads_total", "Reads issued.")
    reads.inc()

    obs.TRACER.enable()
    with obs.TRACER.trace("my-request"):
        with obs.span("phase-one", items=3):
            ...

    print(obs.render_prometheus(obs.REGISTRY.snapshot()))
"""

from repro.obs.collectors import (
    cache_collector,
    counter_family,
    engine_collector,
    gauge_family,
    reader_stats_family,
)
from repro.obs.logs import JsonLineFormatter, access_extra, configure_logging
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.tracing import TRACER, Span, Tracer, current_trace, format_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "label_snapshot",
    "merge_snapshots",
    "render_prometheus",
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "current_trace",
    "format_trace",
    "cache_collector",
    "engine_collector",
    "reader_stats_family",
    "counter_family",
    "gauge_family",
    "configure_logging",
    "JsonLineFormatter",
    "access_extra",
]
