"""Request tracing: lightweight spans in a bounded in-memory ring.

A *trace* is one logical request — a ``RemoteArray.__getitem__``, a daemon
request, a local view read — and a *span* is one timed stage inside it
(``fetch``, ``decode``, ``paste``, ``send``).  Instrumented code never names
a tracer; it calls :func:`span`, which consults the ambient trace context
(a :class:`contextvars.ContextVar`): with no trace active that is a single
lookup returning a shared no-op, so tracing costs nothing until someone
turns it on.

Traces cross the wire by id: the client opens a root span, ships
``{"trace": {"id": ..., "parent": ...}}`` in the request header, and the
daemon — when its tracer is enabled — parents its ``request`` span (and the
``fetch``/``decode``/``paste`` children the read path emits) on the client's
span.  Request-scoped daemon spans return to the client inside the response
header and are grafted into the client's ring, so one trace tree spans both
sides; only the daemon's ``send`` span (which by construction outlives the
response) stays server-side, retrievable via the ``trace`` wire op.

The ring (:meth:`Tracer.traces`) is bounded per trace count, so a long-lived
daemon keeps a sliding window of recent request trees and nothing grows
without bound.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "TRACER", "span", "current_trace", "format_trace"]

#: Ambient trace context: ``None`` (tracing inactive on this logical thread
#: of control) or a ``_TraceCtx`` naming the live tracer, trace and parent.
_CURRENT: "ContextVar[Optional[_TraceCtx]]" = ContextVar("repro_obs_trace", default=None)


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One completed, timed stage of a trace (plain data once finished)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "duration", "attrs")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], start: float, duration: float,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form — what crosses the wire and what the ring hands out."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=str(data.get("name", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_id=data.get("parent_id"),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"{self.duration * 1e3:.3f} ms, attrs={self.attrs})"
        )


class _TraceCtx:
    __slots__ = ("tracer", "trace_id", "span_id", "sink")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: Optional[str],
                 sink: Optional[List[Dict[str, Any]]]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.sink = sink


class _NoopSpan:
    """Shared do-nothing context manager: the cost of tracing-off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span into the ambient trace on exit."""

    __slots__ = ("_name", "_attrs", "_ctx", "_span_id", "_wall", "_perf", "_token")

    def __init__(self, name: str, attrs: Dict[str, Any], ctx: _TraceCtx) -> None:
        self._name = name
        self._attrs = attrs
        self._ctx = ctx
        self._span_id = _new_id(4)

    def __enter__(self) -> "_LiveSpan":
        self._wall = time.time()
        self._perf = time.perf_counter()
        self._token = _CURRENT.set(
            _TraceCtx(self._ctx.tracer, self._ctx.trace_id, self._span_id, self._ctx.sink)
        )
        return self

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (block counts, byte totals)."""
        self._attrs.update(attrs)

    @property
    def span_id(self) -> str:
        return self._span_id

    @property
    def trace_id(self) -> str:
        return self._ctx.trace_id

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._perf
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._ctx.tracer._record(
            Span(self._name, self._ctx.trace_id, self._span_id,
                 self._ctx.span_id, self._wall, duration, self._attrs),
            self._ctx.sink,
        )
        return False


def span(name: str, **attrs: Any):
    """Time one stage of the ambient trace; a no-op when no trace is active.

    Usage at the instrumentation sites::

        with obs.span("decode", blocks=len(handles)):
            ...

    The returned object (when live) supports ``.set(**attrs)`` for values
    known only mid-stage.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return _NOOP
    return _LiveSpan(name, attrs, ctx)


def current_trace() -> Optional[Dict[str, Any]]:
    """``{"id": trace_id, "parent": span_id}`` of the ambient trace, or ``None``.

    Exactly the wire shape the client puts under the request header's
    ``"trace"`` key.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return {"id": ctx.trace_id, "parent": ctx.span_id}


class Tracer:
    """Bounded ring of recent traces plus the entry points that start them.

    ``enabled`` gates *root creation only*: child spans follow whatever trace
    context is ambient, so a daemon whose tracer is enabled traces exactly
    the requests that asked for it (or all of them, when it opens its own
    roots) with zero configuration in the layers below.
    """

    def __init__(self, max_traces: int = 256) -> None:
        self.enabled = False
        self.max_traces = int(max_traces)
        self._lock = threading.Lock()
        # trace id -> (span dicts in completion order, set of span ids)
        self._ring: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()  # repro: guarded-by(_lock)
        self._seen: Dict[str, set] = {}  # repro: guarded-by(_lock)

    # -- lifecycle --------------------------------------------------------------
    def enable(self, max_traces: Optional[int] = None) -> "Tracer":
        if max_traces is not None:
            self.max_traces = int(max_traces)
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seen.clear()

    # -- starting traces --------------------------------------------------------
    def trace(self, name: str, trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              sink: Optional[List[Dict[str, Any]]] = None, **attrs: Any):
        """Open a root (or wire-continued) span for one logical request.

        With the tracer disabled this is the same no-op as :func:`span`.  If
        a trace is already ambient (a traced caller above us), the new span
        nests inside it and ``trace_id``/``parent_id`` are ignored — one
        request stays one trace.  ``sink``, when given, additionally receives
        every span completed under this root (the daemon uses it to return a
        request's spans in the response header).
        """
        ambient = _CURRENT.get()
        if ambient is not None:
            return _LiveSpan(name, attrs, ambient)
        if not self.enabled:
            return _NOOP
        # The ctx's span_id is what the root span records as its parent:
        # the wire parent when the caller sent one, else nothing (a root).
        ctx = _TraceCtx(self, trace_id or _new_id(8), parent_id, sink)
        return _LiveSpan(name, attrs, ctx)

    # -- recording --------------------------------------------------------------
    def _record(self, completed: Span, sink: Optional[List[Dict[str, Any]]]) -> None:
        data = completed.to_dict()
        if sink is not None:
            sink.append(data)
        self._store(data)

    def add_span(self, name: str, trace_id: str, parent_id: Optional[str] = None,
                 start: float = 0.0, duration: float = 0.0, **attrs: Any) -> None:
        """Record one externally-timed span.

        For stages that by construction outlive the scope a context manager
        could cover — the daemon's ``send`` span is timed around ``sendmsg``
        and recorded after the response (including the request's other spans)
        has already left the process.
        """
        self._store(
            Span(name, str(trace_id), _new_id(4), parent_id, start, duration,
                 dict(attrs)).to_dict()
        )

    def graft(self, spans: List[Dict[str, Any]]) -> None:
        """Adopt spans another process completed for traces in this ring.

        Span ids dedupe, so grafting spans that were (in-process) already
        recorded by the same tracer is harmless.
        """
        for data in spans:
            if isinstance(data, dict) and data.get("trace_id"):
                self._store(dict(data))

    def _store(self, data: Dict[str, Any]) -> None:
        trace_id = str(data["trace_id"])
        with self._lock:
            spans = self._ring.get(trace_id)
            if spans is None:
                spans = self._ring[trace_id] = []
                self._seen[trace_id] = set()
                while len(self._ring) > self.max_traces:
                    evicted, _ = self._ring.popitem(last=False)
                    self._seen.pop(evicted, None)
            else:
                self._ring.move_to_end(trace_id)
            span_id = str(data.get("span_id", ""))
            if span_id in self._seen[trace_id]:
                return
            self._seen[trace_id].add(span_id)
            spans.append(data)

    # -- reading ----------------------------------------------------------------
    def trace_spans(self, trace_id: str) -> List[Dict[str, Any]]:
        """All recorded spans of one trace (completion order)."""
        with self._lock:
            return [dict(s) for s in self._ring.get(str(trace_id), ())]

    def traces(self, limit: Optional[int] = None) -> Dict[str, List[Dict[str, Any]]]:
        """Recent traces, oldest first; ``limit`` keeps only the newest N."""
        with self._lock:
            items = list(self._ring.items())
        if limit is not None:
            items = items[-int(limit):]
        return {tid: [dict(s) for s in spans] for tid, spans in items}

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def format_trace(spans: List[Dict[str, Any]]) -> str:
    """Render one trace's spans as an indented tree (roots first)."""
    by_parent: Dict[Optional[str], List[Dict[str, Any]]] = {}
    ids = {s.get("span_id") for s in spans}
    for s in spans:
        parent = s.get("parent_id")
        by_parent.setdefault(parent if parent in ids else None, []).append(s)
    lines: List[str] = []

    def walk(parent: Optional[str], depth: int) -> None:
        for s in sorted(by_parent.get(parent, ()), key=lambda x: x.get("start", 0.0)):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(s.get("attrs", {}).items()))
            lines.append(
                f"{'  ' * depth}{s.get('name')}  {s.get('duration', 0.0) * 1e3:.3f} ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            walk(s.get("span_id"), depth + 1)

    walk(None, 0)
    return "\n".join(lines)


#: The process-wide default tracer: the client, daemon and CLI all use it
#: unless handed a private one.
TRACER = Tracer()
