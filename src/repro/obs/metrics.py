"""Process-wide metrics registry: counters, gauges, histograms, collectors.

The registry is the one place every layer of the read path reports into —
container readers, the codec engine, lazy views, the daemon and the remote
client all register or observe here, so one snapshot describes the whole
process.  Two reporting styles coexist on purpose:

* **Instruments** (:class:`Counter` / :class:`Gauge` / :class:`Histogram`)
  are owned by the registry and mutated inline by instrumented code.  An
  observation is a few arithmetic operations under one small lock; with the
  registry disabled (``REGISTRY.enabled = False``) it is a single attribute
  check, which is what lets ``bench_hotpath.py`` price the overhead.
* **Collectors** wrap state that already exists — ``BlockCache.stats``,
  ``ContainerReader`` fetch counters, ``CodecEngine`` batch stats, daemon
  counters — instead of duplicating it.  A collector is a callable invoked
  at snapshot time that returns metric families as plain data; it is held
  via a weak reference to its owner, so registering a cache with the
  process-wide registry never keeps the cache alive.

A *snapshot* is a JSON-able list of metric families::

    {"name": "repro_cache_hits_total", "type": "counter", "help": "...",
     "samples": [{"labels": {"cache": "serve"}, "value": 41}]}

(histogram samples carry ``buckets``/``sum``/``count`` instead of
``value``), which is exactly what the daemon's ``stats`` wire op ships and
what :func:`repro.obs.prometheus.render_prometheus` renders as text.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Anything speaking the lock protocol.  typeshed models ``threading.Lock``
#: as a factory *function*, so it is not usable in annotations directly.
LockLike = Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): spans a ~50 µs cache hit through a
#: multi-second cold whole-level decode, Prometheus-style.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST or any(c not in _VALID_REST for c in name[1:]):
        raise ValueError(
            f"bad metric name {name!r}; use [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


class _Metric:
    """Shared base: name/help/label bookkeeping plus the child cache.

    A *child* is one labelled time series; ``labels()`` interns it so hot
    paths resolve their series once at import time and then mutate a plain
    object.  Unlabelled metrics use the single default child.
    """

    type: str = ""

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        self._registry = registry
        self.name = _check_name(str(name))
        self.help = str(help)
        self.labelnames = tuple(str(n) for n in labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}  # repro: guarded-by(_lock)
        if not self.labelnames:
            self._default = self._make_child()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: Any):
        """The child series for one label combination (interned, thread-safe)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        if not self.labelnames:
            return [((), self._default)]
        with self._lock:
            return list(self._children.items())

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def family(self) -> Dict[str, Any]:
        """This metric as one snapshot family (plain data)."""
        return {
            "name": self.name,
            "type": self.type,
            "help": self.help,
            "samples": [
                {"labels": self._label_dict(key), **child.sample()}
                for key, child in self._series()
            ],
        }


class _CounterChild:
    __slots__ = ("_lock", "_value", "_registry")

    def __init__(self, lock: "LockLike", registry: "MetricsRegistry") -> None:
        self._lock = lock
        self._registry = registry
        self._value = 0.0  # repro: guarded-by(_lock)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) is a gauge move")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, float]:
        return {"value": self.value}


class Counter(_Metric):
    """Monotonically increasing count (requests served, bytes sent)."""

    type = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock, self._registry)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        (self.labels(**labels) if labels else self._default).inc(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_registry")

    def __init__(self, lock: "LockLike", registry: "MetricsRegistry") -> None:
        self._lock = lock
        self._registry = registry
        self._value = 0.0  # repro: guarded-by(_lock)

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge(_Metric):
    """A value that can go both ways (open readers, active connections)."""

    type = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock, self._registry)

    def set(self, value: float, **labels: Any) -> None:
        (self.labels(**labels) if labels else self._default).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        (self.labels(**labels) if labels else self._default).inc(amount)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        (self.labels(**labels) if labels else self._default).dec(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _HistogramChild:
    __slots__ = ("_lock", "_registry", "_bounds", "_counts", "_sum", "_count")

    def __init__(
        self, lock: "LockLike", registry: "MetricsRegistry",
        bounds: Tuple[float, ...],
    ) -> None:
        self._lock = lock
        self._registry = registry
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf  # repro: guarded-by(_lock)
        self._sum = 0.0  # repro: guarded-by(_lock)
        self._count = 0  # repro: guarded-by(_lock)

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        # A handful of arithmetic ops: linear scan beats bisect for the ~16
        # default buckets and typical small observations land in the first few.
        bounds = self._bounds
        i = 0
        n = len(bounds)
        while i < n and value > bounds[i]:
            i += 1
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    def sample(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, c in zip(self._bounds, counts):
            running += c
            cumulative[repr(float(bound))] = running
        cumulative["+Inf"] = running + counts[-1]
        return {"buckets": cumulative, "sum": total, "count": count}


class Histogram(_Metric):
    """Cumulative-bucket latency/size distribution.

    ``observe`` is a short linear scan plus three additions under one lock —
    cheap enough to sit on every request of the hot read path.
    """

    type = "histogram"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str,
        labelnames: Sequence[str] = (), buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must be increasing, got {buckets}")
        self._bounds = bounds
        super().__init__(registry, name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self._registry, self._bounds)

    def observe(self, value: float, **labels: Any) -> None:
        (self.labels(**labels) if labels else self._default).observe(value)


class MetricsRegistry:
    """Thread-safe metric + collector registry with JSON-able snapshots.

    One process-wide instance (:data:`REGISTRY`) backs all built-in
    instrumentation; tests build private registries.  ``enabled = False``
    turns every instrument mutation into a single attribute check (the
    overhead-gate baseline) — snapshots still work and collectors still run,
    since they only read state owned elsewhere.
    """

    def __init__(self) -> None:
        self.enabled = True
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}  # repro: guarded-by(_lock)
        # collector id -> (callable, weakref-to-owner or None)
        self._collectors: Dict[int, Tuple[Callable, Optional[weakref.ref]]] = {}  # repro: guarded-by(_lock)

    # -- instrument constructors ----------------------------------------------
    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or existing.labelnames != metric.labelnames:
                    raise ValueError(
                        f"metric {metric.name!r} already registered with a "
                        "different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        """Register (or return the existing) counter ``name``."""
        return self._register(Counter(self, name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Register (or return the existing) gauge ``name``."""
        return self._register(Gauge(self, name, help, labelnames))

    def histogram(
        self, name: str, help: str, labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Register (or return the existing) histogram ``name``."""
        return self._register(Histogram(self, name, help, labelnames, buckets))

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- collectors ------------------------------------------------------------
    def add_collector(self, collect: Callable[[], Iterable[Dict[str, Any]]],
                      owner: Any = None) -> Callable:
        """Register a snapshot-time callable returning metric families.

        ``owner`` (when weakref-able) tethers the collector's lifetime: once
        the owner is garbage-collected the collector is dropped automatically,
        so wrapping a short-lived cache or daemon never leaks.  Returns
        ``collect`` for :meth:`remove_collector`.
        """
        ref = None
        if owner is not None:
            try:
                ref = weakref.ref(owner)
            except TypeError:
                ref = None
        with self._lock:
            self._collectors[id(collect)] = (collect, ref)
        return collect

    def remove_collector(self, collect: Callable) -> None:
        with self._lock:
            self._collectors.pop(id(collect), None)

    # -- snapshot ---------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Every family — instruments plus collectors — as sorted plain data.

        Families sharing a name are merged; samples sharing a label set are
        summed (two daemons in one process legitimately report into the same
        counter family).  Output ordering is deterministic: families by name,
        samples by label items.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.items())
        families: List[Dict[str, Any]] = [m.family() for m in metrics]
        dead = []
        for key, (collect, ref) in collectors:
            if ref is not None and ref() is None:
                dead.append(key)
                continue
            families.extend(collect())
        if dead:
            with self._lock:
                for key in dead:
                    self._collectors.pop(key, None)
        return _merge_families(families)


def _merge_families(families: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    merged: Dict[str, Dict[str, Any]] = {}
    for fam in families:
        name = fam["name"]
        into = merged.get(name)
        if into is None:
            merged[name] = {
                "name": name,
                "type": fam.get("type", "untyped"),
                "help": fam.get("help", ""),
                "samples": list(fam.get("samples", ())),
            }
            continue
        if into["type"] != fam.get("type", "untyped"):
            raise ValueError(
                f"metric family {name!r} reported with conflicting types "
                f"{into['type']!r} and {fam.get('type')!r}"
            )
        into["samples"].extend(fam.get("samples", ()))
    out = []
    for fam in sorted(merged.values(), key=lambda f: f["name"]):
        fam["samples"] = _merge_samples(fam["samples"], fam["type"])
        out.append(fam)
    return out


def _merge_samples(samples: List[Dict[str, Any]], kind: str) -> List[Dict[str, Any]]:
    by_labels: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
    for sample in samples:
        labels = {str(k): str(v) for k, v in sample.get("labels", {}).items()}
        key = tuple(sorted(labels.items()))
        into = by_labels.get(key)
        if into is None:
            copied = dict(sample)
            copied["labels"] = labels
            if kind == "histogram" and "buckets" in copied:
                copied["buckets"] = dict(copied["buckets"])
            by_labels[key] = copied
        elif kind == "histogram":
            for bound, count in sample.get("buckets", {}).items():
                into["buckets"][bound] = into["buckets"].get(bound, 0) + count
            into["sum"] = into.get("sum", 0.0) + sample.get("sum", 0.0)
            into["count"] = into.get("count", 0) + sample.get("count", 0)
        else:
            into["value"] = into.get("value", 0.0) + sample.get("value", 0.0)
    return [by_labels[key] for key in sorted(by_labels)]


def label_snapshot(
    families: List[Dict[str, Any]], labels: Mapping[str, str]
) -> List[Dict[str, Any]]:
    """Deep-copy a snapshot with extra labels stamped onto every sample.

    The multi-process aggregation primitive: a router stamps each shard
    daemon's snapshot with ``{"shard": name}`` before merging, so one scrape
    of the router distinguishes every process's series.  Labels already
    present on a sample win — stamping never rewrites a family's own
    dimensions (e.g. a shard's ``op`` or ``cache`` labels survive).
    """
    extra = {str(k): str(v) for k, v in labels.items()}
    out = []
    for fam in families:
        samples = []
        for sample in fam.get("samples", ()):
            copied = dict(sample)
            copied["labels"] = {**extra, **dict(sample.get("labels", {}))}
            if "buckets" in copied:
                copied["buckets"] = dict(copied["buckets"])
            samples.append(copied)
        out.append({**fam, "samples": samples})
    return out


def merge_snapshots(*snapshots: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge registry snapshots into one, exactly like one registry would.

    Families sharing a name concatenate (types must agree); samples sharing
    a label set sum.  Feed shard snapshots through :func:`label_snapshot`
    first so distinct processes never collapse into one series.
    """
    families: List[Dict[str, Any]] = []
    for snap in snapshots:
        families.extend(snap)
    return _merge_families(families)


#: The process-wide default registry every built-in instrument reports into.
REGISTRY = MetricsRegistry()
