"""Collector adapters over the accounting the read path already keeps.

The cache, the container readers, the codec engine and the daemon each grew
their own counters PR by PR; these adapters expose them as registry metric
families *at snapshot time* instead of mirroring every increment — no second
set of counters to keep consistent, no write amplification on the hot path.
Each ``*_collector`` returns a callable suitable for
:meth:`repro.obs.MetricsRegistry.add_collector`; pass the wrapped object as
``owner`` so the registration dies with it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "cache_collector",
    "engine_collector",
    "reader_stats_family",
    "counter_family",
    "gauge_family",
]


def counter_family(name: str, help: str, value: float,
                   labels: Optional[Mapping[str, str]] = None) -> Dict[str, Any]:
    """One single-sample counter family (plain data)."""
    return {
        "name": name, "type": "counter", "help": help,
        "samples": [{"labels": dict(labels or {}), "value": float(value)}],
    }


def gauge_family(name: str, help: str, value: float,
                 labels: Optional[Mapping[str, str]] = None) -> Dict[str, Any]:
    """One single-sample gauge family (plain data)."""
    return {
        "name": name, "type": "gauge", "help": help,
        "samples": [{"labels": dict(labels or {}), "value": float(value)}],
    }


def cache_collector(cache, labels: Optional[Mapping[str, str]] = None) -> Callable:
    """Wrap a :class:`repro.array.BlockCache`'s own ``stats`` snapshot.

    Counters (hits/misses/evictions) and gauges (blocks held, logical bytes,
    resident bytes) come straight from the cache's instrumentation; ``labels``
    distinguishes multiple caches in one process (e.g. ``{"cache": "serve"}``).
    """
    labels = dict(labels or {})

    def collect() -> List[Dict[str, Any]]:
        stats = cache.stats
        return [
            counter_family("repro_cache_hits_total",
                           "Block cache lookups served from the cache.",
                           stats["hits"], labels),
            counter_family("repro_cache_misses_total",
                           "Block cache lookups that required a decode.",
                           stats["misses"], labels),
            counter_family("repro_cache_evictions_total",
                           "Blocks evicted from the cache by the LRU bounds.",
                           stats["evictions"], labels),
            gauge_family("repro_cache_blocks",
                         "Decoded blocks currently held by the cache.",
                         stats["size"], labels),
            gauge_family("repro_cache_bytes",
                         "Logical bytes of the cached blocks (the capacity bound).",
                         stats["nbytes"], labels),
            gauge_family("repro_cache_bytes_resident",
                         "Bytes the cache entries actually pin in memory.",
                         stats["bytes_resident"], labels),
        ]

    return collect


def engine_collector(engine, labels: Optional[Mapping[str, str]] = None) -> Callable:
    """Wrap a :class:`repro.store.engine.CodecEngine`'s batch counters."""
    base = dict(labels or {})
    base.setdefault("backend", engine.executor)

    def collect() -> List[Dict[str, Any]]:
        stats = engine.stats
        return [
            counter_family("repro_engine_batches_total",
                           "Encode/decode batches submitted to the codec engine.",
                           stats["encode_batches"] + stats["decode_batches"], base),
            counter_family("repro_engine_blocks_encoded_total",
                           "Unit blocks encoded through the codec engine.",
                           stats["blocks_encoded"], base),
            counter_family("repro_engine_blocks_decoded_total",
                           "Unit blocks decoded through the codec engine.",
                           stats["blocks_decoded"], base),
        ]

    return collect


#: ``ContainerReader.stats`` keys -> (metric name, help).  Shared by the
#: daemon's aggregated reader collector and anything else exposing reader
#: accounting, so names cannot drift between surfaces.
READER_STAT_METRICS = {
    "blocks_decoded": (
        "repro_store_blocks_decoded_total",
        "Blocks decoded from containers (post-cache misses only).",
    ),
    "payload_bytes_read": (
        "repro_store_payload_bytes_total",
        "Compressed payload bytes handed to codecs.",
    ),
    "fetch_ranges": (
        "repro_store_fetch_ranges_total",
        "Coalesced byte ranges fetched from container files.",
    ),
    "fetch_bytes": (
        "repro_store_fetch_bytes_total",
        "Bytes covered by coalesced fetch ranges (payloads plus merged gaps).",
    ),
}


def reader_stats_family(stats: Mapping[str, int],
                        labels: Optional[Mapping[str, str]] = None) -> List[Dict[str, Any]]:
    """``ContainerReader.stats``-shaped totals as counter families."""
    labels = dict(labels or {})
    return [
        counter_family(name, help, stats.get(key, 0), labels)
        for key, (name, help) in READER_STAT_METRICS.items()
    ]
