"""Perona-Malik anisotropic diffusion baseline.

A classic edge-preserving denoiser: the field diffuses with a conductivity
that decreases with the local gradient magnitude, so smooth regions are
smoothed while sharp features are preserved.  The implementation is the
standard explicit finite-difference iteration, vectorised over the whole
array (neighbour differences via :func:`numpy.roll`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["anisotropic_diffusion"]


def _conductance(gradient: np.ndarray, kappa: float, option: int) -> np.ndarray:
    if option == 1:
        return np.exp(-((gradient / kappa) ** 2))
    return 1.0 / (1.0 + (gradient / kappa) ** 2)


def anisotropic_diffusion(
    data: np.ndarray,
    n_iterations: int = 5,
    kappa: float | None = None,
    gamma: float = 0.1,
    option: int = 1,
) -> np.ndarray:
    """Perona-Malik anisotropic diffusion (the "Anisotropic Diffusion" column of Table I).

    Parameters
    ----------
    n_iterations:
        Number of explicit diffusion steps.
    kappa:
        Conduction threshold separating "edges" from "noise"; defaults to 10 %
        of the value range.
    gamma:
        Time step; must satisfy ``gamma <= 1 / (2 * ndim)`` for stability and
        is clipped accordingly.
    option:
        1 for the exponential conductance, 2 for the rational one.
    """
    field = np.asarray(data, dtype=np.float64).copy()
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    if kappa is None:
        value_range = float(field.max() - field.min())
        kappa = 0.1 * value_range if value_range > 0 else 1.0
    gamma = min(float(gamma), 1.0 / (2.0 * field.ndim))

    for _ in range(int(n_iterations)):
        update = np.zeros_like(field)
        for axis in range(field.ndim):
            forward = np.roll(field, -1, axis=axis) - field
            backward = np.roll(field, 1, axis=axis) - field
            # Zero-flux boundaries: cancel the wrapped differences.
            fwd_slice = [slice(None)] * field.ndim
            fwd_slice[axis] = slice(-1, None)
            forward[tuple(fwd_slice)] = 0.0
            bwd_slice = [slice(None)] * field.ndim
            bwd_slice[axis] = slice(0, 1)
            backward[tuple(bwd_slice)] = 0.0
            update += _conductance(np.abs(forward), kappa, option) * forward
            update += _conductance(np.abs(backward), kappa, option) * backward
        field += gamma * update
    return field
