"""Image smoothing / denoising filters used as post-processing baselines.

Table I of the paper compares its error-bounded post-processing against three
classic filters (median, Gaussian blur, anisotropic diffusion) applied to ZFP
decompressed data, showing that the filters *reduce* PSNR because they ignore
the error-bounded nature of the data.  The filters live here so the benchmark
can reproduce that comparison.
"""

from repro.filters.anisotropic import anisotropic_diffusion
from repro.filters.gaussian import gaussian_blur
from repro.filters.median import median_smooth

__all__ = ["gaussian_blur", "median_smooth", "anisotropic_diffusion"]
