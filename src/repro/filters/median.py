"""Median filter baseline."""

from __future__ import annotations

import numpy as np
from scipy.ndimage import median_filter

__all__ = ["median_smooth"]


def median_smooth(data: np.ndarray, size: int = 3) -> np.ndarray:
    """Median filtering (the "Median Filter" column of Table I)."""
    if size < 2:
        raise ValueError("size must be at least 2")
    return median_filter(np.asarray(data, dtype=np.float64), size=int(size), mode="nearest")
