"""Gaussian blur baseline filter."""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

__all__ = ["gaussian_blur"]


def gaussian_blur(data: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Isotropic Gaussian smoothing (the "Gaussian Blur" column of Table I)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return gaussian_filter(np.asarray(data, dtype=np.float64), sigma=float(sigma))
