"""Per-block offset/length/level index of a v2 container.

The index is the piece that turns an opaque compressed file into a
random-access store: one fixed-width binary record per unit block, written
between the JSON header and the data section, so a reader can locate the
payload of any ``(level, block-coordinate)`` pair with two small reads and
one seek — no payload outside the query is ever touched.

Binary layout (little-endian, ``n_entries`` records)::

    int64 level | int64 c0 | int64 c1 | int64 c2 | int64 offset | int64 length

``c2`` is zero for 2-D levels; ``offset`` is relative to the start of the
data section; records are grouped by level and Morton-ordered within a level
(the writer guarantees this, the reader relies only on grouping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compressors.errors import DecompressionError
from repro.store.query import BBox, blocks_in_range

__all__ = ["BlockIndex", "RECORD_FIELDS", "RECORD_BYTES"]

RECORD_FIELDS = 6
RECORD_BYTES = RECORD_FIELDS * 8


@dataclass
class BlockIndex:
    """Columnar view of the index records of one container.

    Attributes
    ----------
    levels:
        ``(n,)`` level index of every block.
    coords:
        ``(n, 3)`` unit-block coordinates (third column zero for 2-D data).
    offsets, lengths:
        Payload location of every block, relative to the data section.
    """

    levels: np.ndarray
    coords: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray

    @property
    def n_entries(self) -> int:
        return int(self.levels.shape[0])

    @property
    def nbytes_payloads(self) -> int:
        """Total size of the data section in bytes."""
        return int(self.lengths.sum())

    def to_bytes(self) -> bytes:
        records = np.empty((self.n_entries, RECORD_FIELDS), dtype="<i8")
        records[:, 0] = self.levels
        records[:, 1:4] = self.coords
        records[:, 4] = self.offsets
        records[:, 5] = self.lengths
        return records.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes, n_entries: int) -> "BlockIndex":
        expected = int(n_entries) * RECORD_BYTES
        if len(blob) < expected:
            raise DecompressionError(
                f"truncated block index: expected {expected} bytes, got {len(blob)}"
            )
        records = np.frombuffer(blob[:expected], dtype="<i8").reshape(-1, RECORD_FIELDS)
        records = records.astype(np.int64)
        return cls(
            levels=records[:, 0],
            coords=records[:, 1:4],
            offsets=records[:, 4],
            lengths=records[:, 5],
        )

    @classmethod
    def build(cls, per_level) -> "BlockIndex":
        """Assemble an index from ``(level, coords, lengths)`` triples.

        ``per_level`` iterates levels in file order; offsets are assigned by
        accumulating the payload lengths in that order.
        """
        levels, coords3, lengths = [], [], []
        for level, coords, lens in per_level:
            n = coords.shape[0]
            levels.append(np.full(n, int(level), dtype=np.int64))
            padded = np.zeros((n, 3), dtype=np.int64)
            padded[:, : coords.shape[1]] = coords
            coords3.append(padded)
            lengths.append(np.asarray(lens, dtype=np.int64))
        levels = np.concatenate(levels)
        lengths = np.concatenate(lengths)
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
        return cls(
            levels=levels,
            coords=np.concatenate(coords3, axis=0),
            offsets=offsets,
            lengths=lengths,
        )

    # -- queries --------------------------------------------------------------
    def select(
        self, level: int, ndim: int, block_range: Optional[BBox] = None
    ) -> np.ndarray:
        """Index-entry positions of one level's blocks, optionally range-filtered.

        Returns the integer positions (into the columnar arrays) of the
        blocks of ``level`` whose coordinates fall inside ``block_range``
        (half-open, per-axis); with no range, all of the level's blocks.
        """
        positions = np.flatnonzero(self.levels == int(level))
        if block_range is not None:
            keep = blocks_in_range(self.coords[positions, :ndim], block_range)
            positions = positions[keep]
        return positions
