"""Region / bounding-box arithmetic for block-indexed containers.

All queries against the v2 block store reduce to the same few integer
operations: normalise a cell-space bounding box against a level shape, turn
it into a half-open range of unit-block coordinates, select the index entries
whose blocks intersect that range, and compute the destination/source slice
pairs used to paste each decoded block into the query output.  Keeping that
arithmetic here (pure functions over plain tuples and arrays) keeps the
format reader small and makes the intersection logic unit-testable without
any file I/O.

A *bbox* is a tuple of per-axis ``(lo, hi)`` pairs in cell coordinates,
half-open like Python slices; a *block range* is the same structure in
unit-block coordinates.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "BBox",
    "normalize_bbox",
    "bbox_to_block_range",
    "blocks_in_range",
    "block_cell_slices",
    "paste_slices",
]

BBox = Tuple[Tuple[int, int], ...]


def normalize_bbox(bbox: Sequence[Sequence[int]], shape: Sequence[int]) -> BBox:
    """Validate and clamp a cell-space bounding box against ``shape``.

    Accepts any sequence of ``(lo, hi)`` pairs (one per axis, half-open);
    returns a canonical tuple-of-tuples.  Raises ``ValueError`` for the wrong
    number of axes or an empty axis; a non-empty axis that lies *entirely*
    outside ``[0, n)`` gets its own diagnostic (rather than the confusing
    "empty after clamping" one), shared by every read surface that clamps —
    ``Store.read_roi``, ``ContainerReader.read_roi`` and the read daemon.
    """
    shape = tuple(int(s) for s in shape)
    if len(bbox) != len(shape):
        raise ValueError(f"bbox has {len(bbox)} axes but the level is {len(shape)}-dimensional")
    out = []
    for axis, (pair, n) in enumerate(zip(bbox, shape)):
        lo, hi = (int(pair[0]), int(pair[1]))
        if lo < hi and (hi <= 0 or lo >= n):
            raise ValueError(
                f"bbox axis {axis} ({lo}, {hi}) lies entirely outside the domain [0, {n})"
            )
        lo = max(0, lo)
        hi = min(n, hi)
        if lo >= hi:
            raise ValueError(
                f"bbox axis {axis} is empty after clamping to [0, {n}): ({pair[0]}, {pair[1]})"
            )
        out.append((lo, hi))
    return tuple(out)


def bbox_to_block_range(bbox: BBox, unit_size: int) -> BBox:
    """Half-open unit-block coordinate range covering a cell-space bbox."""
    u = int(unit_size)
    return tuple((lo // u, -(-hi // u)) for lo, hi in bbox)


def blocks_in_range(coords: np.ndarray, block_range: BBox) -> np.ndarray:
    """Boolean mask over ``coords`` (n, ndim) selecting blocks inside a range."""
    coords = np.asarray(coords)
    keep = np.ones(coords.shape[0], dtype=bool)
    for axis, (lo, hi) in enumerate(block_range):
        keep &= (coords[:, axis] >= lo) & (coords[:, axis] < hi)
    return keep


def block_cell_slices(coord: Sequence[int], unit_size: int) -> Tuple[slice, ...]:
    """Cell-space slices covered by the unit block at ``coord``."""
    u = int(unit_size)
    return tuple(slice(int(c) * u, (int(c) + 1) * u) for c in coord)


def paste_slices(
    coord: Sequence[int], unit_size: int, bbox: BBox
) -> Tuple[Tuple[slice, ...], Tuple[slice, ...]]:
    """Destination (bbox-relative) and source (block-relative) paste slices.

    For a block at ``coord`` intersecting ``bbox``, returns the slice pair
    such that ``out[dst] = block[src]`` copies exactly the overlapping cells
    into an output array shaped like the bbox.
    """
    u = int(unit_size)
    dst, src = [], []
    for c, (lo, hi) in zip(coord, bbox):
        start = int(c) * u
        a = max(start, lo)
        b = min(start + u, hi)
        dst.append(slice(a - lo, b - lo))
        src.append(slice(a - start, b - start))
    return tuple(dst), tuple(src)
