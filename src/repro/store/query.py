"""Region / bounding-box arithmetic for block-indexed containers.

All queries against the v2 block store reduce to the same few integer
operations: normalise a cell-space bounding box against a level shape, turn
it into a half-open range of unit-block coordinates, select the index entries
whose blocks intersect that range, and compute the destination/source slice
pairs used to paste each decoded block into the query output.  Keeping that
arithmetic here (pure functions over plain tuples and arrays) keeps the
format reader small and makes the intersection logic unit-testable without
any file I/O.

A *bbox* is a tuple of per-axis ``(lo, hi)`` pairs in cell coordinates,
half-open like Python slices; a *block range* is the same structure in
unit-block coordinates.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "BBox",
    "normalize_bbox",
    "bbox_to_block_range",
    "blocks_in_range",
    "block_cell_slices",
    "paste_slices",
    "paste_slices_batch",
    "bounds_to_slices",
    "coalesce_ranges",
]

BBox = Tuple[Tuple[int, int], ...]


def normalize_bbox(bbox: Sequence[Sequence[int]], shape: Sequence[int]) -> BBox:
    """Validate and clamp a cell-space bounding box against ``shape``.

    Accepts any sequence of ``(lo, hi)`` pairs (one per axis, half-open);
    returns a canonical tuple-of-tuples.  Raises ``ValueError`` for the wrong
    number of axes or an empty axis; a non-empty axis that lies *entirely*
    outside ``[0, n)`` gets its own diagnostic (rather than the confusing
    "empty after clamping" one), shared by every read surface that clamps —
    ``Store.read_roi``, ``ContainerReader.read_roi`` and the read daemon.
    """
    shape = tuple(int(s) for s in shape)
    if len(bbox) != len(shape):
        raise ValueError(f"bbox has {len(bbox)} axes but the level is {len(shape)}-dimensional")
    out = []
    for axis, (pair, n) in enumerate(zip(bbox, shape)):
        lo, hi = (int(pair[0]), int(pair[1]))
        if lo < hi and (hi <= 0 or lo >= n):
            raise ValueError(
                f"bbox axis {axis} ({lo}, {hi}) lies entirely outside the domain [0, {n})"
            )
        lo = max(0, lo)
        hi = min(n, hi)
        if lo >= hi:
            raise ValueError(
                f"bbox axis {axis} is empty after clamping to [0, {n}): ({pair[0]}, {pair[1]})"
            )
        out.append((lo, hi))
    return tuple(out)


def bbox_to_block_range(bbox: BBox, unit_size: int) -> BBox:
    """Half-open unit-block coordinate range covering a cell-space bbox."""
    u = int(unit_size)
    return tuple((lo // u, -(-hi // u)) for lo, hi in bbox)


def blocks_in_range(coords: np.ndarray, block_range: BBox) -> np.ndarray:
    """Boolean mask over ``coords`` (n, ndim) selecting blocks inside a range."""
    coords = np.asarray(coords)
    keep = np.ones(coords.shape[0], dtype=bool)
    for axis, (lo, hi) in enumerate(block_range):
        keep &= (coords[:, axis] >= lo) & (coords[:, axis] < hi)
    return keep


def block_cell_slices(coord: Sequence[int], unit_size: int) -> Tuple[slice, ...]:
    """Cell-space slices covered by the unit block at ``coord``."""
    u = int(unit_size)
    return tuple(slice(int(c) * u, (int(c) + 1) * u) for c in coord)


def paste_slices(
    coord: Sequence[int], unit_size: int, bbox: BBox
) -> Tuple[Tuple[slice, ...], Tuple[slice, ...]]:
    """Destination (bbox-relative) and source (block-relative) paste slices.

    For a block at ``coord`` intersecting ``bbox``, returns the slice pair
    such that ``out[dst] = block[src]`` copies exactly the overlapping cells
    into an output array shaped like the bbox.
    """
    u = int(unit_size)
    dst, src = [], []
    for c, (lo, hi) in zip(coord, bbox):
        start = int(c) * u
        a = max(start, lo)
        b = min(start + u, hi)
        dst.append(slice(a - lo, b - lo))
        src.append(slice(a - start, b - start))
    return tuple(dst), tuple(src)


def paste_slices_batch(
    coords: np.ndarray, unit_size: int, bbox: BBox
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`paste_slices` over every block at once.

    For ``coords`` of shape ``(n, ndim)`` returns ``(dst, src, full)``:
    ``dst``/``src`` are ``(n, ndim, 2)`` int64 bound arrays (``[..., 0]`` the
    start, ``[..., 1]`` the stop of each axis slice) and ``full`` is a
    boolean mask marking blocks whose source window covers the whole unit
    block — the blocks a decoder may write straight into the destination.
    One NumPy call per bound instead of a Python loop per block: this is the
    batch planner behind :meth:`repro.array.CompressedArray.__getitem__`.
    """
    coords = np.asarray(coords, dtype=np.int64)
    n = coords.shape[0]
    ndim = len(bbox)
    coords = coords.reshape(n, ndim)
    u = np.int64(int(unit_size))
    lo = np.fromiter((b[0] for b in bbox), dtype=np.int64, count=ndim)
    hi = np.fromiter((b[1] for b in bbox), dtype=np.int64, count=ndim)
    start = coords * u
    a = np.maximum(start, lo)
    b = np.minimum(start + u, hi)
    dst = np.stack([a - lo, b - lo], axis=-1)
    src = np.stack([a - start, b - start], axis=-1)
    if ndim:
        full = np.logical_and.reduce(
            (src[:, :, 0] == 0) & (src[:, :, 1] == u), axis=1
        )
    else:
        full = np.ones(n, dtype=bool)
    return dst, src, full


def bounds_to_slices(bounds: np.ndarray) -> Tuple[slice, ...]:
    """One ``(ndim, 2)`` bound row (from :func:`paste_slices_batch`) as slices."""
    return tuple(slice(int(lo), int(hi)) for lo, hi in bounds)


def coalesce_ranges(
    offsets: np.ndarray, lengths: np.ndarray, max_gap: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge ``(offset, length)`` byte ranges into covering fetch ranges.

    Ranges closer than ``max_gap`` bytes (or overlapping) are merged so a
    reader can serve many blocks with one contiguous fetch each.  Returns
    ``(fetch_lo, fetch_hi, which)``: the merged half-open ranges sorted by
    offset, plus for every *input* range the index of the merged range that
    contains it, so ``offsets[i]``'s payload lives at
    ``fetch[which[i]][offsets[i] - fetch_lo[which[i]] : ... + lengths[i]]``.
    Fully vectorised — one ``argsort`` plus a handful of NumPy calls,
    regardless of how many ranges are requested.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    n = offsets.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    gap = np.int64(max(0, int(max_gap)))
    order = np.argsort(offsets, kind="stable")
    o = offsets[order]
    ends = o + lengths[order]
    # A new fetch range starts wherever the next offset lies beyond the
    # furthest end seen so far (plus the merge gap).
    reach = np.maximum.accumulate(ends)
    starts_new = np.empty(n, dtype=bool)
    starts_new[0] = True
    starts_new[1:] = o[1:] > reach[:-1] + gap
    group = np.cumsum(starts_new) - 1
    first = np.flatnonzero(starts_new)
    fetch_lo = o[first]
    fetch_hi = np.maximum.reduceat(ends, first)
    which = np.empty(n, dtype=np.int64)
    which[order] = group
    return fetch_lo, fetch_hi, which
