"""Block-level container format v2 (``.rps2``) — write once, read any block.

Unlike the v1 hierarchy container (:mod:`repro.insitu.io`), which compresses
each resolution level into one monolithic merged-array payload, v2 encodes
every Morton-ordered unit block into its own standalone payload and records a
per-block ``(level, coords, offset, length)`` index in the file head.  A
reader can therefore decode exactly the blocks a query touches: a halo
neighbourhood, an isosurface ROI, or a single coarse level — without
inflating the rest of the timestep.

File layout (see :mod:`repro.store` for the full diagram)::

    b"RPS2" | u32 header_len | JSON header | block index | payload ... payload

The JSON header carries the format version, error bound, codec description,
free-form metadata and the per-level geometry (shape, unit size, block count,
original bytes); the binary index is documented in
:mod:`repro.store.index`; each payload is a self-describing
:class:`~repro.compressors.base.CompressedArray` blob, so containers remain
decodable without any state from the writing process.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compressors.errors import DecompressionError
from repro.core.partition import UnitBlockSet
from repro.obs import REGISTRY
from repro.obs import span as obs_span
from repro.store.index import RECORD_BYTES, BlockIndex
from repro.store.query import BBox, coalesce_ranges
from repro.utils.morton import morton_encode2d, morton_encode3d

__all__ = ["BlockLevel", "LevelInfo", "ContainerReader", "write_container", "STORE_MAGIC"]

STORE_MAGIC = b"RPS2"  # "RePro Store v2"
FORMAT_VERSION = 2

#: Merge payload ranges whose file gap is at most this many bytes into one
#: fetch — about one page: reading a page-sized gap is cheaper than a second
#: syscall (file source) or a second view (mmap source).
DEFAULT_COALESCE_GAP = 4096

#: One observation per coalesced fetch batch, split by payload source so a
#: snapshot shows whether slow reads paid mmap slices or seek/read syscalls.
_FETCH_SECONDS = REGISTRY.histogram(
    "repro_store_fetch_seconds",
    "Payload fetch latency per coalesced batch.",
    labelnames=("source",),
)


class _FilePayloadSource:
    """Coalesced ``seek``/``read`` fetches — the fallback when mmap is not
    available (or is disabled); one file handle per fetch batch, so sharing a
    reader across threads stays safe."""

    kind = "file"

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def fetch(self, lo: np.ndarray, hi: np.ndarray) -> List[memoryview]:
        out: List[memoryview] = []
        with self.path.open("rb") as fh:
            for a, b in zip(lo.tolist(), hi.tolist()):
                fh.seek(a)
                out.append(memoryview(fh.read(b - a)))
        return out

    def close(self) -> None:  # no persistent resources
        pass


class _MmapPayloadSource:
    """Zero-copy payload fetches over one shared read-only memory map.

    A fetch is a slice of the map — no syscall, no intermediate buffer — and
    slicing is thread-safe, so one mapping serves every connection of a read
    daemon.  After an atomic container overwrite (``os.replace``) the map
    keeps describing the *old* inode, which is exactly the torn-read safety
    the catalog relies on: stale readers are reopened at the catalog layer.
    """

    kind = "mmap"

    def __init__(self, path: Path) -> None:
        import mmap

        fh = open(path, "rb")
        try:
            self._mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        finally:
            # The mapping keeps its own reference to the file; holding the
            # Python handle open would just pin a second fd per reader.
            fh.close()
        self._view = memoryview(self._mm)

    def fetch(self, lo: np.ndarray, hi: np.ndarray) -> List[memoryview]:
        view = self._view
        return [view[a:b] for a, b in zip(lo.tolist(), hi.tolist())]

    def close(self) -> None:
        """Release the map (and its fd).  Degrades to a no-op while fetched
        slices are still alive — the GC finishes the job once they die."""
        try:
            self._view.release()
        except BufferError:
            return
        try:
            self._mm.close()
        except BufferError:
            pass


def _morton_codes(coords: np.ndarray) -> np.ndarray:
    if coords.shape[1] == 3:
        return morton_encode3d(coords[:, 0], coords[:, 1], coords[:, 2])
    return morton_encode2d(coords[:, 0], coords[:, 1])


@dataclass
class BlockLevel:
    """Per-block payloads of one resolution level, ready to be written.

    ``coords`` row *i* is the unit-block coordinate of ``payloads[i]``; the
    writer re-sorts both by Morton code so the on-disk order is always the
    space-filling-curve order regardless of how the caller produced them.
    """

    level: int
    level_shape: Tuple[int, ...]
    unit_size: int
    coords: np.ndarray
    payloads: List[bytes]

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.int64)
        if self.coords.shape[0] != len(self.payloads):
            raise ValueError(
                f"level {self.level}: {self.coords.shape[0]} coords but "
                f"{len(self.payloads)} payloads"
            )

    @property
    def n_blocks(self) -> int:
        return len(self.payloads)

    @property
    def nbytes_original(self) -> int:
        return self.n_blocks * (int(self.unit_size) ** len(self.level_shape)) * 8


@dataclass
class LevelInfo:
    """Geometry of one level as recorded in a container header."""

    level: int
    level_shape: Tuple[int, ...]
    unit_size: int
    n_blocks: int
    nbytes_original: int

    @property
    def ndim(self) -> int:
        return len(self.level_shape)


def write_container(
    path: Union[str, Path],
    levels: Sequence[BlockLevel],
    error_bound: float,
    codec: str = "",
    metadata: Optional[Dict] = None,
) -> int:
    """Write a v2 block container; returns the number of bytes written."""
    if not levels:
        raise ValueError("a container needs at least one level")
    ordered: List[BlockLevel] = []
    for lvl in sorted(levels, key=lambda l: int(l.level)):
        order = np.argsort(_morton_codes(lvl.coords), kind="stable")
        ordered.append(
            BlockLevel(
                level=int(lvl.level),
                level_shape=tuple(int(s) for s in lvl.level_shape),
                unit_size=int(lvl.unit_size),
                coords=lvl.coords[order],
                payloads=[lvl.payloads[i] for i in order],
            )
        )

    index = BlockIndex.build(
        (lvl.level, lvl.coords, [len(p) for p in lvl.payloads]) for lvl in ordered
    )
    header = {
        "format": "repro-store-container",
        "format_version": FORMAT_VERSION,
        "error_bound": float(error_bound),
        "codec": str(codec),
        "metadata": dict(metadata or {}),
        "n_entries": index.n_entries,
        "levels": [
            {
                "level": lvl.level,
                "level_shape": list(lvl.level_shape),
                "unit_size": lvl.unit_size,
                "n_blocks": lvl.n_blocks,
                "nbytes_original": lvl.nbytes_original,
            }
            for lvl in ordered
        ],
    }
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [STORE_MAGIC, struct.pack("<I", len(header_blob)), header_blob, index.to_bytes()]
    for lvl in ordered:
        parts.extend(lvl.payloads)
    blob = b"".join(parts)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic replace: concurrent readers (e.g. a read daemon in another
    # process) see either the old container or the new one, never a torn
    # write.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


class ContainerReader:
    """Random-access reader over one v2 container.

    Opening a reader parses only the header and the block index (two small
    reads); payloads are fetched lazily, and *coalesced*: the requested index
    positions are sorted by file offset and merged into contiguous ranges
    (adjacent or near-adjacent blocks cost one fetch, not one syscall each),
    served zero-copy from a shared read-only memory map when the platform
    provides one, with a coalesced seek/read fallback otherwise.  ``stats``
    counts decoded blocks, payload bytes read and fetch ranges issued — the
    tests assert partial decodes through it, and ``store roi``/``store read``
    report it to the user.

    Parameters
    ----------
    path:
        A ``.rps2`` container produced by :func:`write_container`.
    engine:
        Optional :class:`~repro.store.engine.CodecEngine` used to decode
        fetched payloads in parallel; decoding is serial (with a cached
        codec) when omitted.
    payload_source:
        ``"auto"`` (default) memory-maps the container and falls back to
        seek/read when the map cannot be created; ``"mmap"`` requires the
        map (raising :class:`DecompressionError` otherwise); ``"file"``
        forces the seek/read path (the fuzz harness uses this to prove both
        paths byte-identical).
    coalesce_gap:
        Merge payload ranges whose file gap is at most this many bytes into
        one fetch (default one page).  ``None`` disables coalescing — one
        fetch per block, the pre-coalescing behaviour the hot-path benchmark
        measures against.
    """

    def __init__(
        self,
        path: Union[str, Path],
        engine=None,
        payload_source: str = "auto",
        coalesce_gap: Optional[int] = DEFAULT_COALESCE_GAP,
    ) -> None:
        if payload_source not in ("auto", "mmap", "file"):
            raise ValueError(
                f"payload_source must be 'auto', 'mmap' or 'file', got {payload_source!r}"
            )
        self.path = Path(path)
        self.engine = engine
        self.coalesce_gap = None if coalesce_gap is None else int(coalesce_gap)
        self.stats: Dict[str, int] = {
            "blocks_decoded": 0,
            "payload_bytes_read": 0,
            "fetch_ranges": 0,
            "fetch_bytes": 0,
        }
        self._source_mode = payload_source
        self._source = None  # repro: guarded-by(_source_lock)
        self._source_lock = threading.Lock()
        # Readers are shared across daemon connections; counter updates are
        # read-modify-writes and need the lock to not lose increments.
        self._stats_lock = threading.Lock()

        try:
            with self.path.open("rb") as fh:
                head = fh.read(8)
                if len(head) < 8:
                    raise DecompressionError(f"{self.path}: truncated container head")
                if head[:4] != STORE_MAGIC:
                    raise DecompressionError(
                        f"{self.path}: not a v2 block container (bad magic {head[:4]!r})"
                    )
                (header_len,) = struct.unpack_from("<I", head, 4)
                header_blob = fh.read(header_len)
                if len(header_blob) < header_len:
                    raise DecompressionError(f"{self.path}: truncated container header")
                try:
                    header = json.loads(header_blob.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise DecompressionError(
                        f"{self.path}: corrupt container header ({exc})"
                    ) from exc
                version = int(header.get("format_version", 0))
                if version != FORMAT_VERSION:
                    raise DecompressionError(
                        f"{self.path}: unsupported container format version {version} "
                        f"(this reader supports {FORMAT_VERSION})"
                    )
                n_entries = int(header["n_entries"])
                index_blob = fh.read(n_entries * RECORD_BYTES)
                try:
                    self._index = BlockIndex.from_bytes(index_blob, n_entries)
                except DecompressionError as exc:
                    raise DecompressionError(f"{self.path}: {exc}") from exc
        except OSError as exc:
            raise DecompressionError(f"{self.path}: cannot read container ({exc})") from exc

        self._header = header
        self._data_start = 8 + header_len + n_entries * RECORD_BYTES
        # The payload section must actually be present: a container whose
        # index points past EOF (truncated copy, torn download) must fail at
        # *open*, not on the first unlucky fetch — Store.adopt leans on open
        # as its validation step before cataloging foreign files.
        if n_entries:
            end = int(
                (self._index.offsets.astype(np.int64) + self._index.lengths).max()
            )
            size = self.path.stat().st_size
            if self._data_start + end > size:
                raise DecompressionError(
                    f"{self.path}: truncated container (index expects "
                    f"payload through byte {self._data_start + end}, "
                    f"file has {size})"
                )
        self._levels = {
            int(lvl["level"]): LevelInfo(
                level=int(lvl["level"]),
                level_shape=tuple(int(s) for s in lvl["level_shape"]),
                unit_size=int(lvl["unit_size"]),
                n_blocks=int(lvl["n_blocks"]),
                nbytes_original=int(lvl["nbytes_original"]),
            )
            for lvl in header["levels"]
        }

    # -- header accessors -----------------------------------------------------
    @property
    def error_bound(self) -> float:
        return float(self._header["error_bound"])

    @property
    def codec(self) -> str:
        return str(self._header.get("codec", ""))

    @property
    def metadata(self) -> Dict:
        return dict(self._header.get("metadata", {}))

    @property
    def levels(self) -> List[LevelInfo]:
        """Per-level geometry, ordered fine to coarse."""
        return [self._levels[k] for k in sorted(self._levels)]

    @property
    def index(self) -> BlockIndex:
        return self._index

    @property
    def n_blocks(self) -> int:
        return self._index.n_entries

    @property
    def nbytes_compressed(self) -> int:
        """Container size: header + index + all payloads."""
        return self._data_start + self._index.nbytes_payloads

    @property
    def nbytes_original(self) -> int:
        return sum(info.nbytes_original for info in self._levels.values())

    @property
    def compression_ratio(self) -> float:
        return self.nbytes_original / max(1, self.nbytes_compressed)

    def level_info(self, level: int) -> LevelInfo:
        try:
            return self._levels[int(level)]
        except KeyError as exc:
            raise KeyError(
                f"{self.path}: no level {level}; available: {sorted(self._levels)}"
            ) from exc

    # -- payload access -------------------------------------------------------
    @property
    def payload_source(self) -> str:
        """``"mmap"`` or ``"file"`` — the payload path this reader resolved to."""
        return self._payload_source().kind

    def close(self) -> None:
        """Release the payload source (for mmap: the mapping and its fd).

        Optional — dropping the reader releases everything via GC — but
        explicit for long-lived processes managing many readers.  Safe to
        call repeatedly, and a closed reader simply reopens its source on
        the next fetch; the caller must not race it against in-flight
        fetches on the same reader.
        """
        with self._source_lock:
            source, self._source = self._source, None
        if source is not None:
            source.close()

    def __enter__(self) -> "ContainerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _payload_source(self):
        # Double-checked fast path: a set _source is immutable-until-close, so
        # the unlocked first read is safe; only the None -> open transition
        # needs the lock.
        source = self._source  # repro: unlocked -- double-checked locking fast path
        if source is None:
            with self._source_lock:
                source = self._source
                if source is None:
                    source = self._source = self._open_payload_source()
        return source

    def _open_payload_source(self):
        if self._source_mode == "file":
            return _FilePayloadSource(self.path)
        try:
            return _MmapPayloadSource(self.path)
        except (ImportError, OSError, ValueError, OverflowError) as exc:
            if self._source_mode == "mmap":
                raise DecompressionError(
                    f"{self.path}: cannot mmap container ({exc})"
                ) from exc
            return _FilePayloadSource(self.path)

    def fetch_entries(self, positions: Sequence[int]) -> List[memoryview]:
        """Raw payload buffers of the given index-entry positions, coalesced.

        Positions are sorted by file offset, merged into contiguous ranges
        (per :attr:`coalesce_gap`), fetched once per range and handed back as
        zero-copy ``memoryview`` slices in the *requested* order.  This is
        the only place payload bytes enter the process; ``fetch_ranges`` /
        ``fetch_bytes`` in :attr:`stats` count what it cost.
        """
        positions = np.asarray(positions, dtype=np.int64)
        n = positions.shape[0]
        if n == 0:
            return []
        offsets = self._index.offsets[positions] + self._data_start
        lengths = self._index.lengths[positions]
        if self.coalesce_gap is None:
            lo, hi = offsets, offsets + lengths
            which = np.arange(n, dtype=np.int64)
        else:
            lo, hi, which = coalesce_ranges(offsets, lengths, self.coalesce_gap)
        source = self._payload_source()
        start = time.perf_counter()
        with obs_span("fetch", blocks=n, source=source.kind) as sp:
            buffers = source.fetch(lo, hi)
            sizes = (hi - lo).tolist()
            for j, buf in enumerate(buffers):
                if len(buf) < sizes[j]:
                    short = int(positions[int(np.flatnonzero(which == j)[0])])
                    raise DecompressionError(
                        f"{self.path}: truncated payload at index entry {short}"
                    )
            rel = (offsets - lo[which]).tolist()
            lens = lengths.tolist()
            views = [
                buffers[w][r : r + ln]
                for w, r, ln in zip(which.tolist(), rel, lens)
            ]
            if sp is not None:
                sp.set(ranges=len(buffers), bytes=int((hi - lo).sum()))
        _FETCH_SECONDS.labels(source=source.kind).observe(time.perf_counter() - start)
        with self._stats_lock:
            self.stats["payload_bytes_read"] += int(lengths.sum())
            self.stats["fetch_ranges"] += len(buffers)
            self.stats["fetch_bytes"] += int((hi - lo).sum())
        return views

    def _decode_payloads(self, payloads: List[memoryview]) -> List[np.ndarray]:
        with self._stats_lock:
            self.stats["blocks_decoded"] += len(payloads)
        with obs_span("decode", blocks=len(payloads)):
            if self.engine is not None:
                return self.engine.decode_blocks(payloads)
            from repro.store.engine import decode_payloads

            return decode_payloads(payloads)

    def decode_entries(self, positions: Sequence[int]) -> List[np.ndarray]:
        """Fetch and decode the payloads of the given index-entry positions.

        The batched decode primitive behind every query: positions come from
        :meth:`BlockIndex.select`, payloads are fetched coalesced (see
        :meth:`fetch_entries`) and decoded through the attached engine (or
        serially).  Lazy views (:mod:`repro.array`) call this for exactly
        their cache misses.
        """
        return self._decode_payloads(
            self.fetch_entries(np.asarray(positions, dtype=np.int64))
        )

    def decode_entries_into(
        self,
        positions: Sequence[int],
        outs: Sequence[np.ndarray],
        srcs: Optional[Sequence] = None,
    ) -> None:
        """Fetch and decode index entries straight into caller-owned buffers.

        ``outs[i]`` receives the decoded block of ``positions[i]`` (restricted
        to the ``srcs[i]`` source window when given) with no intermediate
        block array on the supporting codecs — the zero-copy half of
        :meth:`repro.array.CompressedArray.__getitem__`.
        """
        payloads = self.fetch_entries(np.asarray(positions, dtype=np.int64))
        with self._stats_lock:
            self.stats["blocks_decoded"] += len(payloads)
        with obs_span("decode", blocks=len(payloads), into=True):
            if self.engine is not None:
                self.engine.decode_blocks_into(payloads, outs, srcs)
            else:
                from repro.store.engine import decode_payloads_into

                decode_payloads_into(payloads, outs, srcs)

    # -- queries --------------------------------------------------------------
    def read_blocks(self, level: int, region: Optional[BBox] = None) -> UnitBlockSet:
        """Decode the blocks of one level, optionally restricted to a region.

        ``region`` is a half-open range of *unit-block coordinates* per axis;
        only index entries inside it are fetched and decoded.  Returns a
        :class:`~repro.core.partition.UnitBlockSet` carrying the decoded
        blocks and their coordinates (Morton file order).
        """
        info = self.level_info(level)
        positions = self._index.select(info.level, info.ndim, region)
        coords = self._index.coords[positions, : info.ndim]
        decoded = self.decode_entries(positions)
        if decoded:
            blocks = np.stack(decoded, axis=0)
        else:
            blocks = np.empty((0,) + (info.unit_size,) * info.ndim, dtype=np.float64)
        return UnitBlockSet(
            blocks=blocks,
            coords=coords.astype(np.int64),
            unit_size=info.unit_size,
            level_shape=info.level_shape,
        )

    def as_array(self, level: int = 0, fill_value: float = 0.0, cache=None):
        """Lazy :class:`repro.array.CompressedArray` view over one level.

        The view's indexing compiles into this reader's block queries, so only
        intersecting blocks are decoded (through the attached engine when
        present); pass a :class:`repro.array.BlockCache` to decode revisited
        blocks once across queries.
        """
        from repro.array import CompressedArray, ContainerSource

        return CompressedArray(
            ContainerSource(self), level=level, fill_value=fill_value, cache=cache
        )

    def read_level(self, level: int, fill_value: float = 0.0) -> np.ndarray:
        """Decode one whole level into its full-domain array.

        .. deprecated:: use ``as_array(level)[...]`` (or, through a store,
           ``store[field, step].level(k)[...]``) — the lazy view serves whole
           levels and every partial query through one surface.
        """
        warnings.warn(
            "ContainerReader.read_level is deprecated; use as_array(level)[...] "
            "or store[field, step].level(k)[...] instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.as_array(level=level, fill_value=fill_value)[...]

    def read_roi(
        self, bbox: Sequence[Sequence[int]], level: int = 0, fill_value: float = 0.0
    ) -> np.ndarray:
        """Decode a cell-space sub-region, touching only intersecting blocks.

        ``bbox`` is a per-axis ``(lo, hi)`` half-open cell range in the
        level's own resolution, clamped to the domain; the result has shape
        ``hi - lo`` per axis.  Cells inside the bbox but outside any occupied
        block are ``fill_value`` (they belong to other levels of the
        hierarchy).  A thin adapter over :meth:`as_array` — lazy views are
        the primary read surface.
        """
        return self.as_array(level=level, fill_value=fill_value).read_roi(bbox)

    def describe(self) -> Dict:
        """Header summary as plain data (what ``repro store ls`` prints)."""
        return {
            "path": str(self.path),
            "codec": self.codec,
            "error_bound": self.error_bound,
            "n_levels": len(self._levels),
            "n_blocks": self.n_blocks,
            "nbytes_original": self.nbytes_original,
            "nbytes_compressed": self.nbytes_compressed,
            "compression_ratio": round(self.compression_ratio, 3),
            "metadata": self.metadata,
        }
