"""Parallel codec engine: batched block encode/decode through a pool.

Per-block encoding is embarrassingly parallel but the blocks are small
(a 16^3 float64 block is 32 KiB), so submitting them one at a time to a
process pool drowns the work in pickling and task dispatch.  The engine
therefore *chunks* the blocks — each pool task encodes a contiguous slice of
the block array with a codec rebuilt once per chunk — and flattens the
results back into file order.  The same batching drives decode, so
random-access reads that touch many blocks also scale with cores.

The workers are module-level functions operating on plain picklable data
(codec registry name + options, NumPy block arrays, payload byte strings),
which is what allows the ``"process"`` executor; ``"thread"`` suits codecs
that release the GIL, and ``"serial"`` is the zero-overhead default used by
tests and single-core hosts.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compressors.base import CompressedArray, Compressor, get_compressor
from repro.insitu.scheduler import EXECUTORS, default_workers, parallel_map
from repro.obs import REGISTRY

__all__ = ["CodecEngine", "decode_payloads", "decode_payloads_into"]

#: Whole-batch encode/decode latency per backend: the number the upcoming
#: codec-kernel work must move, broken down the way it will be optimised.
_BATCH_SECONDS = REGISTRY.histogram(
    "repro_engine_batch_seconds",
    "Codec engine batch latency (one public encode/decode call).",
    labelnames=("op", "backend"),
)

#: Upper bound on blocks per pool task; keeps per-task payloads a few MiB.
_MAX_CHUNK = 128


def _encode_chunk(task: Tuple[str, dict, float, np.ndarray]) -> List[bytes]:
    """Worker: encode a chunk of unit blocks into standalone payload blobs."""
    kind, options, error_bound, blocks = task
    codec = get_compressor(kind, **options)
    return [codec.compress(block, error_bound).to_bytes() for block in blocks]


def _decode_into_chunk(task) -> list:
    """Worker: decode one chunk of payloads into its destination views."""
    payloads, outs, srcs = task
    decode_payloads_into(payloads, outs, srcs)
    return []


def decode_payloads(payloads: Sequence[bytes]) -> List[np.ndarray]:
    """Decode standalone per-block payload blobs back to block arrays.

    The single serial decode loop shared by the engine's pool workers and by
    engine-less readers (:class:`~repro.store.format.ContainerReader`), so
    decode semantics cannot diverge between the two paths.  Module-level and
    picklable on purpose: it doubles as the process-pool chunk worker.
    """
    codecs: Dict[str, Compressor] = {}
    out = []
    for blob in payloads:
        compressed = CompressedArray.from_bytes(blob)
        codec = codecs.get(compressed.codec)
        if codec is None:
            codec = codecs[compressed.codec] = get_compressor(compressed.codec)
        out.append(codec.decompress(compressed))
    return out


def decode_payloads_into(
    payloads: Sequence[bytes],
    outs: Sequence[np.ndarray],
    srcs: Optional[Sequence] = None,
) -> None:
    """Decode payload blobs straight into caller-preallocated destinations.

    ``outs[i]`` receives the reconstruction of ``payloads[i]`` — restricted
    to the ``srcs[i]`` source window when given (edge blocks paste only their
    overlap).  Codecs implementing the in-place hook reconstruct inside the
    destination view with no per-block temporary; others decode then copy,
    so the two entry points are always bit-for-bit identical.  Module-level
    and loop-shaped like :func:`decode_payloads` on purpose: it is the
    thread-pool chunk worker for :meth:`CodecEngine.decode_blocks_into`.
    """
    codecs: Dict[str, Compressor] = {}
    for i, blob in enumerate(payloads):
        compressed = CompressedArray.from_bytes(blob)
        codec = codecs.get(compressed.codec)
        if codec is None:
            codec = codecs[compressed.codec] = get_compressor(compressed.codec)
        codec.decompress_into(
            compressed, outs[i], src=None if srcs is None else srcs[i]
        )


class CodecEngine:
    """Batch per-block encode/decode through a serial/thread/process backend.

    Parameters
    ----------
    codec:
        Compressor registry name (``"sz3"``, ``"sz2"``, ``"zfp"``).
    codec_options:
        Constructor options for the codec; must be picklable for the process
        backend.
    executor:
        ``"serial"`` (default), ``"thread"`` or ``"process"`` — see
        :func:`repro.insitu.scheduler.parallel_map`.
    max_workers:
        Pool size; defaults to the core count.
    chunksize:
        Blocks per pool task; by default sized so every worker gets about
        four tasks (capped at 128 blocks), which balances load against
        dispatch overhead.
    """

    def __init__(
        self,
        codec: str = "sz3",
        codec_options: Optional[dict] = None,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.codec = str(codec)
        self.codec_options = dict(codec_options or {})
        self.executor = executor
        self.max_workers = default_workers() if max_workers is None else int(max_workers)
        self.chunksize = None if chunksize is None else max(1, int(chunksize))
        # Batch accounting, exposed process-wide via obs.engine_collector:
        # engines are shared across daemon connections, so updates lock.
        self.stats: Dict[str, int] = {
            "encode_batches": 0,
            "decode_batches": 0,
            "blocks_encoded": 0,
            "blocks_decoded": 0,
        }
        self._stats_lock = threading.Lock()
        self._hist_encode = _BATCH_SECONDS.labels(op="encode", backend=executor)
        self._hist_decode = _BATCH_SECONDS.labels(op="decode", backend=executor)
        # Validate the codec spec eagerly (raises UnknownCompressorError).
        get_compressor(self.codec, **self.codec_options)

    @classmethod
    def from_compressor(cls, compressor, **kwargs) -> "CodecEngine":
        """Build an engine matching a :class:`MultiResolutionCompressor` codec."""
        kind, options = compressor.codec_spec()
        return cls(codec=kind, codec_options=options, **kwargs)

    # -- batching -------------------------------------------------------------
    def _chunk_bounds(self, n_items: int) -> List[Tuple[int, int]]:
        if self.chunksize is not None:
            size = self.chunksize
        else:
            size = -(-n_items // max(1, self.max_workers * 4))
            size = max(1, min(size, _MAX_CHUNK))
        return [(start, min(start + size, n_items)) for start in range(0, n_items, size)]

    def _run(self, fn, tasks: list) -> list:
        chunks = parallel_map(
            fn, tasks, max_workers=self.max_workers, executor=self.executor
        )
        return [item for chunk in chunks for item in chunk]

    def _account(self, op: str, n_blocks: int, seconds: float) -> None:
        with self._stats_lock:
            self.stats[f"{op}_batches"] += 1
            self.stats[f"blocks_{op}d"] += int(n_blocks)
        (self._hist_encode if op == "encode" else self._hist_decode).observe(seconds)

    # -- public API -----------------------------------------------------------
    def encode_blocks(self, blocks: np.ndarray, error_bound: float) -> List[bytes]:
        """Encode ``(n, u, u[, u])`` unit blocks into per-block payload blobs."""
        blocks = np.asarray(blocks, dtype=np.float64)
        eb = float(error_bound)
        tasks = [
            (self.codec, self.codec_options, eb, blocks[a:b])
            for a, b in self._chunk_bounds(blocks.shape[0])
        ]
        start = time.perf_counter()
        out = self._run(_encode_chunk, tasks)
        self._account("encode", blocks.shape[0], time.perf_counter() - start)
        return out

    def decode_blocks(self, payloads: Sequence[bytes]) -> List[np.ndarray]:
        """Decode per-block payload blobs back into block arrays (file order)."""
        payloads = list(payloads)
        if self.executor == "process":
            # Zero-copy fetch hands out memoryviews, which cannot cross a
            # process boundary; materialise them for pickling.
            payloads = [p if isinstance(p, bytes) else bytes(p) for p in payloads]
        tasks = [payloads[a:b] for a, b in self._chunk_bounds(len(payloads))]
        start = time.perf_counter()
        out = self._run(decode_payloads, tasks)
        self._account("decode", len(payloads), time.perf_counter() - start)
        return out

    def decode_blocks_into(
        self,
        payloads: Sequence[bytes],
        outs: Sequence[np.ndarray],
        srcs: Optional[Sequence] = None,
    ) -> None:
        """Decode payload blobs straight into preallocated destination views.

        The batched :func:`decode_payloads_into`: serial and thread backends
        write into the shared destinations directly (NumPy assignments
        release the GIL, so chunks overlap); the process backend cannot share
        the caller's memory, so it falls back to :meth:`decode_blocks` plus
        one paste per block — same bytes, one extra touch.
        """
        n = len(payloads)
        if n == 0:
            return
        if self.executor == "process":
            # decode_blocks does its own batch accounting; the paste loop
            # adds nothing worth a second histogram entry.
            for i, block in enumerate(self.decode_blocks(payloads)):
                src = None if srcs is None else srcs[i]
                np.copyto(outs[i], block if src is None else block[src])
            return
        payloads = list(payloads)
        # outs/srcs are sliced, not listified: the caller may hand in a lazy
        # window sequence that materialises destination views per access.
        tasks = [
            (payloads[a:b], outs[a:b], None if srcs is None else srcs[a:b])
            for a, b in self._chunk_bounds(n)
        ]
        start = time.perf_counter()
        self._run(_decode_into_chunk, tasks)
        self._account("decode", n, time.perf_counter() - start)

    def describe(self) -> str:
        """Short configuration string (mirrors ``MultiResolutionCompressor.describe``)."""
        return f"{self.codec}@{self.executor}x{self.max_workers}"
