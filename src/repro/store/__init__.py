"""``repro.store`` — chunked, indexed compressed-array store with random access.

The in-situ pipeline's v1 containers (:mod:`repro.insitu.io`) compress each
resolution level into one opaque merged payload: reproducing Table IV needs
nothing more, but every post-hoc workload in the paper — ROI rate-distortion
(Fig. 4), halo neighbourhoods, probabilistic isosurfaces — touches a small
sub-region and should not pay for inflating a whole timestep.  This
subsystem is the production substrate for those access patterns:

* **format v2** (:mod:`repro.store.format`): every Morton-ordered unit block
  is encoded into its own standalone payload, and a per-block
  ``(level, coords, offset, length)`` index in the file head lets
  :class:`~repro.store.format.ContainerReader` decode only the blocks a
  query touches (``read_blocks`` / ``read_roi``);
* **catalog** (:mod:`repro.store.catalog`): a :class:`~repro.store.catalog.Store`
  directory maps ``(field, step)`` to containers through a JSON manifest with
  append-as-you-simulate semantics for the in-situ pipeline;
* **codec engine** (:mod:`repro.store.engine`): a
  :class:`~repro.store.engine.CodecEngine` batches block encode/decode
  through a serial, thread- or process-pool backend with chunked submission,
  so compress-and-write and bulk reads scale with cores.

The primary *read* surface sits one package up: :mod:`repro.array` wraps
readers and stores in lazy NumPy-style views (``store[field, step]``,
``reader.as_array()``) whose indexing decodes only intersecting blocks
through a shared block cache; ``read_roi`` here is a thin adapter over it
and ``read_level`` is deprecated in favour of ``.level(k)[...]``.

Container layout (``.rps2``)
----------------------------
::

    +--------+-------------+----------------+---------------------+------------------+
    | b"RPS2"| u32 hdr_len | JSON header    | block index         | payloads         |
    |  magic |             | version, eb,   | n_entries records:  | one CompressedArray
    |        |             | codec, levels, | (level, c0, c1, c2, | blob per unit    |
    |        |             | metadata       |  offset, length)    | block, Morton    |
    |        |             |                | 6 x int64 each      | order per level  |
    +--------+-------------+----------------+---------------------+------------------+

Payload offsets are relative to the data section, so the header + index
(two small reads) are all a reader needs before seeking straight to any
block.

Catalog manifest schema (``manifest.json``)
-------------------------------------------
::

    {
      "format": "repro-store-manifest",
      "version": 1,
      "entries": {
        "<field>/<step:05d>": {
          "field": str, "step": int,
          "path": str,              # store-relative .rps2 container
          "error_bound": float, "codec": str,
          "n_levels": int, "n_blocks": int,
          "nbytes_original": int, "nbytes_compressed": int
        }, ...
      }
    }

The manifest is rewritten atomically (temp file + rename) on every append,
so a crashed simulation leaves at worst an uncatalogued container, never a
corrupt catalog.
"""

from repro.store.catalog import MANIFEST_NAME, Store, StoreEntry
from repro.store.engine import CodecEngine
from repro.store.format import BlockLevel, ContainerReader, LevelInfo, write_container
from repro.store.index import BlockIndex
from repro.store.query import BBox, bbox_to_block_range, normalize_bbox

__all__ = [
    "Store",
    "StoreEntry",
    "MANIFEST_NAME",
    "CodecEngine",
    "ContainerReader",
    "BlockLevel",
    "LevelInfo",
    "BlockIndex",
    "write_container",
    "BBox",
    "normalize_bbox",
    "bbox_to_block_range",
]
