"""``Store``: a catalog of block containers across fields and timesteps.

A store is a directory holding one ``.rps2`` container per ``(field, step)``
pair plus a ``manifest.json`` catalog (schema in :mod:`repro.store`), giving
simulation output the append-as-you-go semantics of a plotfile directory
while every container stays individually random-accessible.  The
:class:`~repro.insitu.pipeline.InSituPipeline` appends one entry per
timestep; post-hoc analysis iterates the catalog and issues block or ROI
queries without ever inflating a whole timestep.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.amr.grid import AMRHierarchy
from repro.api.error_bound import ErrorBound
from repro.core.mr_compressor import MultiResolutionCompressor
from repro.store.engine import CodecEngine
from repro.store.format import BlockLevel, ContainerReader, write_container

__all__ = ["Store", "StoreEntry", "MANIFEST_NAME", "MANIFEST_VERSION"]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


@dataclass
class StoreEntry:
    """One catalog row: a compressed ``(field, step)`` container."""

    field: str
    step: int
    path: str  # store-relative container path
    error_bound: float
    codec: str
    n_levels: int
    n_blocks: int
    nbytes_original: int
    nbytes_compressed: int

    @property
    def compression_ratio(self) -> float:
        return self.nbytes_original / max(1, self.nbytes_compressed)

    @property
    def key(self) -> str:
        return f"{self.field}/{self.step:05d}"


def _entry_key(field: str, step: int) -> str:
    return f"{field}/{int(step):05d}"


class Store:
    """Chunked, indexed compressed-array store rooted at a directory.

    Parameters
    ----------
    root:
        Store directory; created (with an empty manifest) if missing.
    compressor:
        :class:`MultiResolutionCompressor` whose codec and unit size define
        how appended data is blocked and encoded (default: SZ3, unit 16).
    engine:
        :class:`CodecEngine` used to batch block encode/decode; defaults to
        a serial engine matching ``compressor``.  Pass a thread/process
        engine to scale appends and reads with cores.
    """

    def __init__(
        self,
        root: Union[str, Path],
        compressor: Optional[MultiResolutionCompressor] = None,
        engine: Optional[CodecEngine] = None,
    ) -> None:
        self.root = Path(root)
        created = not self.root.exists()
        self.root.mkdir(parents=True, exist_ok=True)
        self.compressor = compressor or MultiResolutionCompressor()
        self.engine = engine or CodecEngine.from_compressor(self.compressor)
        self._entries: Dict[str, StoreEntry] = {}
        self._block_cache = None  # shared by every lazy view, built on first use
        self._manifest_sig: Optional[Tuple[int, int]] = None
        self._refresh_lock = threading.Lock()
        self._load_manifest()
        # A directory this constructor just created is unambiguously ours, so
        # the empty manifest is materialised immediately — a freshly split
        # shard store with no entries yet must still be servable by `repro
        # serve`.  Pre-existing directories keep the lazy behaviour: nothing
        # is written into a directory that was not already a store.
        if created and not self.manifest_path.exists():
            self._write_manifest()

    # -- manifest -------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _manifest_stat(self) -> Optional[Tuple[int, int]]:
        try:
            st = self.manifest_path.stat()
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _load_manifest(self) -> None:
        # The signature is taken *before* reading: racing a concurrent writer
        # can only make the next refresh re-read, never miss an update.
        self._manifest_sig = self._manifest_stat()
        # A missing manifest is an empty store; it is only materialised by the
        # first append, so read-only operations never write into a directory
        # that was not already a store.
        if not self.manifest_path.exists():
            return
        try:
            raw = json.loads(self.manifest_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{self.manifest_path}: corrupt store manifest ({exc})") from exc
        if raw.get("format") != "repro-store-manifest":
            raise ValueError(f"{self.manifest_path}: not a store manifest")
        if int(raw.get("version", 0)) != MANIFEST_VERSION:
            raise ValueError(
                f"{self.manifest_path}: unsupported manifest version {raw.get('version')}"
            )
        self._entries = {
            key: StoreEntry(**value) for key, value in raw.get("entries", {}).items()
        }

    def _write_manifest(self) -> None:
        payload = {
            "format": "repro-store-manifest",
            "version": MANIFEST_VERSION,
            "entries": {key: asdict(e) for key, e in sorted(self._entries.items())},
        }
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True), "utf-8")
        os.replace(tmp, self.manifest_path)
        self._manifest_sig = self._manifest_stat()

    def refresh(self) -> bool:
        """Pick up catalog changes written by another process; True if any.

        Append-as-you-simulate means a writer (the in-situ pipeline) and
        readers (analysis, the read daemon) are often *different processes*
        on one store directory.  A refresh is a single ``stat`` in the steady
        state: the entry table is reloaded only when the manifest's
        ``(mtime_ns, size)`` signature changed.  If any previously-known
        entry row changed or vanished, its container bytes did too (the path
        is reused on overwrite and is the block-cache token), so the shared
        block cache is dropped; pure appends keep it warm.  Safe to call
        from many threads — the daemon does, once per request.
        """
        with self._refresh_lock:
            if self._manifest_stat() == self._manifest_sig:
                return False
            old = self._entries
            self._load_manifest()
            if self._block_cache is not None and any(
                old[key] != self._entries.get(key) for key in old
            ):
                self._block_cache.clear()
            return True

    # -- write path -----------------------------------------------------------
    def append(
        self,
        field: str,
        step: int,
        data: Union[AMRHierarchy, np.ndarray],
        error_bound: Union[float, ErrorBound, Mapping],
        unit_size: Optional[int] = None,
        overwrite: bool = False,
    ) -> StoreEntry:
        """Compress a snapshot into a new container and catalog it.

        ``data`` is either an :class:`AMRHierarchy` (one container level per
        resolution level, occupied blocks only) or a plain uniform array
        (stored as a single fully-occupied level).  ``error_bound`` accepts
        an :class:`~repro.api.error_bound.ErrorBound` spec, resolved against
        this snapshot; a bare float is an absolute bound.  Appending an
        existing ``(field, step)`` raises unless ``overwrite=True``.
        """
        key = _entry_key(field, step)
        if key in self._entries and not overwrite:
            raise ValueError(f"store already holds {key}; pass overwrite=True to replace")
        if key in self._entries and self._block_cache is not None:
            # Overwriting reuses the container path that keys the block cache.
            self._block_cache.clear()

        if isinstance(data, AMRHierarchy):
            level_inputs = [(lvl.level, lvl.data, lvl.mask) for lvl in data.levels]
        else:
            level_inputs = [(0, np.asarray(data, dtype=np.float64), None)]

        if isinstance(error_bound, (ErrorBound, Mapping)):
            if isinstance(data, AMRHierarchy):
                eb = MultiResolutionCompressor.resolve_hierarchy_bound(data, error_bound)
            else:
                eb = float(ErrorBound.coerce(error_bound).resolve(level_inputs[0][1]))
        else:
            eb = float(error_bound)
        block_levels: List[BlockLevel] = []
        for level_index, level_data, mask in level_inputs:
            block_set = self.compressor.prepare_unit_blocks(
                level_data, mask, unit_size=unit_size
            )
            payloads = self.engine.encode_blocks(block_set.blocks, eb)
            block_levels.append(
                BlockLevel(
                    level=level_index,
                    level_shape=block_set.level_shape,
                    unit_size=block_set.unit_size,
                    coords=block_set.coords,
                    payloads=payloads,
                )
            )

        rel_path = Path(field) / f"step{int(step):05d}.rps2"
        write_container(
            self.root / rel_path,
            block_levels,
            error_bound=eb,
            codec=self.compressor.describe(),
            metadata={"field": str(field), "step": int(step)},
        )
        reader = ContainerReader(self.root / rel_path)
        entry = StoreEntry(
            field=str(field),
            step=int(step),
            path=str(rel_path),
            error_bound=eb,
            codec=self.compressor.describe(),
            n_levels=len(block_levels),
            n_blocks=reader.n_blocks,
            nbytes_original=reader.nbytes_original,
            nbytes_compressed=reader.nbytes_compressed,
        )
        self._entries[key] = entry
        self._write_manifest()
        return entry

    def adopt(
        self,
        field: str,
        step: int,
        container: Union[str, Path],
        overwrite: bool = False,
    ) -> StoreEntry:
        """Catalog an existing ``.rps2`` container without re-encoding it.

        The ingest half of scale-out: a container written elsewhere (another
        process, another store shard, a hand-built test fixture) becomes a
        catalog row by reading its own header for the entry metadata.  A
        container outside the store root is copied to the canonical
        ``field/stepNNNNN.rps2`` path; one already under the root is adopted
        in place.
        """
        key = _entry_key(field, step)
        if key in self._entries and not overwrite:
            raise ValueError(f"store already holds {key}; pass overwrite=True to replace")
        if key in self._entries and self._block_cache is not None:
            self._block_cache.clear()

        container = Path(container)
        # Validate before any copy, so a bad file never lands in the store;
        # the reader is closed as soon as its header metadata is harvested
        # (adopt must not pin the source mmap — rebalancing drops the source
        # right after).
        reader = ContainerReader(container)
        try:
            meta = dict(
                error_bound=reader.error_bound,
                codec=reader.codec,
                n_levels=len(reader.levels),
                n_blocks=reader.n_blocks,
                nbytes_original=reader.nbytes_original,
                nbytes_compressed=reader.nbytes_compressed,
            )
        finally:
            reader.close()
        try:
            rel_path = container.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel_path = Path(field) / f"step{int(step):05d}.rps2"
            target = self.root / rel_path
            target.parent.mkdir(parents=True, exist_ok=True)
            # Copy-then-rename, like write_container: an overwrite-adopt must
            # never expose a torn container to concurrent readers (a read
            # daemon may be serving this exact path).  The *copy* is
            # re-validated before the rename — a short write (full disk,
            # source truncated mid-copy) must not be catalogued either.
            tmp = target.with_name(target.name + ".tmp")
            try:
                shutil.copyfile(container, tmp)
                ContainerReader(tmp).close()
                os.replace(tmp, target)
            except BaseException:
                tmp.unlink(missing_ok=True)
                try:
                    target.parent.rmdir()  # only if the failure left it empty
                except OSError:
                    pass
                raise
        entry = StoreEntry(field=str(field), step=int(step), path=str(rel_path), **meta)
        self._entries[key] = entry
        self._write_manifest()
        return entry

    def drop(self, field: str, step: int, delete_file: bool = True) -> StoreEntry:
        """Remove an entry from the catalog (and, by default, its container.)

        The eviction half of rebalancing: after :meth:`adopt` has landed a
        container on the destination shard, ``drop`` retires it from the
        source.  The manifest rewrite is atomic (tmp + ``os.replace``), and
        on POSIX unlinking the container does not disturb readers that
        already hold it mmapped — they keep reading the old bytes until they
        close.  ``delete_file=False`` drops only the catalog row.
        """
        key = _entry_key(field, step)
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(
                f"store has no entry {key}; fields: {', '.join(self.fields()) or '(none)'}"
            )
        del self._entries[key]
        self._write_manifest()
        if delete_file:
            container = self.root / entry.path
            container.unlink(missing_ok=True)
            # Prune the field directory if the drop emptied it; best-effort.
            try:
                container.parent.rmdir()
            except OSError:
                pass
        if self._block_cache is not None:
            # The path may be reused by a future append/adopt under the same
            # cache token; stale decoded blocks must not survive the row.
            self._block_cache.clear()
        return entry

    # -- catalog queries ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        field, step = key
        return _entry_key(field, step) in self._entries

    def __iter__(self) -> Iterator[StoreEntry]:
        return iter(self.entries())

    def entries(self) -> List[StoreEntry]:
        """All catalog rows, ordered by field then step."""
        return [self._entries[k] for k in sorted(self._entries)]

    def fields(self) -> List[str]:
        return sorted({e.field for e in self._entries.values()})

    def steps(self, field: str) -> List[int]:
        return sorted(e.step for e in self._entries.values() if e.field == str(field))

    def entry(self, field: str, step: int) -> StoreEntry:
        key = _entry_key(field, step)
        try:
            return self._entries[key]
        except KeyError as exc:
            raise KeyError(
                f"store has no entry {key}; fields: {self.fields()}"
            ) from exc

    # -- read path ------------------------------------------------------------
    @property
    def block_cache(self):
        """Bounded LRU of decoded blocks shared by every view of this store."""
        if self._block_cache is None:
            from repro.array import BlockCache

            self._block_cache = BlockCache()
        return self._block_cache

    def get(self, field: str, step: int) -> ContainerReader:
        """Open a random-access reader over one container."""
        entry = self.entry(field, step)
        return ContainerReader(self.root / entry.path, engine=self.engine)

    def array(self, field: str, step: int, level: int = 0, fill_value: float = 0.0):
        """Lazy :class:`repro.array.CompressedArray` view over one snapshot.

        The primary read surface: ``store.array(f, s)[10:20, :, ::2]`` (or the
        ``store[f, s]`` shorthand) decodes only the blocks the selection
        touches, batched through the store's engine and cached in the shared
        :attr:`block_cache`.  ``.level(k)`` switches resolution levels.
        """
        return self.get(field, step).as_array(
            level=level, fill_value=fill_value, cache=self.block_cache
        )

    def __getitem__(self, key: Tuple[str, int]):
        """``store[field, step]`` — lazy view of one snapshot's finest level."""
        field, step = key
        return self.array(field, step)

    def read_level(self, field: str, step: int, level: int = 0) -> np.ndarray:
        """Decode one whole level of one snapshot.

        .. deprecated:: use ``store[field, step].level(k)[...]`` — the lazy
           view serves whole levels and every partial query through one
           surface.
        """
        warnings.warn(
            "Store.read_level is deprecated; use store[field, step].level(k)[...] "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.array(field, step, level=level)[...]

    def read_roi(
        self,
        field: str,
        step: int,
        bbox: Sequence[Sequence[int]],
        level: int = 0,
    ) -> np.ndarray:
        """Decode a sub-region of one snapshot, touching only its blocks.

        A thin adapter over :meth:`array`; bbox validation and clamping follow
        :func:`repro.store.query.normalize_bbox` exactly as on every other
        read surface.
        """
        return self.array(field, step, level=level).read_roi(bbox)

    def summary(self) -> str:
        """Fixed-width catalog listing (what ``repro store ls`` prints)."""
        lines = [f"store {self.root} — {len(self)} entries"]
        header = f"{'field':<16} {'step':>6} {'levels':>6} {'blocks':>7} {'ratio':>8}  path"
        lines.append(header)
        lines.append("-" * len(header))
        for e in self.entries():
            lines.append(
                f"{e.field:<16} {e.step:>6d} {e.n_levels:>6d} {e.n_blocks:>7d} "
                f"{e.compression_ratio:>7.2f}x  {e.path}"
            )
        return "\n".join(lines)
