"""Generic synthetic field building blocks.

The application-specific generators (Nyx, WarpX, ...) are combinations of a
few primitives: Gaussian random fields with a power-law spectrum (large-scale
structure, turbulence), sums of localised Gaussian blobs (halos, vortices) and
smooth separable wave fields (background oscillations).  Everything is
generated in spectral space with FFTs, so a 64^3 field takes milliseconds.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["gaussian_random_field", "gaussian_blobs", "smooth_wave_field", "radial_coordinates"]


def _k_grid(shape: Sequence[int]) -> np.ndarray:
    """Isotropic wavenumber magnitude on the FFT grid (cycles per domain)."""
    axes = [np.fft.fftfreq(int(n)) * int(n) for n in shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.sqrt(sum(m**2 for m in mesh))


def gaussian_random_field(
    shape: Sequence[int],
    spectral_index: float = -3.0,
    seed: Union[int, str, None] = None,
    normalize: bool = True,
) -> np.ndarray:
    """Gaussian random field with an isotropic power-law spectrum ``P(k) ~ k^n``.

    ``spectral_index`` around -3 gives the large-scale-dominated fields typical
    of cosmological density and turbulence; values closer to 0 produce rougher
    fields.  The result has zero mean and unit variance when ``normalize``.
    """
    shape = tuple(int(s) for s in shape)
    rng = default_rng(seed)
    white = rng.standard_normal(shape)
    spectrum = np.fft.fftn(white)
    k = _k_grid(shape)
    with np.errstate(divide="ignore"):
        amplitude = np.where(k > 0, k ** (spectral_index / 2.0), 0.0)
    field = np.real(np.fft.ifftn(spectrum * amplitude))
    if normalize:
        std = field.std()
        if std > 0:
            field = (field - field.mean()) / std
    return field


def radial_coordinates(shape: Sequence[int]) -> Tuple[np.ndarray, ...]:
    """Normalised coordinates in [0, 1) per axis, broadcastable to ``shape``."""
    coords = []
    for axis, n in enumerate(shape):
        view = [1] * len(shape)
        view[axis] = int(n)
        coords.append(np.linspace(0.0, 1.0, int(n), endpoint=False).reshape(view))
    return tuple(coords)


def gaussian_blobs(
    shape: Sequence[int],
    n_blobs: int = 30,
    amplitude_range: Tuple[float, float] = (0.5, 3.0),
    sigma_range: Tuple[float, float] = (0.01, 0.05),
    seed: Union[int, str, None] = None,
) -> np.ndarray:
    """Sum of randomly placed anisotropy-free Gaussian bumps (halo proxies).

    ``sigma_range`` is expressed as a fraction of the domain edge.  Blobs are
    periodic (wrapped) so the field has no boundary artefacts.
    """
    shape = tuple(int(s) for s in shape)
    rng = default_rng(seed)
    field = np.zeros(shape, dtype=np.float64)
    coords = radial_coordinates(shape)
    for _ in range(int(n_blobs)):
        centre = rng.random(len(shape))
        amp = rng.uniform(*amplitude_range)
        sigma = rng.uniform(*sigma_range)
        dist2 = np.zeros(shape, dtype=np.float64)
        for c, centre_c in zip(coords, centre):
            d = np.abs(c - centre_c)
            d = np.minimum(d, 1.0 - d)  # periodic wrap
            dist2 = dist2 + d**2
        field += amp * np.exp(-dist2 / (2.0 * sigma**2))
    return field


def smooth_wave_field(
    shape: Sequence[int],
    frequencies: Sequence[float] = (2.0, 3.0, 5.0),
    seed: Union[int, str, None] = None,
    noise_level: float = 0.0,
) -> np.ndarray:
    """Separable product of sinusoids plus optional white noise.

    Used as an easily-compressible smooth background and in unit tests where
    an analytically known field is convenient.
    """
    shape = tuple(int(s) for s in shape)
    coords = radial_coordinates(shape)
    field = np.ones(shape, dtype=np.float64)
    for c, f in zip(coords, frequencies):
        field = field * np.sin(2 * np.pi * float(f) * c + 0.25)
    if noise_level > 0:
        rng = default_rng(seed)
        field = field + noise_level * rng.standard_normal(shape)
    return field
