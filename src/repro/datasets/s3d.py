"""S3D-like turbulent combustion scalar field.

S3D is a direct numerical simulation of turbulent combustion; its scalar
fields (temperature, species mass fractions) feature thin, wrinkled flame
fronts separating burnt from unburnt regions, embedded in broadband
turbulence.  The generator creates a wrinkled level-set front (a smooth random
surface), applies a sharp tanh transition across it and adds small-scale
turbulent fluctuations — reproducing the mix of sharp fronts and smooth
regions that makes the dataset interesting for error-bounded compression.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.datasets.synthetic import gaussian_random_field
from repro.utils.rng import default_rng

__all__ = ["s3d_field"]


def s3d_field(
    shape: Tuple[int, int, int] = (64, 64, 64),
    unburnt_value: float = 300.0,
    burnt_value: float = 1800.0,
    front_thickness: float = 0.02,
    wrinkling: float = 0.12,
    turbulence_level: float = 40.0,
    seed: Union[int, str, None] = "s3d",
) -> np.ndarray:
    """Generate an S3D-like temperature field with a wrinkled flame front."""
    shape = tuple(int(s) for s in shape)
    rng = default_rng(seed)

    nz = shape[2]
    z = np.linspace(0.0, 1.0, nz)[None, None, :]

    # Wrinkled front position as a smooth random surface h(x, y).
    surface = gaussian_random_field(shape[:2], spectral_index=-3.0, seed=rng)
    surface = gaussian_filter(surface, sigma=2.0)
    surface = 0.5 + wrinkling * surface / (np.abs(surface).max() + 1e-12)

    signed_distance = z - surface[:, :, None]
    progress = 0.5 * (1.0 + np.tanh(signed_distance / max(front_thickness, 1e-6)))
    temperature = unburnt_value + (burnt_value - unburnt_value) * progress

    turbulence = gaussian_random_field(shape, spectral_index=-1.7, seed=rng)
    # Fluctuations are strongest near the front (reaction zone).
    front_weight = np.exp(-((signed_distance / (4.0 * front_thickness)) ** 2))
    temperature = temperature + turbulence_level * turbulence * (0.3 + 0.7 * front_weight)
    return temperature
