"""WarpX-like longitudinal electric field (``Ez``).

WarpX simulates laser wake-field acceleration: the interesting structure is a
short oscillating laser pulse and the plasma wake trailing it, both confined
near the axis of a long domain (the paper's WarpX grids are 256^2 x 2048).
Away from the pulse the field is essentially zero — which is why converting
the uniform grid to adaptive data with a 50 %/50 % split (Table III) loses
almost nothing.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.utils.rng import default_rng

__all__ = ["warpx_ez_field"]


def warpx_ez_field(
    shape: Tuple[int, int, int] = (32, 32, 256),
    pulse_position: float = 0.55,
    pulse_width: float = 0.05,
    wavelength: float = 0.035,
    wake_wavelength: float = 0.12,
    wake_amplitude: float = 0.4,
    transverse_width: float = 0.14,
    noise_level: float = 0.005,
    seed: Union[int, str, None] = "warpx",
) -> np.ndarray:
    """Generate a WarpX-like ``Ez`` field on a long uniform grid.

    The long axis is the last one, mirroring the paper's 256^2 x 2048 layout.
    """
    nx, ny, nz = (int(s) for s in shape)
    rng = default_rng(seed)

    x = np.linspace(-0.5, 0.5, nx)[:, None, None]
    y = np.linspace(-0.5, 0.5, ny)[None, :, None]
    z = np.linspace(0.0, 1.0, nz)[None, None, :]

    transverse = np.exp(-(x**2 + y**2) / (2.0 * transverse_width**2))
    envelope = np.exp(-((z - pulse_position) ** 2) / (2.0 * pulse_width**2))
    carrier = np.cos(2.0 * np.pi * (z - pulse_position) / wavelength)
    pulse = envelope * carrier

    behind = np.clip(pulse_position - z, 0.0, None)
    wake = (
        wake_amplitude
        * np.exp(-behind / 0.3)
        * np.sin(2.0 * np.pi * behind / wake_wavelength)
        * (behind > 0)
    )

    field = transverse * (pulse + wake)
    if noise_level > 0:
        field = field + noise_level * rng.standard_normal((nx, ny, nz))
    return field
